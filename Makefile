# Convenience targets for the SPASM reproduction.

.PHONY: install test lint verify bench reproduce examples clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	ruff check src tests examples
	mypy src/repro/verify src/repro/core/encoding.py

verify:
	python -m repro verify tmt_sym --scale 0.1
	python -m repro verify t2em --scale 0.05 --hardware SPASM_4_1

bench:
	pytest benchmarks/ --benchmark-only

reproduce:
	python -m repro reproduce --out reproduction

examples:
	python examples/quickstart.py
	python examples/fem_cg_solver.py
	python examples/graph_pagerank.py
	python examples/codesign_exploration.py
	python examples/advanced_tuning.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	    reproduction benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
