# Convenience targets for the SPASM reproduction.

.PHONY: install test lint analyze verify bench bench-smoke tune-smoke faults-smoke serve-smoke reproduce examples clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	ruff check src tests examples
	mypy src/repro/verify src/repro/pipeline src/repro/exec \
	    src/repro/analyze src/repro/tune src/repro/core/encoding.py

# Static analysis gate: prove the six plan safety obligations over the
# whole synth suite (exit 1 on any refuted proof; JSON archived as a CI
# artifact) and run the AST determinism/safety self-lint against the
# checked-in baseline (exit 1 on any new finding).
analyze:
	python -m repro analyze --scale 0.2 --json > BENCH_analyze.json
	python -c "import json; r = json.load(open('BENCH_analyze.json')); \
	    print('%d matrices, %d refuted obligations' % \
	    (r['matrices'], r['refuted']))"
	python -m repro analyze --self

verify:
	python -m repro verify tmt_sym --scale 0.1
	python -m repro verify t2em --scale 0.05 --hardware SPASM_4_1

bench:
	pytest benchmarks/ --benchmark-only

# One synthetic workload through the full pipeline with the per-stage
# trace written out — the CI smoke proof that compile + trace + JSON
# reporting stay healthy (uploads BENCH_pipeline.json as an artifact) —
# plus the execution-plan bench on tiny matrices.  The bench records
# build_ms (fused vs compile), per-dtype spmv_ms, sharded_ms,
# batch_qps and a per-backend kernel sweep (every available
# registered backend, each bitwise-gated against the gather
# reference) into BENCH_exec.json; any bitwise divergence between
# the float64 engines (naive / int32 / int64 / sharded / guarded /
# batch / per-backend) fails the build at every scale.  The timing
# gates (5x over naive, 1.3x int32 over int64, 2x time-to-first-SpMV,
# auto-sharding never losing) only arm at full bench scale
# (>=1e6 nnz).
bench-smoke:
	python -m repro backends
	python -m repro compile tmt_sym --scale 0.1 --json \
	    --trace BENCH_pipeline.json > /dev/null
	python -c "import json; t = json.load(open('BENCH_pipeline.json')); \
	    print('\n'.join('%-14s %8.2f ms  cache=%s' % \
	    (e['name'], e['wall_ms'], e['cache']) for e in t['events']))"
	REPRO_BENCH_SCALE=0.04 pytest benchmarks/bench_exec_plan.py \
	    --benchmark-disable -q

# Budgeted per-matrix autotuning on two synthetic workloads (uploads
# BENCH_tune.json as a CI artifact).  The bench hard-fails if the
# tuned configuration is slower than the default dispatch, if the
# tuned output diverges bitwise from the naive reference, if the
# analytic-model pruner cuts less than half of the candidate grid,
# or if the second tune of an unchanged matrix misses the artifact
# cache.
tune-smoke:
	REPRO_BENCH_SCALE=0.04 REPRO_TUNE_MATRICES=tmt_sym,raefsky3 \
	    pytest benchmarks/bench_tune.py --benchmark-disable -q

# Seeded fault-injection campaign (smoke preset, ~56 injections across
# stream/value/plan/cache/worker/image surfaces; plan flips are
# byte-addressed, so compact int32 arrays are in the bit-flip
# surface).  A single escaped fault — a silently wrong SpMV output —
# exits nonzero and fails the build; BENCH_faults.json is archived as
# a CI artifact.  Overhead is measured at full scale by the
# checked-in full campaign
# (benchmarks/results/faults_campaign.json), not here.
faults-smoke:
	python -m repro faults --campaign smoke --no-overhead --quiet \
	    --out BENCH_faults.json

# Serving-layer smoke: the chaos-under-load campaign (smoke preset:
# stream/value/plan/backend-state/cache/worker faults fired at a live
# SpmvServer between mixed-tenant bursts; a single escaped fault — an
# ok response with a wrong result — exits nonzero), then the serving
# benchmark, which records sustained QPS and clean-vs-chaos
# p50/p95/p99 into BENCH_serve.json and fails on any escape, any
# clean-phase failure or non-deadline shed, or a chaos p99 outside
# the envelope of its own clean phase.
serve-smoke:
	python -m repro chaos --preset smoke --quiet --out BENCH_chaos.json
	pytest benchmarks/bench_serve.py --benchmark-disable -q

reproduce:
	python -m repro reproduce --out reproduction

examples:
	python examples/quickstart.py
	python examples/fem_cg_solver.py
	python examples/graph_pagerank.py
	python examples/codesign_exploration.py
	python examples/advanced_tuning.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	    reproduction benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
