# Convenience targets for the SPASM reproduction.

.PHONY: install test bench reproduce examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

reproduce:
	python -m repro reproduce --out reproduction

examples:
	python examples/quickstart.py
	python examples/fem_cg_solver.py
	python examples/graph_pagerank.py
	python examples/codesign_exploration.py
	python examples/advanced_tuning.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	    reproduction benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
