"""Setup shim for environments without the ``wheel`` package, where
pip's PEP 660 editable-install path is unavailable; metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
