"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.matrix.coo import COOMatrix


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A 32x32 dense array with ~25% random occupancy."""
    dense = np.where(rng.random((32, 32)) < 0.25, rng.random((32, 32)), 0.0)
    dense[0, 0] = 1.0  # guarantee at least one non-zero
    return dense


@pytest.fixture
def small_coo(small_dense):
    """COO view of ``small_dense``."""
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def block_diag_coo(rng):
    """A 64x64 matrix of dense 4x4 diagonal blocks."""
    dense = np.zeros((64, 64))
    for b in range(0, 64, 4):
        dense[b : b + 4, b : b + 4] = rng.uniform(0.5, 1.5, (4, 4))
    return COOMatrix.from_dense(dense)


def random_structured_coo(rng, n=64, kind="mixed"):
    """Helper used by property-style tests: a structured random matrix."""
    dense = np.zeros((n, n))
    if kind in ("mixed", "blocks"):
        for __ in range(n // 8):
            r = int(rng.integers(0, n - 4))
            c = int(rng.integers(0, n - 4))
            dense[r : r + 4, c : c + 4] = rng.uniform(0.5, 1.5, (4, 4))
    if kind in ("mixed", "scatter"):
        mask = rng.random((n, n)) < 0.02
        dense[mask] = rng.uniform(0.5, 1.5, size=int(mask.sum()))
    if not dense.any():
        dense[0, 0] = 1.0
    return COOMatrix.from_dense(dense)
