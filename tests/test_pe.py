"""Tests for the PE and PE-group functional models."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.core.encoding import pack_position
from repro.hw.configs import SPASM_3_2
from repro.hw.hbm import HBMSystem
from repro.hw.opcode import opcode_table
from repro.hw.pe import PE, TILE_SWITCH_CYCLES
from repro.hw.pe_group import PEGroup
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


@pytest.fixture(scope="module")
def lut(portfolio):
    return opcode_table(portfolio)


class TestPE:
    def test_process_group_row_template(self, portfolio, lut):
        # Portfolio-0 t_idx 0 is RW0 (row 0).
        pe = PE(0, lut, tile_size=16)
        pe.prefetch_x(np.array([1.0, 2.0, 3.0, 4.0]))
        pe.switch_x()
        word = pack_position(c_idx=0, r_idx=0, ce=False, re=False, t_idx=0)
        pe.process_group(word, np.array([1.0, 1.0, 1.0, 1.0]))
        assert pe.psum[0] == pytest.approx(10.0)
        assert pe.psum[1:].sum() == 0.0

    def test_c_idx_selects_x_segment(self, portfolio, lut):
        pe = PE(0, lut, tile_size=16)
        x = np.zeros(16)
        x[4:8] = [1.0, 2.0, 3.0, 4.0]
        pe.prefetch_x(x)
        pe.switch_x()
        word = pack_position(c_idx=1, r_idx=0, ce=False, re=False, t_idx=0)
        pe.process_group(word, np.ones(4))
        assert pe.psum[0] == pytest.approx(10.0)

    def test_r_idx_selects_psum_slot(self, portfolio, lut):
        pe = PE(0, lut, tile_size=16)
        pe.prefetch_x(np.ones(16))
        pe.switch_x()
        word = pack_position(c_idx=0, r_idx=2, ce=False, re=False, t_idx=0)
        pe.process_group(word, np.ones(4))
        assert pe.psum[8] == pytest.approx(4.0)

    def test_double_buffering(self, portfolio, lut):
        pe = PE(0, lut, tile_size=8)
        pe.prefetch_x(np.ones(8))
        pe.switch_x()
        pe.prefetch_x(np.full(8, 2.0))  # shadow buffer
        assert pe.x_buffer[0] == 1.0  # active unchanged
        pe.switch_x()
        assert pe.x_buffer[0] == 2.0

    def test_prefetch_rejects_oversized(self, portfolio, lut):
        pe = PE(0, lut, tile_size=8)
        with pytest.raises(ValueError):
            pe.prefetch_x(np.ones(9))

    def test_flush_psum(self, portfolio, lut):
        pe = PE(0, lut, tile_size=8)
        pe.psum[:] = 3.0
        y = np.zeros(32)
        pe.flush_psum(y, 8)
        assert np.all(y[8:16] == 3.0)
        assert np.all(pe.psum == 0.0)
        assert pe.stats.flushes == 1

    def test_flush_clips_at_matrix_edge(self, portfolio, lut):
        pe = PE(0, lut, tile_size=8)
        pe.psum[:] = 1.0
        y = np.zeros(10)
        pe.flush_psum(y, 8)
        assert np.all(y[8:] == 1.0)

    def test_stats_accounting(self, portfolio, lut):
        pe = PE(0, lut, tile_size=16)
        pe.prefetch_x(np.ones(16))
        pe.switch_x()
        word = pack_position(0, 0, False, False, 0)
        pe.process_group(word, np.ones(4))
        pe.process_group(word, np.ones(4))
        assert pe.stats.groups == 2
        assert pe.stats.value_bytes == 2 * 16
        assert pe.stats.position_bytes == 2 * 4
        assert pe.stats.x_bytes == 16 * 4

    def test_compute_cycles_include_tile_switch(self, portfolio, lut):
        pe = PE(0, lut, tile_size=16)
        pe.stats.groups = 10
        pe.stats.tiles = 2
        assert pe.stats.compute_cycles == 10 + 2 * TILE_SWITCH_CYCLES

    def test_process_tile(self, rng, portfolio):
        coo = random_structured_coo(rng, 32, "blocks")
        spasm = encode_spasm(coo, portfolio, 32)
        pe = PE(0, opcode_table(portfolio), tile_size=32)
        tile = next(spasm.tiles())
        pe.process_tile(tile, np.ones(32))
        assert pe.stats.tiles == 1
        assert pe.stats.groups == tile.n_groups


class TestPEGroup:
    def test_sixteen_pes(self, lut):
        group = PEGroup(0, lut, tile_size=16)
        assert len(group) == 16
        assert [pe.pe_id for pe in group][:3] == [0, 1, 2]

    def test_second_group_ids(self, lut):
        group = PEGroup(1, lut, tile_size=16)
        assert [pe.pe_id for pe in group][0] == 16

    def test_charge_channels(self, lut):
        group = PEGroup(0, lut, tile_size=16)
        for pe in group:
            pe.stats.value_bytes = 64
            pe.stats.position_bytes = 16
            pe.stats.x_bytes = 32
        hbm = HBMSystem(SPASM_3_2)
        group.charge_channels(hbm, SPASM_3_2)
        # 4 PEs x 64 B per value channel.
        assert hbm["g0.value0"].bytes_served == 256
        # 16 PEs x 16 B split over 2 position channels.
        assert hbm["g0.pos0"].bytes_served == 128
        # 16 PEs x 32 B split over 2 x channels.
        assert hbm["g0.xvec0"].bytes_served == 256

    def test_group_aggregates(self, lut):
        group = PEGroup(0, lut, tile_size=16)
        for i, pe in enumerate(group):
            pe.stats.groups = i
        assert group.total_groups == sum(range(16))
        assert group.compute_cycles == 15
