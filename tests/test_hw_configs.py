"""Tests for hardware configurations (Table IV) and HBM accounting."""

import pytest

from repro.hw.configs import (
    CHANNEL_BANDWIDTH,
    DEFAULT_CONFIGS,
    SPASM_3_2,
    SPASM_3_4,
    SPASM_4_1,
    U280_NUM_CHANNELS,
    ConfigError,
    HwConfig,
    make_config,
)
from repro.hw.hbm import HBMChannel, HBMSystem


class TestTableIV:
    """The three evaluated bitstreams must reproduce Table IV."""

    def test_channel_formula(self):
        assert SPASM_4_1.hbm_channels == 1 + 4 * (1 + 6) == 29
        assert SPASM_3_4.hbm_channels == 1 + 3 * (4 + 6) == 31
        assert SPASM_3_2.hbm_channels == 1 + 3 * (2 + 6) == 25

    def test_bandwidth(self):
        assert SPASM_4_1.bandwidth / 1e9 == pytest.approx(417, abs=1)
        assert SPASM_3_4.bandwidth / 1e9 == pytest.approx(446, abs=1)
        assert SPASM_3_2.bandwidth / 1e9 == pytest.approx(360, abs=1)

    def test_peak_gflops(self):
        assert SPASM_4_1.peak_gflops == pytest.approx(129, abs=1)
        assert SPASM_3_4.peak_gflops == pytest.approx(102, abs=1)
        assert SPASM_3_2.peak_gflops == pytest.approx(96.4, abs=0.5)

    def test_parallelism(self):
        assert SPASM_4_1.num_pes == 64
        assert SPASM_4_1.parallelism == 256
        assert SPASM_3_2.num_pes == 48

    def test_max_parallelism_is_64_pes(self):
        # "allowing for a maximum of 64 parallelism" (PEs).
        assert max(c.num_pes for c in DEFAULT_CONFIGS) == 64

    def test_describe(self):
        text = SPASM_4_1.describe()
        assert "SPASM_4_1" in text and "29 channels" in text


class TestOnchipRAM:
    def test_footprint_formula(self):
        # 12 bytes per buffered element per PE (2x x + 1x psum).
        assert SPASM_4_1.onchip_ram_bytes(1024) == 64 * 1024 * 12

    def test_all_default_configs_fit_max_tile(self):
        # The 13-bit tile budget keeps every Table IV bitstream within
        # the U280's 34 MB of on-chip RAM.
        for config in DEFAULT_CONFIGS:
            assert config.fits_onchip(2**13 * 4)

    def test_oversized_budget_rejected(self):
        assert not SPASM_4_1.fits_onchip(32768, budget=1024)

    def test_perf_model_prunes_infeasible_points(self):
        import numpy as np

        from repro.core.tiling import GlobalComposition
        from repro.hw.perf_model import perf_model

        class TinyRamConfig(HwConfig):
            def fits_onchip(self, tile_size, budget=None):
                return tile_size <= 16

        gc = GlobalComposition(
            shape=(64, 64),
            k=4,
            tile_size=32,
            tile_rows=np.array([0]),
            tile_cols=np.array([0]),
            groups_per_tile=np.array([4]),
            nnz_per_tile=np.array([16]),
        )
        tiny = TinyRamConfig("tiny", 4, 1, 250e6)
        assert perf_model(gc, tiny, 32) == float("inf")
        assert perf_model(gc, tiny, 16) < float("inf")
        assert perf_model(gc, SPASM_4_1, 32) < float("inf")


class TestValidation:
    def test_rejects_channel_overflow(self):
        with pytest.raises(ConfigError):
            HwConfig("too_big", 4, 10, 250e6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            HwConfig("bad", 0, 1, 250e6)

    def test_make_config(self):
        config = make_config(2, 3)
        assert config.name == "SPASM_2_3"
        assert config.hbm_channels == 1 + 2 * 9

    def test_channel_bandwidth_u280(self):
        assert CHANNEL_BANDWIDTH * U280_NUM_CHANNELS == pytest.approx(
            460e9
        )


class TestHBM:
    def test_channel_transfer_and_cycles(self):
        ch = HBMChannel("test")
        ch.transfer(100)
        ch.transfer(28)
        assert ch.bytes_served == 128
        assert ch.cycles(64.0) == 2.0

    def test_channel_rejects_negative(self):
        with pytest.raises(ValueError):
            HBMChannel("test").transfer(-1)

    def test_system_channel_count_matches_config(self):
        for config in DEFAULT_CONFIGS:
            hbm = HBMSystem(config)
            assert len(hbm) == config.hbm_channels

    def test_system_roles(self):
        hbm = HBMSystem(SPASM_4_1)
        assert "y" in hbm.channels
        assert "g0.value0" in hbm.channels
        assert "g3.pos1" in hbm.channels
        assert "g0.xvec0" in hbm.channels

    def test_busiest(self):
        hbm = HBMSystem(SPASM_4_1)
        hbm["g1.value2"].transfer(1000)
        name, cycles = hbm.busiest(10.0)
        assert name == "g1.value2"
        assert cycles == 100.0

    def test_total_bytes(self):
        hbm = HBMSystem(SPASM_3_2)
        hbm["y"].transfer(11)
        hbm["g0.pos0"].transfer(22)
        assert hbm.total_bytes == 33
