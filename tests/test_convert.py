"""Conversion round-trip and cross-format agreement tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.matrix import (
    COOMatrix,
    coo_to_bsr,
    coo_to_csc,
    coo_to_csr,
    coo_to_dia,
    coo_to_ell,
    csc_to_coo,
    csr_to_coo,
    from_dense,
)
from repro.matrix.base import MatrixShapeError


def dense_matrices(max_dim=24):
    """Hypothesis strategy: small dense float matrices with some zeros."""
    shapes = st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim)
    )
    return shapes.flatmap(
        lambda s: hnp.arrays(
            dtype=np.float64,
            shape=s,
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.0, -3.5]),
        )
    )


class TestRoundtrips:
    @settings(max_examples=40, deadline=None)
    @given(dense_matrices())
    def test_csr_roundtrip(self, dense):
        coo = from_dense(dense)
        assert np.array_equal(
            csr_to_coo(coo_to_csr(coo)).to_dense(), coo.to_dense()
        )

    @settings(max_examples=40, deadline=None)
    @given(dense_matrices())
    def test_csc_roundtrip(self, dense):
        coo = from_dense(dense)
        assert np.array_equal(
            csc_to_coo(coo_to_csc(coo)).to_dense(), coo.to_dense()
        )

    @settings(max_examples=40, deadline=None)
    @given(dense_matrices())
    def test_ell_preserves_dense(self, dense):
        coo = from_dense(dense)
        assert np.array_equal(coo_to_ell(coo).to_dense(), coo.to_dense())

    @settings(max_examples=40, deadline=None)
    @given(dense_matrices())
    def test_dia_preserves_dense(self, dense):
        coo = from_dense(dense)
        assert np.array_equal(coo_to_dia(coo).to_dense(), coo.to_dense())

    @settings(max_examples=40, deadline=None)
    @given(dense_matrices())
    def test_bsr_preserves_dense_up_to_padding(self, dense):
        coo = from_dense(dense)
        bsr = coo_to_bsr(coo, (2, 2))
        padded = bsr.to_dense()
        assert np.array_equal(
            padded[: dense.shape[0], : dense.shape[1]], coo.to_dense()
        )


class TestSpmvAgreement:
    @settings(max_examples=25, deadline=None)
    @given(dense_matrices())
    def test_all_formats_agree(self, dense):
        coo = from_dense(dense)
        rng = np.random.default_rng(7)
        x = rng.random(dense.shape[1])
        reference = dense @ x
        assert np.allclose(coo.spmv(x), reference)
        assert np.allclose(coo_to_csr(coo).spmv(x), reference)
        assert np.allclose(coo_to_csc(coo).spmv(x), reference)
        assert np.allclose(coo_to_ell(coo).spmv(x), reference)
        assert np.allclose(coo_to_dia(coo).spmv(x), reference)
        bsr = coo_to_bsr(coo, (2, 2))
        x_pad = np.zeros(bsr.shape[1])
        x_pad[: x.size] = x
        assert np.allclose(
            bsr.spmv(x_pad)[: dense.shape[0]], reference
        )


class TestNnzInvariants:
    @settings(max_examples=25, deadline=None)
    @given(dense_matrices())
    def test_nnz_preserved(self, dense):
        coo = from_dense(dense)
        assert coo_to_csr(coo).nnz == coo.nnz
        assert coo_to_csc(coo).nnz == coo.nnz
        assert coo_to_ell(coo).nnz == coo.nnz
        assert coo_to_dia(coo).nnz == coo.nnz
        assert coo_to_bsr(coo, (2, 2)).nnz == coo.nnz


class TestBSRShapes:
    def test_pads_shape_up(self):
        coo = COOMatrix([0], [0], [1.0], (3, 5))
        bsr = coo_to_bsr(coo, (2, 2))
        assert bsr.shape == (4, 6)

    def test_rejects_bad_block(self):
        coo = COOMatrix([0], [0], [1.0], (2, 2))
        with pytest.raises(MatrixShapeError):
            coo_to_bsr(coo, (0, 2))

    def test_block_count(self, block_diag_coo):
        bsr = coo_to_bsr(block_diag_coo, (4, 4))
        assert bsr.nblocks == 16  # 64/4 diagonal blocks
        assert bsr.nnz == block_diag_coo.nnz
