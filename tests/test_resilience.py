"""Tests for deterministic fault injection and guarded execution."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.exec.plan import set_shard_fault_hook
from repro.matrix.coo import COOMatrix
from repro.pipeline.cache import ArtifactCache
from repro.resilience import (
    ExecutionGuard,
    FaultInjector,
    GuardConfig,
    IntegrityError,
    InjectedWorkerFault,
    ResilienceEvent,
    ResilienceLog,
    RowOracle,
    clone_spasm,
    guarded_spmv,
    run_campaign,
)
from tests.conftest import random_structured_coo

#: Guard knobs that confront a fault on the very next call.
STRICT = GuardConfig(revalidate_interval=1, check_interval=1)


def encode(coo, tile_size=32):
    return encode_spasm(coo, candidate_portfolios()[0], tile_size)


@pytest.fixture
def spasm(rng):
    return encode(random_structured_coo(rng, 96, "mixed"))


@pytest.fixture
def x(rng, spasm):
    return rng.random(spasm.shape[1])


@pytest.fixture
def reference(spasm, x):
    return spasm.plan().spmv(x)


class TestFaultInjector:
    def test_deterministic_from_seed(self, spasm):
        records = []
        for _ in range(2):
            inj = FaultInjector(seed=42)
            mutant = clone_spasm(spasm)
            records.append([
                inj.flip_stream_word(mutant).to_dict(),
                inj.flip_value(mutant).to_dict(),
            ])
        assert records[0] == records[1]

    def test_clone_isolates_pristine(self, spasm, x):
        before = spasm.plan().spmv(x)
        mutant = clone_spasm(spasm)
        FaultInjector(0).flip_stream_word(mutant)
        FaultInjector(0).flip_value(mutant)
        assert np.array_equal(spasm.plan().spmv(x), before)

    def test_stream_flip_changes_digest(self, spasm):
        from repro.exec import stream_digest

        mutant = clone_spasm(spasm)
        d0 = stream_digest(mutant)
        FaultInjector(1).flip_stream_word(mutant)
        assert stream_digest(mutant) != d0

    def test_value_flip_changes_digest(self, spasm):
        from repro.exec import stream_digest

        mutant = clone_spasm(spasm)
        d0 = stream_digest(mutant)
        FaultInjector(2).flip_value(mutant)
        assert stream_digest(mutant) != d0

    def test_plan_flip_breaks_checksum(self, spasm):
        plan = clone_spasm(spasm).plan()
        assert plan.validate() == []
        FaultInjector(3).flip_plan_array(plan)
        assert plan.validate() != []

    @pytest.mark.parametrize("mode", ["truncate", "zero", "garbage"])
    def test_cache_corruption_modes(self, tmp_path, spasm, mode):
        cache = ArtifactCache(tmp_path)
        cache.store("analysis", "a" * 40,
                    {"v": np.arange(64, dtype=np.int64)}, {})
        record = FaultInjector(4).corrupt_cache_entry(cache, mode=mode)
        assert record is not None and record.mode == mode

    def test_cache_corruption_empty_cache(self, tmp_path):
        assert FaultInjector(0).corrupt_cache_entry(
            ArtifactCache(tmp_path)
        ) is None

    def test_worker_hook_restored_on_exit(self, spasm, x):
        inj = FaultInjector(5)
        with inj.worker_fault(mode="kill", nth=0):
            with pytest.raises(InjectedWorkerFault):
                spasm.plan().spmv(x)
        # hook gone: execution is clean again
        assert np.array_equal(
            spasm.plan().spmv(x), spasm.spmv_naive(x)
        ) or np.allclose(spasm.plan().spmv(x), spasm.spmv_naive(x))


class TestGuardCleanPath:
    def test_bitwise_identical_and_silent(self, spasm, x, reference):
        guard = ExecutionGuard(spasm)
        for _ in range(2 * GuardConfig().check_interval + 1):
            assert np.array_equal(guard.spmv(x), reference)
        assert len(guard.log) == 0

    def test_y_accumulation(self, rng, spasm, x):
        y0 = rng.random(spasm.shape[0])
        guard = ExecutionGuard(spasm)
        assert np.array_equal(
            guard.spmv(x, y=y0), spasm.plan().spmv(x, y=y0)
        )

    def test_shape_validation(self, spasm):
        guard = ExecutionGuard(spasm)
        with pytest.raises(ValueError):
            guard.spmv(np.zeros(7))

    def test_guarded_spmv_helper(self, spasm, x, reference):
        assert np.array_equal(guarded_spmv(spasm, x), reference)

    def test_spmm_clean(self, rng, spasm):
        x_block = rng.random((spasm.shape[1], 3))
        guard = ExecutionGuard(spasm)
        assert np.array_equal(
            guard.spmm(x_block), spasm.plan().spmm(x_block)
        )


class TestGuardDetection:
    def test_plan_corruption_contained(self, spasm, x, reference):
        mutant = clone_spasm(spasm)
        guard = ExecutionGuard(mutant, config=STRICT)
        FaultInjector(7).flip_plan_array(mutant.plan())
        out = guard.spmv(x)
        assert np.array_equal(out, reference)
        kinds = {e.kind for e in guard.log.events}
        assert "detect" in kinds
        surfaces = {e.surface for e in guard.log.events}
        assert "plan" in surfaces

    def test_stream_corruption_raises(self, spasm, x):
        mutant = clone_spasm(spasm)
        guard = ExecutionGuard(mutant, config=STRICT)
        FaultInjector(8).flip_stream_word(mutant)
        with pytest.raises(IntegrityError) as err:
            guard.spmv(x)
        assert err.value.events  # structured evidence attached

    def test_value_corruption_raises(self, spasm, x):
        mutant = clone_spasm(spasm)
        guard = ExecutionGuard(mutant, config=STRICT)
        FaultInjector(9).flip_value(mutant)
        with pytest.raises(IntegrityError):
            guard.spmv(x)

    def test_worker_kill_retried(self, spasm, x, reference):
        mutant = clone_spasm(spasm)
        guard = ExecutionGuard(mutant, config=STRICT)
        with FaultInjector(10).worker_fault(mode="kill", nth=0):
            out = guard.spmv(x)
        assert np.array_equal(out, reference)
        assert any(
            e.surface == "worker" for e in guard.log.events
        )

    def test_persistent_failure_falls_back(self, spasm, x):
        def always_kill(lo, hi):
            raise InjectedWorkerFault("every shard dies")

        guard = ExecutionGuard(clone_spasm(spasm), config=STRICT)
        previous = set_shard_fault_hook(always_kill)
        try:
            out = guard.spmv(x)
        finally:
            set_shard_fault_hook(previous)
        assert np.allclose(out, spasm.spmv_naive(x))
        assert any(
            e.kind == "fallback" for e in guard.log.events
        )

    def test_fallback_disabled_raises(self, spasm, x):
        def always_kill(lo, hi):
            raise InjectedWorkerFault("every shard dies")

        cfg = dataclasses.replace(STRICT, fallback=False)
        guard = ExecutionGuard(clone_spasm(spasm), config=cfg)
        previous = set_shard_fault_hook(always_kill)
        try:
            with pytest.raises(IntegrityError):
                guard.spmv(x)
        finally:
            set_shard_fault_hook(previous)

    def test_spmm_falls_back(self, rng, spasm):
        def always_kill(lo, hi):
            raise InjectedWorkerFault("every shard dies")

        x_block = rng.random((spasm.shape[1], 3))
        guard = ExecutionGuard(clone_spasm(spasm), config=STRICT)
        previous = set_shard_fault_hook(always_kill)
        try:
            out = guard.spmm(x_block)
        finally:
            set_shard_fault_hook(previous)
        assert np.allclose(out, spasm.spmm_naive(x_block))

    def test_quarantines_corrupt_persisted_plan(
        self, tmp_path, spasm, x, reference
    ):
        incidents = []
        cache = ArtifactCache(
            tmp_path, on_event=lambda kind, d: incidents.append(kind)
        )
        seeded = clone_spasm(spasm)
        seeded.plan(cache=cache)
        assert cache.entries()
        FaultInjector(11).corrupt_cache_entry(cache, mode="garbage")
        guard = ExecutionGuard(
            clone_spasm(spasm), config=STRICT, cache=cache
        )
        assert np.array_equal(guard.spmv(x), reference)


class TestRowOracle:
    def test_clean_output_passes(self, spasm, x):
        oracle = RowOracle.build(
            spasm, np.arange(min(8, spasm.shape[0]))
        )
        assert oracle.mismatches(x, spasm.plan().spmv(x)) == []

    def test_corrupted_output_flagged(self, spasm, x):
        rows = np.arange(min(8, spasm.shape[0]))
        oracle = RowOracle.build(spasm, rows)
        bad = spasm.plan().spmv(x)
        victim = int(rows[0])
        bad[victim] += 1.0
        assert victim in oracle.mismatches(x, bad)


class TestResilienceLog:
    def test_counts_and_render(self):
        log = ResilienceLog()
        log.record(ResilienceEvent(
            kind="detect", surface="plan", detail="checksum mismatch",
            action="rebuild", attempt=1,
        ))
        log.record(ResilienceEvent(
            kind="fallback", surface="plan", detail="gave up",
            action="fallback",
        ))
        assert log.counts() == {"detect": 1, "fallback": 1}
        assert "checksum mismatch" in log.render()
        assert len(log.to_dicts()) == 2


TINY_PRESET = {
    "name": "tiny",
    "workload": "stormG2_1000",
    "scale": 0.5,
    "overhead_scale": 0.5,
    "jobs": 2,
    "overhead_calls": 3,
    "trials": {
        "stream": 2, "value": 2, "plan": 2,
        "cache": 2, "worker": 2, "image": 1,
    },
}


class TestCampaign:
    def test_tiny_campaign_zero_escapes(self):
        report = run_campaign(TINY_PRESET, seed=3, overhead=False)
        assert report["zero_escapes"]
        assert report["totals"]["injections"] == 11
        assert report["totals"]["escaped"] == 0
        assert (
            report["totals"]["detected"]
            + report["totals"]["contained"]
            == report["totals"]["injections"]
        )
        assert set(report["surfaces"]) == {
            "stream", "value", "plan", "cache", "worker", "image",
        }
        json.dumps(report)  # report must be JSON-serializable

    def test_campaign_reproducible_from_seed(self):
        a = run_campaign(TINY_PRESET, seed=5, overhead=False)
        b = run_campaign(TINY_PRESET, seed=5, overhead=False)
        assert a == b

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            run_campaign("nope", seed=0)


class TestHwIntegration:
    def test_fast_run_with_guard_bitwise(self, rng, spasm, x):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        acc = SpasmAccelerator(SPASM_4_1)
        guard = ExecutionGuard(spasm)
        plain = acc.run(spasm, x, engine="fast")
        guarded = acc.run(spasm, x, engine="fast", guard=guard)
        assert np.array_equal(plain.y, guarded.y)
        assert plain.hbm_bytes == guarded.hbm_bytes

    def test_guard_for_wrong_matrix_rejected(self, rng, spasm, x):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        other = clone_spasm(spasm)
        acc = SpasmAccelerator(SPASM_4_1)
        with pytest.raises(ValueError):
            acc.run(spasm, x, engine="fast",
                    guard=ExecutionGuard(other))

    def test_guard_requires_fast_engine(self, spasm, x):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        acc = SpasmAccelerator(SPASM_4_1)
        with pytest.raises(ValueError):
            acc.run(spasm, x, engine="event",
                    guard=ExecutionGuard(spasm))
