"""Unit tests for CSR, CSC, BSR, ELL and DIA formats."""

import numpy as np
import pytest

from repro.matrix import (
    BSRMatrix,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    MatrixShapeError,
)
from repro.matrix.ell import ELL_PAD


class TestCSR:
    def test_basic_spmv(self, rng):
        # [[1, 2], [0, 3]]
        m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert np.allclose(m.spmv([1.0, 1.0]), [3.0, 3.0])

    def test_to_dense(self):
        m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert np.array_equal(m.to_dense(), [[1.0, 2.0], [0.0, 3.0]])

    def test_row_access(self):
        m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        cols, vals = m.row(0)
        assert cols.tolist() == [0, 1]
        assert vals.tolist() == [1.0, 2.0]

    def test_row_lengths(self):
        m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert m.row_lengths().tolist() == [2, 1]

    def test_empty_rows_spmv(self):
        m = CSRMatrix([0, 0, 1, 1], [2], [5.0], (3, 3))
        assert np.allclose(m.spmv([0.0, 0.0, 2.0]), [0.0, 10.0, 0.0])

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(MatrixShapeError):
            CSRMatrix([0, 1], [0], [1.0], (2, 2))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(MatrixShapeError):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_rejects_indptr_mismatch(self):
        with pytest.raises(MatrixShapeError):
            CSRMatrix([0, 1, 3], [0, 1], [1.0, 2.0], (2, 2))

    def test_rejects_out_of_range_column(self):
        with pytest.raises(MatrixShapeError):
            CSRMatrix([0, 1, 1], [5], [1.0], (2, 2))

    def test_storage_bytes(self):
        m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert m.storage_bytes() == 3 * 4 + 3 * 8


class TestCSC:
    def test_basic_spmv(self):
        # [[1, 0], [2, 3]] column-major
        m = CSCMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert np.allclose(m.spmv([1.0, 2.0]), [1.0, 8.0])

    def test_to_dense(self):
        m = CSCMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        assert np.array_equal(m.to_dense(), [[1.0, 0.0], [2.0, 3.0]])

    def test_col_access(self):
        m = CSCMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        rows, vals = m.col(0)
        assert rows.tolist() == [0, 1]

    def test_rejects_bad_indptr(self):
        with pytest.raises(MatrixShapeError):
            CSCMatrix([0, 1], [0], [1.0], (2, 2))

    def test_rejects_out_of_range_row(self):
        with pytest.raises(MatrixShapeError):
            CSCMatrix([0, 1, 1], [7], [1.0], (2, 2))


class TestBSR:
    def test_basic_spmv(self):
        blocks = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        m = BSRMatrix([0, 1, 1], [0], blocks, (4, 4))
        y = m.spmv([1.0, 1.0, 0.0, 0.0])
        assert np.allclose(y, [3.0, 7.0, 0.0, 0.0])

    def test_to_dense(self):
        blocks = np.array([[[1.0, 0.0], [0.0, 1.0]]])
        m = BSRMatrix([0, 0, 1], [1], blocks, (4, 4))
        dense = m.to_dense()
        assert dense[2, 2] == 1.0 and dense[3, 3] == 1.0
        assert dense[:2].sum() == 0.0

    def test_nnz_excludes_padding(self):
        blocks = np.array([[[1.0, 0.0], [0.0, 0.0]]])
        m = BSRMatrix([0, 1], [0], blocks, (2, 2))
        assert m.nnz == 1
        assert m.stored_values == 4

    def test_rejects_indivisible_shape(self):
        blocks = np.zeros((1, 2, 2))
        with pytest.raises(MatrixShapeError):
            BSRMatrix([0, 1], [0], blocks, (3, 4))

    def test_rejects_block_index_out_of_range(self):
        blocks = np.zeros((1, 2, 2))
        with pytest.raises(MatrixShapeError):
            BSRMatrix([0, 1], [5], blocks, (2, 4))

    def test_storage_bytes(self):
        blocks = np.ones((2, 2, 2))
        m = BSRMatrix([0, 1, 2], [0, 1], blocks, (4, 4))
        # 3 row pointers + 2 block indices + 8 padded values
        assert m.storage_bytes() == 3 * 4 + 2 * 4 + 8 * 4

    def test_empty_spmv(self):
        m = BSRMatrix([0, 0], [], np.zeros((0, 2, 2)), (2, 2))
        assert np.allclose(m.spmv([1.0, 1.0]), [0.0, 0.0])


class TestELL:
    def test_basic_spmv(self):
        col_idx = np.array([[0, 1], [1, ELL_PAD]])
        values = np.array([[1.0, 2.0], [3.0, 0.0]])
        m = ELLMatrix(col_idx, values, (2, 2))
        assert np.allclose(m.spmv([1.0, 1.0]), [3.0, 3.0])

    def test_padding_not_counted_in_nnz(self):
        col_idx = np.array([[0], [ELL_PAD]])
        values = np.array([[1.0], [0.0]])
        m = ELLMatrix(col_idx, values, (2, 2))
        assert m.nnz == 1
        assert m.stored_values == 2

    def test_rejects_nonzero_padding_value(self):
        col_idx = np.array([[ELL_PAD]])
        values = np.array([[3.0]])
        with pytest.raises(MatrixShapeError):
            ELLMatrix(col_idx, values, (1, 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(MatrixShapeError):
            ELLMatrix(np.array([[9]]), np.array([[1.0]]), (1, 2))

    def test_zero_width(self):
        m = ELLMatrix(np.zeros((2, 0), dtype=int), np.zeros((2, 0)), (2, 2))
        assert np.allclose(m.spmv([1.0, 1.0]), [0.0, 0.0])

    def test_storage_bytes(self):
        col_idx = np.array([[0, 1], [1, ELL_PAD]])
        values = np.array([[1.0, 2.0], [3.0, 0.0]])
        m = ELLMatrix(col_idx, values, (2, 2))
        assert m.storage_bytes() == 4 * 8


class TestDIA:
    def test_basic_spmv(self):
        # main diagonal [1, 2] plus superdiagonal [5] at offset 1
        stripes = np.array([[1.0, 2.0], [5.0, 0.0]])
        m = DIAMatrix([0, 1], stripes, (2, 2))
        assert np.allclose(m.spmv([1.0, 1.0]), [6.0, 2.0])

    def test_to_dense(self):
        stripes = np.array([[1.0, 2.0]])
        m = DIAMatrix([0], stripes, (2, 2))
        assert np.array_equal(m.to_dense(), [[1.0, 0.0], [0.0, 2.0]])

    def test_negative_offset(self):
        stripes = np.array([[0.0, 7.0]])
        m = DIAMatrix([-1], stripes, (2, 2))
        assert m.to_dense()[1, 0] == 7.0

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(MatrixShapeError):
            DIAMatrix([0, 0], np.zeros((2, 2)), (2, 2))

    def test_rejects_stripe_count_mismatch(self):
        with pytest.raises(MatrixShapeError):
            DIAMatrix([0], np.zeros((2, 2)), (2, 2))

    def test_storage_bytes(self):
        m = DIAMatrix([0], np.array([[1.0, 2.0]]), (2, 2))
        assert m.storage_bytes() == 4 + 2 * 4

    def test_nnz_excludes_stripe_padding(self):
        stripes = np.array([[5.0, 0.0]])
        m = DIAMatrix([1], stripes, (2, 2))
        assert m.nnz == 1
        assert m.stored_values == 2
