"""Tests for content-addressed caching of pipeline artifacts."""

import os

import numpy as np
import pytest

from repro.core import SpasmCompiler
from repro.pipeline import ArtifactCache, fingerprint, matrix_digest
from repro.pipeline.cache import (
    chain_key,
    portfolio_from_state,
    portfolio_state,
)
from tests.conftest import random_structured_coo

TILE_SIZES = (16, 32, 64)
CACHEABLE = ("analysis", "selection", "decomposition", "schedule")


@pytest.fixture
def coo(rng):
    return random_structured_coo(rng, 96, "mixed")


def cache_states(program):
    return {
        e.name: e.cache for e in program.trace if e.name in CACHEABLE
    }


class TestColdWarm:
    def test_cold_then_warm(self, coo, tmp_path):
        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        cold = compiler.compile(coo)
        assert cache_states(cold) == {s: "miss" for s in CACHEABLE}
        warm = compiler.compile(coo)
        assert cache_states(warm) == {s: "hit" for s in CACHEABLE}
        assert warm.trace.cache_hits == len(CACHEABLE)

    def test_warm_program_byte_identical(self, coo, tmp_path):
        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        cold = compiler.compile(coo)
        warm = compiler.compile(coo)
        assert np.array_equal(cold.spasm.words, warm.spasm.words)
        assert np.array_equal(cold.spasm.values, warm.spasm.values)
        assert cold.tile_size == warm.tile_size
        assert cold.hw_config.name == warm.hw_config.name
        assert cold.portfolio.name == warm.portfolio.name
        assert warm.selection is not None
        assert cold.selection.paddings == warm.selection.paddings
        assert [
            (p.tile_size, p.hw_config.name, p.cycles)
            for p in cold.schedule.points
        ] == [
            (p.tile_size, p.hw_config.name, p.cycles)
            for p in warm.schedule.points
        ]

    def test_warm_across_compiler_instances(self, coo, tmp_path):
        a = SpasmCompiler(tile_sizes=TILE_SIZES, cache_dir=tmp_path)
        b = SpasmCompiler(tile_sizes=TILE_SIZES, cache_dir=tmp_path)
        cold = a.compile(coo)
        warm = b.compile(coo)
        assert cache_states(warm) == {s: "hit" for s in CACHEABLE}
        assert np.array_equal(cold.spasm.words, warm.spasm.words)

    def test_entries_on_disk(self, coo, tmp_path):
        SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        ).compile(coo)
        entries = ArtifactCache(tmp_path).entries()
        stages = {name.split("-")[0] for name in entries}
        assert stages == set(CACHEABLE)

    def test_no_cache_dir_means_off(self, coo):
        program = SpasmCompiler(tile_sizes=TILE_SIZES).compile(coo)
        assert cache_states(program) == {s: "off" for s in CACHEABLE}


class TestInvalidation:
    def test_different_matrix_misses(self, rng, tmp_path):
        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        compiler.compile(random_structured_coo(rng, 96, "mixed"))
        other = compiler.compile(random_structured_coo(rng, 96, "mixed"))
        assert cache_states(other) == {s: "miss" for s in CACHEABLE}

    def test_k_change_invalidates_everything(self, coo, tmp_path):
        SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        ).compile(coo)
        program = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path, k=2
        ).compile(coo)
        assert cache_states(program) == {s: "miss" for s in CACHEABLE}

    def test_strategy_change_keeps_analysis(self, coo, tmp_path):
        SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        ).compile(coo)
        program = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path,
            portfolio_strategy="greedy",
        ).compile(coo)
        assert cache_states(program) == {
            "analysis": "hit",
            "selection": "miss",
            "decomposition": "miss",
            "schedule": "miss",
        }

    def test_tile_sweep_change_invalidates_schedule_only(
        self, coo, tmp_path
    ):
        SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        ).compile(coo)
        program = SpasmCompiler(
            tile_sizes=(16, 32), cache_dir=tmp_path
        ).compile(coo)
        assert cache_states(program) == {
            "analysis": "hit",
            "selection": "hit",
            "decomposition": "hit",
            "schedule": "miss",
        }

    def test_fixed_portfolio_invalidates_downstream(
        self, coo, tmp_path
    ):
        """A non-cacheable upstream pass still re-keys its children."""
        from repro.core import candidate_portfolios

        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        compiler.compile(coo)
        program = compiler.compile(
            coo, fixed_portfolio=candidate_portfolios()[1]
        )
        states = cache_states(program)
        assert states["analysis"] == "hit"
        assert states["selection"] == "off"  # ablation: not cacheable
        assert states["decomposition"] == "miss"
        assert states["schedule"] == "miss"

    def test_jobs_share_cache_entries(self, coo, tmp_path):
        """The thread count must not change cache keys."""
        SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path, jobs=1
        ).compile(coo)
        program = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path, jobs=4
        ).compile(coo)
        assert cache_states(program) == {s: "hit" for s in CACHEABLE}


class TestCorruption:
    def test_corrupted_entry_recomputed(self, coo, tmp_path):
        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        cold = compiler.compile(coo)
        for path in tmp_path.glob("schedule-*.npz"):
            path.write_bytes(b"this is not an npz archive")
        program = compiler.compile(coo)
        states = cache_states(program)
        assert states["schedule"] == "miss"  # recomputed, re-stored
        assert states["analysis"] == "hit"
        assert np.array_equal(cold.spasm.words, program.spasm.words)
        again = compiler.compile(coo)
        assert cache_states(again)["schedule"] == "hit"

    def test_truncated_entry_recomputed(self, coo, tmp_path):
        compiler = SpasmCompiler(
            tile_sizes=TILE_SIZES, cache_dir=tmp_path
        )
        compiler.compile(coo)
        for path in tmp_path.glob("analysis-*.npz"):
            path.write_bytes(path.read_bytes()[:20])
        program = compiler.compile(coo)
        assert cache_states(program)["analysis"] == "miss"

    def test_load_missing_is_none(self, tmp_path):
        assert ArtifactCache(tmp_path).load("analysis", "0" * 40) is None

    def test_store_load_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        arrays = {"a": np.arange(4, dtype=np.int64)}
        cache.store("analysis", "f" * 40, arrays, {"note": "hello"})
        entry = cache.load("analysis", "f" * 40)
        assert entry is not None
        assert np.array_equal(entry.arrays["a"], arrays["a"])
        assert entry.meta["note"] == "hello"


class TestQuarantine:
    """Corrupt entries are quarantined, never served and never fatal."""

    def seed_entry(self, tmp_path, on_event=None):
        cache = ArtifactCache(tmp_path, on_event=on_event)
        cache.store("analysis", "a" * 40,
                    {"v": np.arange(64, dtype=np.int64)},
                    {"note": "seed"})
        return cache

    def test_truncated_entry_quarantined(self, tmp_path):
        events = []
        cache = self.seed_entry(
            tmp_path, on_event=lambda kind, d: events.append((kind, d))
        )
        path = cache.path("analysis", "a" * 40)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.load("analysis", "a" * 40) is None  # miss, no raise
        assert len(cache.quarantined()) == 1
        assert events and events[0][0] == "quarantine"
        # the sidecar records why
        name = cache.quarantined()[0]
        reason = open(
            cache.quarantine_dir + "/" + name + ".reason"
        ).read()
        assert reason.strip()
        # a rebuild stores a good entry; later loads hit again
        cache.store("analysis", "a" * 40,
                    {"v": np.arange(64, dtype=np.int64)}, {})
        assert cache.load("analysis", "a" * 40) is not None

    def test_checksum_mismatch_quarantined(self, tmp_path):
        import json as jsonlib

        cache = self.seed_entry(tmp_path)
        path = cache.path("analysis", "a" * 40)
        # Rewrite the payload array while keeping the recorded
        # checksum: a valid zip whose content silently changed.
        with np.load(path, allow_pickle=False) as data:
            meta = jsonlib.loads(str(data["__meta__"]))
        np.savez(
            path,
            __meta__=np.array(jsonlib.dumps(meta)),
            v=np.arange(64, dtype=np.int64) + 1,
        )
        assert cache.load("analysis", "a" * 40) is None
        assert len(cache.quarantined()) == 1
        reason_files = [
            n for n in os.listdir(cache.quarantine_dir)
            if n.endswith(".reason")
        ]
        assert reason_files
        text = open(
            cache.quarantine_dir + "/" + reason_files[0]
        ).read()
        assert "checksum" in text

    def test_wrong_magic_is_plain_miss(self, tmp_path):
        import json as jsonlib

        cache = self.seed_entry(tmp_path)
        path = cache.path("analysis", "a" * 40)
        np.savez(
            path,
            __meta__=np.array(jsonlib.dumps({"magic": "older-v0"})),
            v=np.arange(4, dtype=np.int64),
        )
        assert cache.load("analysis", "a" * 40) is None
        assert cache.quarantined() == ()  # foreign layout: not corrupt

    def test_quarantine_names_collide_safely(self, tmp_path):
        cache = self.seed_entry(tmp_path)
        path = cache.path("analysis", "a" * 40)
        for _ in range(3):
            with open(path, "wb") as fh:
                fh.write(b"junk")
            assert cache.load("analysis", "a" * 40) is None
        assert len(cache.quarantined()) == 3

    def test_quarantine_missing_entry_is_noop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.quarantine("analysis", "b" * 40) is None

    def test_concurrent_writers_never_corrupt(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        cache = ArtifactCache(tmp_path)
        payloads = [
            np.full(256, fill, dtype=np.int64) for fill in range(8)
        ]

        def write(i):
            cache.store("analysis", "c" * 40,
                        {"v": payloads[i % 8]}, {"writer": i})

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(64)))
            for _ in range(32):
                entry = cache.load("analysis", "c" * 40)
                # Atomic replace: every observed state is one of the
                # complete payloads, never a torn mix.
                assert entry is not None
                assert any(
                    np.array_equal(entry.arrays["v"], p)
                    for p in payloads
                )
        assert cache.quarantined() == ()

    def test_corrupt_plan_payload_rejected_and_quarantined(
        self, tmp_path, coo
    ):
        """A persisted plan whose arrays break the dispatch invariants
        is quarantined on load and transparently rebuilt."""
        from repro.core import candidate_portfolios, encode_spasm
        from repro.exec import ExecutionPlan, PLAN_STAGE

        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        cache = ArtifactCache(tmp_path)
        built = ExecutionPlan.build(spasm, cache=cache)
        key = built.digest[:40]
        entry = cache.load(PLAN_STAGE, key)
        arrays = dict(entry.arrays)
        arrays["seg_starts"] = arrays["seg_starts"][::-1].copy()
        cache.store(PLAN_STAGE, key, arrays, entry.meta)
        reloaded = ExecutionPlan.build(spasm, cache=cache)
        assert reloaded.validate() == []
        assert np.array_equal(reloaded.vals, built.vals)
        assert len(cache.quarantined()) == 1


class TestKeys:
    def test_matrix_digest_content_addressed(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        clone = type(coo).from_dense(coo.to_dense())
        assert matrix_digest(coo) == matrix_digest(clone)
        other = random_structured_coo(rng, 64, "mixed")
        assert matrix_digest(coo) != matrix_digest(other)

    def test_fingerprint_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == \
            fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_chain_key_depends_on_parent(self):
        a = chain_key("m", "stage", "cfg", None)
        b = chain_key("m", "stage", "cfg", "parent")
        assert a != b
        assert len(a) == 40

    def test_portfolio_state_roundtrip(self):
        from repro.core import candidate_portfolios

        portfolio = candidate_portfolios()[2]
        rebuilt = portfolio_from_state(portfolio_state(portfolio))
        assert rebuilt.name == portfolio.name
        assert rebuilt.k == portfolio.k
        assert [t.mask for t in rebuilt.templates] == \
            [t.mask for t in portfolio.templates]


class TestEviction:
    """``max_bytes`` arms LRU eviction; recency follows hits."""

    def store_keyed(self, cache, key, fill, size=512):
        cache.store("analysis", key * 40,
                    {"v": np.full(size, fill, dtype=np.int64)}, {})
        return cache.path("analysis", key * 40)

    def entry_size(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = self.store_keyed(cache, "a", 0)
        return os.path.getsize(path)

    def test_budget_evicts_oldest(self, tmp_path):
        events = []
        size = self.entry_size(tmp_path / "probe")
        cache = ArtifactCache(
            tmp_path, max_bytes=int(3.5 * size),
            on_event=lambda kind, d: events.append((kind, d)),
        )
        # Pin mtimes as entries land so LRU order is unambiguous:
        # a oldest, c newest.
        for age, key in enumerate("abc"):
            path = self.store_keyed(cache, key, age)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        self.store_keyed(cache, "d", 3)
        assert cache.total_bytes() <= cache.max_bytes
        names = cache.entries()
        assert not any("a" * 40 in n for n in names)  # LRU victim
        assert any("d" * 40 in n for n in names)  # just written
        evicts = [d for kind, d in events if kind == "evict"]
        assert evicts and all(
            d["max_bytes"] == cache.max_bytes for d in evicts
        )

    def test_load_bumps_recency(self, tmp_path):
        size = self.entry_size(tmp_path / "probe")
        cache = ArtifactCache(tmp_path, max_bytes=int(2.5 * size))
        for age, key in enumerate("ab"):
            path = self.store_keyed(cache, key, age)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # A hit on the nominally-older entry rescues it from LRU.
        assert cache.load("analysis", "a" * 40) is not None
        self.store_keyed(cache, "c", 2)
        names = cache.entries()
        assert any("a" * 40 in n for n in names)
        assert not any("b" * 40 in n for n in names)

    def test_oversized_entry_never_evicts_itself(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=64)  # below any entry
        self.store_keyed(cache, "a", 0)
        assert cache.load("analysis", "a" * 40) is not None

    def test_no_budget_keeps_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i, key in enumerate("abcdef"):
            self.store_keyed(cache, key, i)
        assert len(cache.entries()) == 6

    def test_quarantine_retention_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, quarantine_keep=2)
        for round_idx in range(5):
            self.store_keyed(cache, "a", round_idx)
            path = cache.path("analysis", "a" * 40)
            with open(path, "wb") as fh:
                fh.write(b"junk")
            assert cache.load("analysis", "a" * 40) is None
        # Reason sidecars ride along with their corpses.
        assert len(cache.quarantined()) <= 2
        reasons = [
            n for n in os.listdir(cache.quarantine_dir)
            if n.endswith(".reason")
        ]
        assert len(reasons) <= 2

    def test_concurrent_readers_writers_under_budget(self, tmp_path):
        """Readers racing writers racing the evictor: every load is a
        clean hit (a complete payload) or a clean miss, never a torn
        read or an exception."""
        from concurrent.futures import ThreadPoolExecutor

        size = self.entry_size(tmp_path / "probe")
        cache = ArtifactCache(tmp_path, max_bytes=int(3.5 * size))
        keys = [chr(ord("a") + i) * 40 for i in range(8)]

        def writer(i):
            cache.store("analysis", keys[i % 8],
                        {"v": np.full(512, i % 8, dtype=np.int64)},
                        {})

        def reader(i):
            entry = cache.load("analysis", keys[i % 8])
            if entry is not None:
                assert np.array_equal(
                    entry.arrays["v"],
                    np.full(512, i % 8, dtype=np.int64),
                )

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(64)))
            list(pool.map(reader, range(64)))
        assert cache.quarantined() == ()
        assert cache.total_bytes() <= cache.max_bytes + size
