"""Tests for the power and energy models (Table VII)."""

import pytest

from repro.hw.configs import DEFAULT_CONFIGS, SPASM_3_2, SPASM_3_4, SPASM_4_1
from repro.hw.power import (
    PLATFORM_POWER,
    energy_efficiency,
    platform_power,
    spasm_power,
)


class TestPlatformPower:
    def test_table_vii_constants(self):
        assert platform_power("RTX 3090") == 333.0
        assert platform_power("HiSparse") == 45.0
        assert platform_power("Serpens_a16") == 48.0
        assert platform_power("Serpens_a24") == 48.0

    def test_spasm_requires_config(self):
        with pytest.raises(ValueError):
            platform_power("SPASM")

    def test_spasm_average_near_58w(self):
        # Table VII reports 58 W average for SPASM.
        avg = sum(spasm_power(c) for c in DEFAULT_CONFIGS) / 3
        assert avg == pytest.approx(58.0, abs=3.0)

    def test_spasm_scales_with_channels(self):
        assert spasm_power(SPASM_3_4) > spasm_power(SPASM_4_1)
        assert spasm_power(SPASM_4_1) > spasm_power(SPASM_3_2)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            platform_power("TPU")

    def test_dispatch_via_name(self):
        assert platform_power("SPASM_4_1", SPASM_4_1) == spasm_power(
            SPASM_4_1
        )


class TestEnergyEfficiency:
    def test_formula(self):
        assert energy_efficiency(100.0, 50.0) == 2.0

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError):
            energy_efficiency(1.0, 0.0)

    def test_paper_ordering_possible(self):
        # With the paper's throughput numbers, the Table VII ordering
        # SPASM > Serpens > HiSparse > GPU must come out of the formula.
        gpu = energy_efficiency(76.6, PLATFORM_POWER["RTX 3090"])
        hisparse = energy_efficiency(16.7, PLATFORM_POWER["HiSparse"])
        serpens = energy_efficiency(46.6, PLATFORM_POWER["Serpens"])
        spasm = energy_efficiency(71.9, 58.0)
        assert spasm > serpens > hisparse > gpu
