"""Tests for accumulator hazard modeling and hazard-aware reordering."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.hw.configs import SPASM_4_1
from repro.hw.hazards import (
    count_stall_cycles,
    hazard_aware_reorder,
    hazard_report,
    perf_with_hazards,
    stall_cycles_per_tile,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


def single_row_stream(portfolio, n_blocks=6):
    """A matrix whose tile stream repeatedly hits the same r_idx: a
    horizontal strip of dense 4x4 blocks in one submatrix row."""
    dense = np.zeros((16, 16 * n_blocks))
    for b in range(n_blocks):
        dense[0:4, b * 16 : b * 16 + 4] = 1.0
    coo = COOMatrix.from_dense(dense)
    return encode_spasm(coo, portfolio, 16 * n_blocks)


class TestCountStalls:
    def test_zero_latency_no_stalls(self, portfolio, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        assert count_stall_cycles(spasm, 0) == 0

    def test_back_to_back_same_row(self, portfolio):
        spasm = single_row_stream(portfolio, n_blocks=3)
        # Every group targets submatrix row 0 (the same 4-wide psum
        # word), so each consecutive pair stalls latency-1 cycles.
        n = spasm.n_groups
        assert n == 12  # 3 dense blocks x 4 row templates
        assert count_stall_cycles(spasm, 8) == (n - 1) * (8 - 1)

    def test_distinct_rows_no_stalls(self, portfolio):
        coo = COOMatrix.from_dense(np.eye(64))
        spasm = encode_spasm(coo, portfolio, 64)
        # 16 diagonal groups, each in a distinct r_idx.
        assert count_stall_cycles(spasm, 8) == 0

    def test_latency_scales_stalls(self, portfolio):
        spasm = single_row_stream(portfolio)
        assert count_stall_cycles(spasm, 4) < count_stall_cycles(
            spasm, 12
        )

    def test_per_tile_sums_to_total(self, portfolio, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16)
        per_tile = stall_cycles_per_tile(spasm, 8)
        assert per_tile.sum() == count_stall_cycles(spasm, 8)

    def test_rejects_negative_latency(self, portfolio):
        spasm = single_row_stream(portfolio)
        with pytest.raises(ValueError):
            count_stall_cycles(spasm, -1)

    def test_empty_matrix(self, portfolio):
        spasm = encode_spasm(COOMatrix([], [], [], (16, 16)),
                             portfolio, 16)
        assert count_stall_cycles(spasm, 8) == 0


class TestReorder:
    def test_preserves_semantics(self, portfolio, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        reordered = hazard_aware_reorder(spasm)
        x = rng.random(96)
        assert np.allclose(reordered.spmv(x), coo.spmv(x))
        assert np.array_equal(
            reordered.to_coo().to_dense(), coo.to_dense()
        )

    def test_preserves_tile_structure(self, portfolio, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        reordered = hazard_aware_reorder(spasm)
        assert np.array_equal(reordered.tile_ptr, spasm.tile_ptr)
        assert np.array_equal(reordered.tile_rows, spasm.tile_rows)
        assert reordered.n_groups == spasm.n_groups
        assert reordered.padding == spasm.padding

    def test_flags_recomputed_consistently(self, portfolio, rng):
        from repro.core.encoding import unpack_position_array

        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16)
        reordered = hazard_aware_reorder(spasm)
        fields = unpack_position_array(reordered.words)
        boundaries = set((reordered.tile_ptr[1:] - 1).tolist())
        for i in range(reordered.n_groups):
            assert fields["ce"][i] == (i in boundaries)
        assert np.all(~fields["re"] | fields["ce"])

    def test_reduces_stalls_on_row_heavy_stream(self, portfolio):
        # A tile with two active submatrix rows but visits clustered by
        # row: interleaving must cut stalls.
        dense = np.zeros((16, 64))
        dense[0:4, :] = 1.0
        dense[8:12, :] = 1.0
        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, portfolio, 64)
        report = hazard_report(spasm, latency=8)
        assert report.stalls_after < report.stalls_before
        assert 0 < report.reduction <= 1.0

    def test_simulates_correctly_after_reorder(self, portfolio, rng):
        from repro.hw import SpasmAccelerator

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = hazard_aware_reorder(encode_spasm(coo, portfolio, 32))
        x = rng.random(64)
        result = SpasmAccelerator(SPASM_4_1).run(spasm, x)
        assert np.allclose(result.y, coo.spmv(x))

    def test_empty_passthrough(self, portfolio):
        spasm = encode_spasm(COOMatrix([], [], [], (16, 16)),
                             portfolio, 16)
        assert hazard_aware_reorder(spasm) is spasm


class TestPerfWithHazards:
    def test_zero_latency_matches_base_model(self, portfolio, rng):
        from repro.hw.perf_model import perf_model

        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        base = perf_model(
            spasm.global_composition(), SPASM_4_1, spasm.tile_size
        )
        assert perf_with_hazards(spasm, SPASM_4_1, 0) == pytest.approx(
            base
        )

    def test_latency_never_speeds_up(self, portfolio, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        assert perf_with_hazards(spasm, SPASM_4_1, 8) >= (
            perf_with_hazards(spasm, SPASM_4_1, 0)
        )

    def test_reorder_never_hurts_estimate(self, portfolio, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        reordered = hazard_aware_reorder(spasm)
        assert perf_with_hazards(reordered, SPASM_4_1, 8) <= (
            perf_with_hazards(spasm, SPASM_4_1, 8) + 1e-9
        )
