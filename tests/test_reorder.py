"""Tests for the reordering preprocessing extension."""

import numpy as np
import pytest

from repro.analysis.storage_compare import spasm_storage_bytes
from repro.core.reorder import (
    ReorderResult,
    apply_permutation,
    best_reordering,
    identity_reorder,
    reorder_gain,
    sort_rows_by_block_signature,
    symmetric_degree_sort,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


class TestApplyPermutation:
    def test_row_permutation_moves_rows(self):
        coo = COOMatrix.from_dense(np.diag([1.0, 2.0, 3.0]))
        result = apply_permutation(coo, [2, 0, 1], [0, 1, 2])
        dense = result.matrix.to_dense()
        # new row 0 holds the old row 2.
        assert dense[0, 2] == 3.0

    def test_inverse_roundtrip(self, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        perm = rng.permutation(32)
        result = apply_permutation(coo, perm, np.arange(32))
        back = apply_permutation(
            result.matrix, result.row_inverse, np.arange(32)
        )
        assert np.array_equal(back.matrix.to_dense(), coo.to_dense())

    def test_rejects_non_permutation(self):
        coo = COOMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            apply_permutation(coo, [0, 0, 1], [0, 1, 2])
        with pytest.raises(ValueError):
            apply_permutation(coo, [0, 1, 2], [0, 1, 1])

    def test_spmv_in_original_space(self, rng):
        coo = random_structured_coo(rng, 48, "mixed")
        perm = rng.permutation(48)
        cperm = rng.permutation(48)
        result = apply_permutation(coo, perm, cperm)
        x = rng.random(48)
        assert np.allclose(result.spmv(x), coo.spmv(x))

    def test_spmv_with_custom_backend(self, rng):
        from repro.core import candidate_portfolios, encode_spasm

        coo = random_structured_coo(rng, 48, "mixed")
        result = sort_rows_by_block_signature(coo)
        spasm = encode_spasm(
            result.matrix, candidate_portfolios()[0], 16
        )
        x = rng.random(48)
        assert np.allclose(result.spmv(x, spasm.spmv), coo.spmv(x))


class TestOrderings:
    def test_signature_sort_preserves_semantics(self, rng):
        coo = random_structured_coo(rng, 64, "scatter")
        result = sort_rows_by_block_signature(coo)
        x = rng.random(64)
        assert np.allclose(result.spmv(x), coo.spmv(x))

    def test_signature_sort_groups_scrambled_diagonal(self, rng):
        # A scrambled 1-nnz-per-row matrix: rows sharing a column block
        # must end up adjacent, fusing four singleton patterns into one
        # 4-cell submatrix.
        base = COOMatrix.from_dense(np.eye(64))
        perm = rng.permutation(64)
        scrambled = apply_permutation(base, perm, np.arange(64)).matrix
        result = sort_rows_by_block_signature(scrambled)
        from repro.core import analyze_local_patterns

        hist = analyze_local_patterns(result.matrix)
        # 16 full submatrices instead of up to 64 singletons.
        assert hist.total == 16

    def test_signature_improves_scatter(self):
        coo = g.random_uniform(1024, 0.004, seed=2)
        result = sort_rows_by_block_signature(coo)
        gain = reorder_gain(coo, result)
        assert gain["gain"] > 1.0

    def test_degree_sort_requires_square(self):
        coo = COOMatrix([0], [0], [1.0], (2, 3))
        with pytest.raises(ValueError):
            symmetric_degree_sort(coo)

    def test_degree_sort_hubs_first(self):
        coo = g.power_law_graph(256, avg_degree=6, seed=1)
        result = symmetric_degree_sort(coo)
        degree = np.bincount(coo.rows, minlength=256)
        new_degrees = degree[result.row_perm]
        assert np.all(np.diff(new_degrees) <= 0)

    def test_degree_sort_preserves_semantics(self, rng):
        coo = g.power_law_graph(128, avg_degree=4, seed=3)
        result = symmetric_degree_sort(coo)
        x = rng.random(128)
        assert np.allclose(result.spmv(x), coo.spmv(x))


class TestBestReordering:
    def test_never_worse_than_identity(self):
        for make in (
            lambda: g.banded(256, 3, fill=0.9, seed=0),
            lambda: g.random_uniform(512, 0.005, seed=1),
            lambda: g.block_diagonal(32, 4, fill=1.0, seed=2),
        ):
            coo = make()
            best = best_reordering(coo)
            assert spasm_storage_bytes(best.matrix) <= (
                spasm_storage_bytes(coo)
            )

    def test_identity_on_structured(self):
        coo = g.block_diagonal(32, 4, fill=1.0, seed=0)
        best = best_reordering(coo)
        # Perfect structure: nothing to gain, identity must survive.
        assert spasm_storage_bytes(best.matrix) == spasm_storage_bytes(
            coo
        )

    def test_identity_result_type(self):
        coo = COOMatrix.from_dense(np.eye(8))
        result = identity_reorder(coo)
        assert isinstance(result, ReorderResult)
        assert result.matrix is coo
