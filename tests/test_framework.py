"""Tests for the end-to-end SpasmCompiler (Figure 6 workflow)."""

import numpy as np
import pytest

from repro.core import SpasmCompiler, candidate_portfolios
from repro.hw import SPASM_3_4, SPASM_4_1, SpasmAccelerator
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def compiler():
    return SpasmCompiler(tile_sizes=(16, 32, 64, 128))


class TestCompile:
    def test_end_to_end(self, rng, compiler):
        coo = random_structured_coo(rng, 128, "mixed")
        program = compiler.compile(coo)
        assert program.spasm.source_nnz == coo.nnz
        assert program.tile_size in (16, 32, 64, 128)
        assert program.hw_config.name.startswith("SPASM_")
        assert program.selection is not None
        assert program.schedule is not None

    def test_compiled_program_executes_correctly(self, rng, compiler):
        coo = random_structured_coo(rng, 128, "mixed")
        program = compiler.compile(coo)
        x = rng.random(128)
        result = SpasmAccelerator(program.hw_config).run(program.spasm, x)
        assert np.allclose(result.y, coo.spmv(x))

    def test_selection_picks_matching_portfolio(self, compiler):
        coo = g.anti_diagonal_stripes(128, (0, 31, -45), fill=1.0, seed=0)
        program = compiler.compile(coo)
        kinds = {t.kind for t in program.portfolio}
        assert "ADIAG" in kinds

    def test_rejects_non_coo(self, compiler):
        with pytest.raises(TypeError):
            compiler.compile(np.eye(8))


class TestAblationKnobs:
    def test_fixed_portfolio_skips_selection(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        fixed = candidate_portfolios()[0]
        program = compiler.compile(coo, fixed_portfolio=fixed)
        assert program.selection is None
        assert program.portfolio is fixed

    def test_fixed_tile_and_config_skip_schedule(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(
            coo, fixed_tile_size=32, fixed_hw_config=SPASM_4_1
        )
        assert program.schedule is None
        assert program.tile_size == 32
        assert program.hw_config is SPASM_4_1

    def test_fixed_config_only_still_explores_tiles(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(coo, fixed_hw_config=SPASM_3_4)
        assert program.schedule is not None
        assert program.hw_config is SPASM_3_4

    def test_fixed_tile_only_still_explores_configs(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(coo, fixed_tile_size=64)
        assert program.schedule is not None
        assert program.tile_size == 64

    def test_optimized_not_slower_than_fixed_baseline(self, rng,
                                                      compiler):
        coo = random_structured_coo(rng, 256, "mixed")
        fixed = compiler.compile(
            coo,
            fixed_portfolio=candidate_portfolios()[0],
            fixed_tile_size=128,
            fixed_hw_config=SPASM_4_1,
        )
        full = compiler.compile(coo)
        assert (
            full.estimate().total_cycles / full.hw_config.frequency_hz
            <= fixed.estimate().total_cycles
            / fixed.hw_config.frequency_hz * 1.0001
        )


class TestReport:
    def test_stage_times_recorded(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        report = compiler.compile(coo).report
        assert report.analysis_ms >= 0
        assert report.selection_ms >= 0
        assert report.decomposition_ms >= 0
        assert report.schedule_ms >= 0
        assert report.total_ms == pytest.approx(
            report.analysis_ms
            + report.selection_ms
            + report.decomposition_ms
            + report.schedule_ms
        )

    def test_row_rendering(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        row = compiler.compile(coo).report.row("test")
        assert row.startswith("test")

    def test_estimated_gflops_positive(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        assert compiler.compile(coo).estimated_gflops() > 0


class TestPortfolioStrategies:
    @pytest.mark.parametrize("strategy", ["candidates", "greedy",
                                          "combined"])
    def test_all_strategies_compile_and_compute(self, rng, strategy):
        compiler = SpasmCompiler(
            tile_sizes=(32, 64), portfolio_strategy=strategy
        )
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(coo)
        x = rng.random(64)
        assert np.allclose(program.spasm.spmv(x), coo.spmv(x))

    def test_combined_never_more_padding_than_candidates(self, rng):
        coo = random_structured_coo(rng, 128, "mixed")
        plain = SpasmCompiler(tile_sizes=(64,)).compile(coo)
        combined = SpasmCompiler(
            tile_sizes=(64,), portfolio_strategy="combined"
        ).compile(coo)
        assert combined.spasm.padding <= plain.spasm.padding

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SpasmCompiler(portfolio_strategy="magic")

    def test_hazard_aware_output(self, rng):
        from repro.hw.hazards import count_stall_cycles

        coo = random_structured_coo(rng, 128, "blocks")
        stock = SpasmCompiler(tile_sizes=(128,)).compile(coo)
        tuned = SpasmCompiler(
            tile_sizes=(128,), hazard_aware=True
        ).compile(coo)
        assert count_stall_cycles(tuned.spasm, 8) <= (
            count_stall_cycles(stock.spasm, 8)
        )
        x = rng.random(128)
        assert np.allclose(tuned.spasm.spmv(x), coo.spmv(x))


class TestCustomPerfModel:
    def test_injected_model_drives_choice(self, rng):
        calls = []

        def fake_model(gc, hw, tile_size):
            calls.append(tile_size)
            return float(tile_size)  # smaller tile always wins

        compiler = SpasmCompiler(
            tile_sizes=(16, 64), perf_model=fake_model
        )
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(coo)
        assert program.tile_size == 16
        assert set(calls) == {16, 64}
