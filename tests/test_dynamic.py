"""Tests for the greedy dynamic portfolio builder (extension)."""

import numpy as np
import pytest

from repro.core import analyze_local_patterns, select_portfolio
from repro.core.bitmask import diag_mask, full_mask, popcount, row_mask
from repro.core.decompose import DecompositionTable
from repro.core.dynamic import (
    GreedyBuildResult,
    GreedyPortfolioBuilder,
    greedy_storage_bytes,
)
from repro.core.selection import storage_bytes_estimate
from repro.core.templates import MAX_TEMPLATES
from repro.synth import generators as g


class TestBuilderBasics:
    def test_pure_block_matrix_needs_few_templates(self, block_diag_coo):
        hist = analyze_local_patterns(block_diag_coo)
        result = GreedyPortfolioBuilder().build(hist)
        assert result.total_padding == 0
        # The dominant full-block pattern is decomposed by 4 aligned
        # templates; the rest is coverage patching.
        table = DecompositionTable(result.portfolio)
        assert table.padding(full_mask(4)) == 0

    def test_antidiag_matrix_picks_antidiag_templates(self):
        coo = g.anti_diagonal_stripes(128, (0, 33), fill=1.0, seed=0)
        hist = analyze_local_patterns(coo)
        result = GreedyPortfolioBuilder().build(hist)
        masks = set(m for m in result.portfolio.masks)
        top = int(hist.patterns[0])
        # Some selected template must exactly cover the top pattern's
        # anti-diagonal.
        assert any(top & ~m == 0 for m in masks)

    def test_portfolio_always_covers_grid(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder().build(hist)
        union = 0
        for mask in result.portfolio.masks:
            union |= mask
        assert union == full_mask(4)

    def test_respects_budget(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder(n_templates=8).build(hist)
        assert len(result.portfolio) <= 8

    def test_gains_positive(self, small_coo):
        # Every greedy round must strictly reduce the relaxed padding.
        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder().build(hist)
        assert result.gains
        assert all(gain > 0 for gain in result.gains)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            GreedyPortfolioBuilder(n_templates=0)
        with pytest.raises(ValueError):
            GreedyPortfolioBuilder(n_templates=MAX_TEMPLATES + 1)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            GreedyPortfolioBuilder(pool=[])

    def test_rejects_k_mismatch(self, small_coo):
        hist = analyze_local_patterns(small_coo, k=2)
        with pytest.raises(ValueError):
            GreedyPortfolioBuilder(k=4).build(hist)

    def test_custom_pool(self):
        coo = g.diagonal_stripes(64, (0,), fill=1.0, seed=0)
        hist = analyze_local_patterns(coo)
        pool = [diag_mask(s, 4) for s in range(4)] + [
            row_mask(r, 4) for r in range(4)
        ]
        result = GreedyPortfolioBuilder(pool=pool).build(hist)
        assert diag_mask(0, 4) in result.portfolio.masks

    def test_result_dataclass(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder().build(hist)
        assert isinstance(result, GreedyBuildResult)
        assert result.total_padding >= 0


class TestQuality:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: g.banded(128, 2, fill=0.8, seed=1),
            lambda: g.anti_diagonal_stripes(128, (0, 21), fill=0.9,
                                            seed=2),
            lambda: g.block_diagonal(24, 4, fill=0.7, seed=3),
        ],
    )
    def test_combined_never_worse_than_candidate_selection(self, make):
        from repro.core.dynamic import select_portfolio_dynamic

        coo = make()
        hist = analyze_local_patterns(coo)
        selection = select_portfolio(hist)
        candidate_bytes = storage_bytes_estimate(
            hist, selection.portfolio
        )
        combined = select_portfolio_dynamic(hist)
        assert storage_bytes_estimate(hist, combined) <= candidate_bytes

    def test_fixed_length_templates_only(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder().build(hist)
        assert all(popcount(m) == 4 for m in result.portfolio.masks)

    def test_encodable_and_correct(self, rng, small_coo, small_dense):
        from repro.core import encode_spasm

        hist = analyze_local_patterns(small_coo)
        result = GreedyPortfolioBuilder().build(hist)
        spasm = encode_spasm(small_coo, result.portfolio, 16)
        x = rng.random(32)
        assert np.allclose(spasm.spmv(x), small_dense @ x)
        assert spasm.padding == result.total_padding


class TestCoverCountArray:
    def test_matches_padding(self):
        from repro.core.templates import candidate_portfolios

        portfolio = candidate_portfolios()[0]
        table = DecompositionTable(portfolio)
        counts = table.cover_count_array()
        rng = np.random.default_rng(4)
        for __ in range(50):
            p = int(rng.integers(1, 1 << 16))
            assert table.padding(p) == 4 * int(counts[p]) - popcount(p)

    def test_sentinel_for_uncoverable(self):
        table = DecompositionTable([row_mask(0, 4)], k=4)
        counts = table.cover_count_array(sentinel=99)
        assert counts[1 << 15] == 99
        assert counts[0] == 0
