"""Tests for the event-level Serpens simulator."""

import numpy as np
import pytest

from repro.baselines import SERPENS_A16
from repro.baselines.serpens_sim import (
    LANES_PER_CHANNEL,
    SerpensSimulator,
    cross_check,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def sim():
    return SerpensSimulator(num_channels=16)


class TestPreprocess:
    def test_record_conservation(self, sim, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        program = sim.preprocess(coo)
        total = sum(
            rows.size
            for ch in program.lane_rows
            for rows in ch
        )
        assert total == coo.nnz

    def test_lane_balance(self, sim):
        coo = g.banded(512, 3, fill=0.9, seed=0)
        program = sim.preprocess(coo)
        sizes = [
            rows.size for ch in program.lane_rows for rows in ch
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_stream_bytes(self, sim, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        assert sim.preprocess(coo).stream_bytes() == coo.nnz * 8


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    def test_spmv_exact(self, sim, rng, kind):
        coo = random_structured_coo(rng, 96, kind)
        x = rng.random(96)
        run = sim.spmv(coo, x)
        assert np.allclose(run.y, coo.spmv(x))

    def test_accumulates_y(self, sim, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        x = rng.random(64)
        y0 = rng.random(64)
        run = sim.run(sim.preprocess(coo), x, y0)
        assert np.allclose(run.y, coo.spmv(x, y0))

    def test_empty(self, sim):
        coo = COOMatrix([], [], [], (8, 8))
        run = sim.spmv(coo, np.ones(8))
        assert np.allclose(run.y, 0.0)
        # No compute, but x/y still stream a few bytes.
        assert run.stall_cycles == 0
        assert run.cycles < 1.0

    def test_rejects_bad_x(self, sim, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        with pytest.raises(ValueError):
            sim.spmv(coo, np.ones(5))


class TestCycleModel:
    def test_lower_bound_lane_throughput(self, sim):
        coo = g.banded(1024, 4, fill=0.9, seed=0)
        run = sim.spmv(coo, np.ones(1024))
        lower = coo.nnz / (16 * LANES_PER_CHANNEL)
        assert run.cycles >= lower

    def test_hazards_stall_single_row(self):
        sim = SerpensSimulator(num_channels=1, adder_latency=8)
        # All non-zeros in one row: every lane stalls on every record.
        n = 256
        coo = COOMatrix(
            np.zeros(n, dtype=int), np.arange(n), np.ones(n), (4, n)
        )
        run = sim.spmv(coo, np.ones(n))
        assert run.stall_cycles > 0
        diag = COOMatrix.from_dense(np.eye(n))
        run_diag = sim.spmv(diag, np.ones(n))
        assert run_diag.stall_cycles == 0
        assert run.cycles > run_diag.cycles

    def test_zero_latency_no_stalls(self, rng):
        sim = SerpensSimulator(num_channels=4, adder_latency=0)
        coo = random_structured_coo(rng, 64, "mixed")
        run = sim.spmv(coo, np.ones(64))
        assert run.stall_cycles == 0

    def test_more_channels_fewer_cycles(self):
        coo = g.banded(1024, 4, fill=0.9, seed=1)
        a16 = SerpensSimulator(num_channels=16).spmv(coo, np.ones(1024))
        a24 = SerpensSimulator(
            num_channels=24, bandwidth=403e9, frequency_hz=276e6
        ).spmv(coo, np.ones(1024))
        assert a24.cycles <= a16.cycles

    def test_gflops_accounting(self, sim, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        run = sim.spmv(coo, np.ones(96))
        expected = (2 * coo.nnz + 96) / run.time_s / 1e9
        assert run.gflops == pytest.approx(expected)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SerpensSimulator(num_channels=0)
        with pytest.raises(ValueError):
            SerpensSimulator(adder_latency=-1)


class TestCrossCheck:
    def test_event_sim_is_an_upper_bound(self):
        # The event simulator idealizes away the shuffle conflicts and
        # burst inefficiencies the calibrated analytic model absorbs,
        # so it must land strictly above the analytic prediction —
        # but bounded (it shares the same roofline), which validates
        # the analytic model's placement from first principles.
        analytic = SERPENS_A16()
        sim = SerpensSimulator(num_channels=16)
        for make in (
            lambda: g.banded(2048, 4, fill=0.8, seed=0),
            lambda: g.diagonal_stripes(4096, (0, 9, -17), fill=0.9,
                                       seed=1),
        ):
            coo = make()
            result = cross_check(coo, analytic, sim)
            assert result["ratio"] > 1.0
            # 1/BASE_EFFICIENCY-ish headroom, never unbounded.
            assert result["ratio"] < 25.0
