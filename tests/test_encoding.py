"""Tests for the 32-bit position encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    MAX_SUBMATRIX_INDEX,
    MAX_TILE_SIZE,
    EncodingError,
    PositionEncoding,
    pack_position,
    pack_position_array,
    unpack_position,
    unpack_position_array,
)


class TestScalarRoundtrip:
    @given(
        st.integers(0, MAX_SUBMATRIX_INDEX),
        st.integers(0, MAX_SUBMATRIX_INDEX),
        st.booleans(),
        st.booleans(),
        st.integers(0, 15),
    )
    def test_roundtrip(self, c_idx, r_idx, ce, re, t_idx):
        word = pack_position(c_idx, r_idx, ce, re, t_idx)
        assert 0 <= word < (1 << 32)
        decoded = unpack_position(word)
        assert decoded == PositionEncoding(c_idx, r_idx, ce, re, t_idx)

    def test_fields_do_not_collide(self):
        # Extremes of each field leave the others untouched.
        word = pack_position(MAX_SUBMATRIX_INDEX, 0, False, False, 0)
        decoded = unpack_position(word)
        assert decoded.r_idx == 0 and decoded.t_idx == 0
        word = pack_position(0, 0, False, False, 15)
        assert unpack_position(word).c_idx == 0

    def test_word_is_32bit(self):
        word = pack_position(
            MAX_SUBMATRIX_INDEX, MAX_SUBMATRIX_INDEX, True, True, 15
        )
        assert word < (1 << 32)

    def test_max_tile_size_constant(self):
        assert MAX_TILE_SIZE == 2**13 * 4 == 32768


class TestScalarErrors:
    def test_c_idx_overflow(self):
        with pytest.raises(EncodingError):
            pack_position(MAX_SUBMATRIX_INDEX + 1, 0, False, False, 0)

    def test_r_idx_overflow(self):
        with pytest.raises(EncodingError):
            pack_position(0, MAX_SUBMATRIX_INDEX + 1, False, False, 0)

    def test_t_idx_overflow(self):
        with pytest.raises(EncodingError):
            pack_position(0, 0, False, False, 16)

    def test_negative(self):
        with pytest.raises(EncodingError):
            pack_position(-1, 0, False, False, 0)

    def test_unpack_rejects_wide_word(self):
        with pytest.raises(EncodingError):
            unpack_position(1 << 32)


class TestArrayForms:
    def test_array_matches_scalar(self, rng):
        n = 100
        c = rng.integers(0, MAX_SUBMATRIX_INDEX + 1, n)
        r = rng.integers(0, MAX_SUBMATRIX_INDEX + 1, n)
        ce = rng.random(n) < 0.5
        re = rng.random(n) < 0.5
        t = rng.integers(0, 16, n)
        words = pack_position_array(c, r, ce, re, t)
        assert words.dtype == np.uint32
        for i in range(0, n, 17):
            assert int(words[i]) == pack_position(
                int(c[i]), int(r[i]), bool(ce[i]), bool(re[i]), int(t[i])
            )

    def test_unpack_array(self, rng):
        n = 50
        c = rng.integers(0, MAX_SUBMATRIX_INDEX + 1, n)
        r = rng.integers(0, MAX_SUBMATRIX_INDEX + 1, n)
        ce = rng.random(n) < 0.5
        re = rng.random(n) < 0.5
        t = rng.integers(0, 16, n)
        fields = unpack_position_array(pack_position_array(c, r, ce, re, t))
        assert np.array_equal(fields["c_idx"], c)
        assert np.array_equal(fields["r_idx"], r)
        assert np.array_equal(fields["ce"], ce)
        assert np.array_equal(fields["re"], re)
        assert np.array_equal(fields["t_idx"], t)

    def test_array_range_errors(self):
        with pytest.raises(EncodingError):
            pack_position_array(
                np.array([MAX_SUBMATRIX_INDEX + 1]),
                np.array([0]),
                np.array([False]),
                np.array([False]),
                np.array([0]),
            )
        with pytest.raises(EncodingError):
            pack_position_array(
                np.array([0]),
                np.array([0]),
                np.array([False]),
                np.array([False]),
                np.array([16]),
            )

    def test_empty_arrays(self):
        words = pack_position_array(
            np.array([]), np.array([]), np.array([]), np.array([]),
            np.array([]),
        )
        assert words.size == 0
