"""Storage cost accounting tests (Table I / Table VI inputs)."""

import numpy as np
import pytest

from repro.matrix import COOMatrix, storage_cost, storage_report
from repro.matrix.storage import (
    bsr_bytes,
    coo_bytes,
    csr_bytes,
    dia_bytes,
    ell_bytes,
    hisparse_serpens_bytes,
)
from repro.synth import generators as g


@pytest.fixture
def sample():
    # 4x4 with 5 non-zeros
    dense = np.array(
        [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 2.0, 3.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 0.0, 5.0],
        ]
    )
    return COOMatrix.from_dense(dense)


class TestCostFormulas:
    def test_coo_12_bytes_per_nnz(self, sample):
        assert coo_bytes(sample) == 5 * 12

    def test_csr(self, sample):
        assert csr_bytes(sample) == (4 + 1) * 4 + 5 * 8

    def test_hisparse_serpens_8_bytes_per_nnz(self, sample):
        assert hisparse_serpens_bytes(sample) == 5 * 8

    def test_hisparse_serpens_constant_1_5x(self, sample):
        assert coo_bytes(sample) / hisparse_serpens_bytes(sample) == 1.5

    def test_bsr_counts_padding(self, sample):
        # blocks at (0,0), (0,1), (1,0), (1,1) -> 4 blocks of 2x2
        assert bsr_bytes(sample) == 3 * 4 + 4 * 4 + 16 * 4

    def test_ell(self, sample):
        # max row length 2 -> 4 rows x 2 slots x 8 bytes
        assert ell_bytes(sample) == 8 * 8

    def test_dia(self, sample):
        # occupied diagonals: -3 (4.0), 0 (1,2,5), 1 (3.0)
        assert dia_bytes(sample) == 3 * 4 + 3 * 4 * 4


class TestStorageCostDispatch:
    def test_known_format(self, sample):
        assert storage_cost(sample, "COO") == 60

    def test_unknown_format(self, sample):
        with pytest.raises(KeyError):
            storage_cost(sample, "nope")


class TestStorageReport:
    def test_default_formats(self, sample):
        report = storage_report(sample, "sample")
        assert set(report.bytes_by_format) == {
            "COO", "CSR", "BSR", "HiSparse & Serpens",
        }

    def test_spasm_entry(self, sample):
        report = storage_report(sample, "sample", spasm_bytes=40)
        assert report.improvement("SPASM") == 60 / 40

    def test_coo_improvement_is_one(self, sample):
        report = storage_report(sample, "sample")
        assert report.improvement("COO") == 1.0

    def test_formats_order_coo_first(self, sample):
        report = storage_report(sample, "sample", spasm_bytes=40)
        assert report.formats[0] == "COO"


class TestShapeExpectations:
    """Directional checks mirroring the paper's Table VI narrative."""

    def test_bsr_wins_on_pure_blocks(self):
        coo = g.block_diagonal(50, 2, fill=1.0, seed=0)
        report = storage_report(coo, "blocks")
        assert report.improvement("BSR") > report.improvement("CSR")

    def test_bsr_loses_on_scatter(self):
        coo = g.random_uniform(200, 0.01, seed=0)
        report = storage_report(coo, "scatter")
        assert report.improvement("BSR") < 1.0

    def test_csr_improvement_bounded_by_1_5(self):
        coo = g.banded(300, 3, fill=0.9, seed=1)
        report = storage_report(coo, "band")
        assert 1.0 < report.improvement("CSR") <= 1.5
