"""Tests for the static invariant checker (repro.verify)."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import candidate_portfolios, encode_spasm, load_spasm, save_spasm
from repro.core.format import FormatError
from repro.hw import SPASM_4_1, SpasmAccelerator
from repro.hw.hazards import hazard_aware_reorder
from repro.hw.memory_image import pack_images
from repro.hw.opcode import opcode_table
from repro.matrix import COOMatrix
from repro.verify import (
    Report,
    VerificationError,
    all_rules,
    verify_memory_image,
    verify_opcode_table,
    verify_spasm,
)

TILE = 32


def random_coo(seed=0, n=64, nnz=300):
    rng = np.random.default_rng(seed)
    idx = rng.choice(n * n, size=nnz, replace=False)
    vals = rng.uniform(1.0, 2.0, size=nnz)  # nonzero values only
    return COOMatrix(idx // n, idx % n, vals, shape=(n, n))


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


@pytest.fixture(scope="module")
def coo():
    return random_coo()


@pytest.fixture()
def spasm(coo, portfolio):
    return encode_spasm(coo, portfolio, TILE)


def error_rules(report):
    return {d.rule_id for d in report.errors}


class TestCleanArtifacts:
    def test_fresh_stream_is_clean(self, spasm, coo):
        report = verify_spasm(spasm, source=coo)
        assert report.ok
        assert not report.diagnostics
        assert len(report.rules_run) >= 12

    def test_empty_stream_is_clean(self, portfolio):
        empty = encode_spasm(
            COOMatrix([], [], [], (TILE, TILE)), portfolio, TILE
        )
        assert verify_spasm(empty).ok

    def test_hazard_reordered_has_no_errors(self, spasm, coo):
        reordered = hazard_aware_reorder(spasm)
        report = verify_spasm(reordered, source=coo)
        assert report.ok  # warnings (stream order) are acceptable

    def test_memory_image_is_clean(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        report = verify_memory_image(image, spasm=spasm)
        assert report.ok
        assert not report.diagnostics

    def test_opcode_table_is_clean(self, portfolio):
        report = verify_opcode_table(opcode_table(portfolio), portfolio)
        assert report.ok

    def test_deserialized_is_clean(self, spasm, tmp_path):
        path = tmp_path / "t.npz"
        save_spasm(path, spasm)
        assert verify_spasm(load_spasm(path, verify=True)).ok


class TestPositionRules:
    def test_c_range(self, spasm):
        spasm.words[0] |= np.uint32(0x1FFF)
        assert "pos.c_range" in error_rules(verify_spasm(spasm))

    def test_r_range(self, spasm):
        spasm.words[0] |= np.uint32(0x1FFF) << np.uint32(13)
        assert "pos.r_range" in error_rules(verify_spasm(spasm))

    def test_t_range(self, coo):
        from repro.core import build_portfolio

        small = build_portfolio("rw+cw")  # 8 templates
        spasm = encode_spasm(coo, small, TILE)
        spasm.words[0] |= np.uint32(0xF) << np.uint32(28)
        assert "pos.t_range" in error_rules(verify_spasm(spasm))

    def test_ce_boundary(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        report = verify_spasm(spasm)
        assert "pos.ce_boundary" in error_rules(report)
        # the diagnostic points at the exact group
        diag = next(
            d for d in report.errors if d.rule_id == "pos.ce_boundary"
        )
        assert diag.location.group == 0
        assert diag.location.tile == 0

    def test_re_boundary(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(27)
        assert "pos.re_boundary" in error_rules(verify_spasm(spasm))

    def test_duplicate_group(self, spasm):
        tile0 = slice(spasm.tile_ptr[0], spasm.tile_ptr[1])
        if spasm.words[tile0].size < 2:
            pytest.skip("first tile has a single group")
        # copy group 0's word onto group 1 (drop only the CE/RE flags)
        spasm.words[1] = spasm.words[0] & ~np.uint32(0x3 << 26)
        report = verify_spasm(spasm)
        assert "pos.duplicate_group" in error_rules(report)

    def test_stream_order_is_warning(self, spasm, coo):
        reordered = hazard_aware_reorder(spasm)
        report = verify_spasm(reordered, source=coo)
        assert report.ok
        if report.warnings:  # reorder actually permuted something
            assert {d.rule_id for d in report.warnings} == {
                "pos.stream_order"
            }


class TestFormatRules:
    def test_structure_tile_ptr(self, spasm):
        spasm.tile_ptr[-1] += 1
        assert "fmt.structure" in error_rules(verify_spasm(spasm))

    def test_tile_order(self, spasm):
        assert spasm.n_tiles >= 2
        for arr in (spasm.tile_rows, spasm.tile_cols):
            arr[[0, 1]] = arr[[1, 0]]
        assert "fmt.tile_order" in error_rules(verify_spasm(spasm))

    def test_tile_bounds(self, spasm):
        spasm.tile_cols[0] = 1000
        assert "fmt.tile_bounds" in error_rules(verify_spasm(spasm))

    def test_value_bounds(self, spasm):
        # a high r_idx decodes past the matrix edge
        spasm.words[0] |= np.uint32(0x1FFF) << np.uint32(13)
        assert "fmt.value_bounds" in error_rules(verify_spasm(spasm))

    def test_nnz_excess(self, spasm):
        pad = np.flatnonzero(spasm.values == 0.0)
        if pad.size == 0:
            pytest.skip("no padding slot to corrupt")
        spasm.values.flat[pad[0]] = 7.0
        report = verify_spasm(spasm)
        assert error_rules(report) & {"fmt.nnz", "fmt.overlap"}

    def test_decomposition_canonical(self, coo, portfolio, spasm):
        # Re-labeling a group's template (keeping its stored cells
        # plausible) breaks the canonical decomposition.
        spasm.words[2] ^= np.uint32(1) << np.uint32(28)
        report = verify_spasm(spasm, source=coo)
        assert error_rules(report) & {
            "fmt.decomposition", "fmt.roundtrip", "pos.t_range"
        }

    def test_roundtrip_requires_source(self, spasm, coo):
        without = verify_spasm(spasm)
        with_src = verify_spasm(spasm, source=coo)
        assert "fmt.roundtrip" not in without.rules_run
        assert "fmt.roundtrip" in with_src.rules_run

    def test_roundtrip_catches_moved_cell(self, spasm, coo):
        # moving a group within the tile keeps every field in range but
        # decodes to different coordinates than the source
        fields_c = spasm.words[0] & np.uint32(0x1FFF)
        spt = TILE // spasm.k
        new_c = (int(fields_c) + 1) % spt
        spasm.words[0] = (
            (spasm.words[0] & ~np.uint32(0x1FFF)) | np.uint32(new_c)
        )
        report = verify_spasm(spasm, source=coo)
        assert not report.ok


class TestOpcodeRules:
    def test_table_size(self, portfolio):
        lut = opcode_table(portfolio)[:-1]
        report = verify_opcode_table(lut, portfolio)
        assert "opc.table_size" in error_rules(report)

    def test_width(self, portfolio):
        lut = opcode_table(portfolio)
        lut[0] |= 1 << 30
        assert "opc.width" in error_rules(
            verify_opcode_table(lut, portfolio)
        )

    def test_operands(self, portfolio):
        lut = opcode_table(portfolio)
        # force a1 operand select to an out-of-range node (7)
        lut[0] |= 0x7 << 12
        report = verify_opcode_table(lut, portfolio)
        assert "opc.operands" in error_rules(report)

    def test_out_rows(self, portfolio):
        lut = opcode_table(portfolio)
        lut[0] ^= 0x7 << 18  # clobber output lane 0 routing
        report = verify_opcode_table(lut, portfolio)
        assert error_rules(report) & {"opc.out_rows", "opc.semantics"}

    def test_mul_lanes(self, portfolio):
        lut = opcode_table(portfolio)
        lut[0] ^= 0x3  # clobber multiplier lane 0 select
        report = verify_opcode_table(lut, portfolio)
        assert error_rules(report) & {"opc.mul_lanes", "opc.semantics"}

    def test_semantics_catches_swapped_opcodes(self, portfolio):
        lut = opcode_table(portfolio)
        distinct = lut[0] != lut[4]
        lut[0], lut[4] = lut[4], lut[0]
        report = verify_opcode_table(lut, portfolio)
        assert not distinct or not report.ok


class TestMemoryRules:
    def test_missing_channel(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        values = dict(image.value_images)
        name = sorted(values)[0]
        del values[name]
        tampered = dataclasses.replace(image, value_images=values)
        report = verify_memory_image(tampered)
        assert "mem.channels" in error_rules(report)
        assert any(
            d.location.channel == name for d in report.errors
        )

    def test_value_bytes(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        values = dict(image.value_images)
        name = next(n for n in sorted(values) if len(values[n]))
        values[name] = values[name][:-16]
        tampered = dataclasses.replace(image, value_images=values)
        assert "mem.value_bytes" in error_rules(
            verify_memory_image(tampered)
        )

    def test_pos_bytes(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        pos = dict(image.position_images)
        name = next(n for n in sorted(pos) if len(pos[n]))
        pos[name] = pos[name] + b"\x00\x00\x00\x00"
        tampered = dataclasses.replace(image, position_images=pos)
        assert "mem.pos_bytes" in error_rules(
            verify_memory_image(tampered)
        )

    def test_descriptors(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        descriptors = [list(d) for d in image.descriptors]
        pe = next(
            i for i, d in enumerate(descriptors) if d
        )
        row, col, n = descriptors[pe][0]
        descriptors[pe][0] = (row, col + 1, n)
        tampered = dataclasses.replace(image, descriptors=descriptors)
        report = verify_memory_image(tampered, spasm=spasm)
        assert "mem.descriptors" in error_rules(report)

    def test_image_roundtrip(self, spasm):
        image = pack_images(spasm, SPASM_4_1)
        pos = dict(image.position_images)
        name = next(n for n in sorted(pos) if len(pos[n]) >= 4)
        corrupted = bytes([pos[name][0] ^ 1]) + pos[name][1:]
        pos[name] = corrupted
        tampered = dataclasses.replace(image, position_images=pos)
        report = verify_memory_image(tampered, spasm=spasm)
        assert "mem.roundtrip" in error_rules(report)

    def test_pack_images_verify_flag(self, spasm):
        assert pack_images(spasm, SPASM_4_1, verify=True) is not None


class TestValidateIntegration:
    def test_validate_clean_returns_diagnostics(self, spasm):
        assert spasm.validate() == []

    def test_validate_aggregates_all_errors(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)  # CE flip
        spasm.words[1] |= np.uint32(0x1FFF)  # c_idx out of range
        with pytest.raises(FormatError) as exc_info:
            spasm.validate()
        diagnostics = exc_info.value.diagnostics
        assert len(diagnostics) >= 2
        rules = {d.rule_id for d in diagnostics}
        assert "pos.ce_boundary" in rules
        assert "pos.c_range" in rules
        # the message enumerates every violation
        assert str(exc_info.value).count("ERROR") >= 2

    def test_validate_is_value_error(self, spasm):
        spasm.tile_ptr[-1] += 1
        with pytest.raises(ValueError):
            spasm.validate()

    def test_accelerator_verify_flag(self, spasm, coo):
        x = np.random.default_rng(1).random(spasm.shape[1])
        acc = SpasmAccelerator(SPASM_4_1)
        result = acc.run(spasm, x, engine="fast", verify=True)
        assert np.allclose(result.y, spasm.spmv(x))
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        with pytest.raises(VerificationError):
            acc.run(spasm, x, engine="fast", verify=True)

    def test_load_spasm_verify_flag(self, spasm, tmp_path):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        path = tmp_path / "bad.npz"
        save_spasm(path, spasm)
        assert load_spasm(path) is not None  # default stays lenient
        with pytest.raises(FormatError):
            load_spasm(path, verify=True)


class TestReportAPI:
    def test_json_roundtrip(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        report = verify_spasm(spasm)
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["errors"] == len(report.errors)
        diag = payload["diagnostics"][0]
        assert diag["rule"] == "pos.ce_boundary"
        assert diag["location"]["group"] == 0
        assert isinstance(diag["details"], dict)

    def test_render_mentions_rule_and_location(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        text = verify_spasm(spasm).render()
        assert "pos.ce_boundary" in text
        assert "tile 0" in text
        assert "1 errors" in text

    def test_raise_if_errors_preserves_type(self, spasm):
        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        report = verify_spasm(spasm)
        with pytest.raises(FormatError):
            report.raise_if_errors(FormatError)
        clean = Report()
        clean.raise_if_errors()  # no-op

    def test_rule_catalogue_metadata(self):
        rules = all_rules()
        assert len(rules) >= 12
        families = {r.rule_id.split(".")[0] for r in rules}
        assert {"pos", "fmt", "opc", "mem"} <= families
        for rule in rules:
            assert rule.title, rule.rule_id
            assert rule.paper, rule.rule_id


class TestCLI:
    def test_verify_workload_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["verify", "tmt_sym", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_verify_npz_and_json(self, tmp_path, spasm, capsys):
        from repro.cli import main

        path = tmp_path / "t.npz"
        save_spasm(path, spasm)
        assert main(["verify", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_verify_corrupt_exits_nonzero(self, tmp_path, spasm,
                                          capsys):
        from repro.cli import main

        spasm.words[0] ^= np.uint32(1) << np.uint32(26)
        path = tmp_path / "bad.npz"
        save_spasm(path, spasm)
        assert main(["verify", str(path)]) == 1
        assert "pos.ce_boundary" in capsys.readouterr().out

    def test_verify_hardware_includes_memory_rules(self, tmp_path,
                                                   spasm, capsys):
        from repro.cli import main

        path = tmp_path / "t.npz"
        save_spasm(path, spasm)
        assert main([
            "verify", str(path), "--hardware", "SPASM_4_1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(
            r.startswith("mem.") for r in payload["rules_run"]
        )

    def test_missing_file_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["verify", "/nonexistent/file.npz"]) == 1
        assert "error:" in capsys.readouterr().err


# -- property-based fuzzing ----------------------------------------------

_FUZZ_COO = random_coo(seed=7, n=32, nnz=40)
_FUZZ_PORTFOLIO = candidate_portfolios()[0]
_FUZZ_SPASM = encode_spasm(_FUZZ_COO, _FUZZ_PORTFOLIO, 16)


@settings(max_examples=20, deadline=None)
@given(
    group=st.integers(0, _FUZZ_SPASM.n_groups - 1),
    bit=st.integers(0, 31),
)
def test_any_single_bit_flip_is_detected(group, bit):
    """Every single-bit corruption of any position word is caught."""
    mutated = dataclasses.replace(
        _FUZZ_SPASM, words=_FUZZ_SPASM.words.copy()
    )
    mutated.words[group] ^= np.uint32(1) << np.uint32(bit)
    report = verify_spasm(mutated, source=_FUZZ_COO)
    assert not report.ok, (
        f"flip of bit {bit} in group {group} went undetected"
    )
    # every error diagnostic is attributed and locatable
    for diag in report.errors:
        assert diag.rule_id
        assert diag.message


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_fresh_encodings_never_false_positive(seed):
    """verify_spasm reports nothing on arbitrary fresh encodings."""
    coo = random_coo(seed=seed, n=32, nnz=30)
    spasm = encode_spasm(coo, _FUZZ_PORTFOLIO, 16)
    report = verify_spasm(spasm, source=coo)
    assert report.ok
    assert not report.diagnostics
