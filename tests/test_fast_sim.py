"""Equivalence tests: vectorized fast simulator vs the event simulator."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.hw import DEFAULT_CONFIGS, SPASM_3_2, SPASM_4_1, SpasmAccelerator
from repro.synth import generators as g
from repro.synth import load_workload
from tests.conftest import random_structured_coo


def both(coo, config, tile_size=32, portfolio_idx=0, seed=5, y0=None):
    portfolio = candidate_portfolios()[portfolio_idx]
    spasm = encode_spasm(coo, portfolio, tile_size)
    rng = np.random.default_rng(seed)
    x = rng.random(coo.shape[1])
    acc = SpasmAccelerator(config)
    return (
        acc.run(spasm, x, y0, engine="event"),
        acc.run(spasm, x, y0, engine="fast"),
        coo,
        x,
    )


class TestEquivalence:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    def test_numeric_equality(self, rng, kind):
        coo = random_structured_coo(rng, 96, kind)
        event, fast, __, __ = both(coo, SPASM_4_1)
        assert np.allclose(event.y, fast.y)

    @pytest.mark.parametrize("config", DEFAULT_CONFIGS,
                             ids=lambda c: c.name)
    def test_counters_match(self, rng, config):
        coo = random_structured_coo(rng, 96, "mixed")
        event, fast, __, __ = both(coo, config)
        assert np.array_equal(
            event.pe_groups_executed, fast.pe_groups_executed
        )
        assert event.cycles == pytest.approx(fast.cycles)
        assert event.gflops == pytest.approx(fast.gflops)
        assert event.bottleneck == fast.bottleneck

    @pytest.mark.parametrize("config", DEFAULT_CONFIGS,
                             ids=lambda c: c.name)
    def test_hbm_bytes_match(self, rng, config):
        coo = random_structured_coo(rng, 96, "mixed")
        event, fast, __, __ = both(coo, config)
        assert event.hbm_bytes == fast.hbm_bytes

    def test_with_initial_y(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        y0 = rng.random(64)
        event, fast, __, __ = both(coo, SPASM_3_2, y0=y0)
        assert np.allclose(event.y, fast.y)

    def test_unaligned_edges(self, rng):
        from repro.matrix import COOMatrix

        dense = np.where(rng.random((67, 53)) < 0.1, 1.0, 0.0)
        dense[66, 52] = 1.0
        coo = COOMatrix.from_dense(dense)
        event, fast, __, x = both(coo, SPASM_4_1, tile_size=16)
        assert np.allclose(event.y, fast.y)
        assert event.hbm_bytes == fast.hbm_bytes
        assert np.allclose(fast.y, dense @ x)

    def test_structured_workload(self):
        coo = load_workload("t2em", scale=0.1)
        event, fast, __, __ = both(coo, SPASM_3_2, tile_size=256)
        assert np.allclose(event.y, fast.y)
        assert event.hbm_bytes == fast.hbm_bytes

    def test_empty_matrix(self):
        from repro.matrix import COOMatrix

        coo = COOMatrix([], [], [], (16, 16))
        event, fast, __, __ = both(coo, SPASM_4_1, tile_size=16)
        assert np.allclose(event.y, fast.y)
        assert event.hbm_bytes == fast.hbm_bytes == 0

    def test_different_portfolios(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        for idx in (1, 4, 7):
            event, fast, __, __ = both(coo, SPASM_4_1, portfolio_idx=idx)
            assert np.allclose(event.y, fast.y), idx

    def test_rejects_unknown_engine(self, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        with pytest.raises(ValueError):
            SpasmAccelerator(SPASM_4_1).run(
                spasm, np.ones(32), engine="quantum"
            )

    def test_fast_rejects_bad_shapes(self, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        acc = SpasmAccelerator(SPASM_4_1)
        with pytest.raises(ValueError):
            acc.run(spasm, np.ones(5), engine="fast")
        with pytest.raises(ValueError):
            acc.run(spasm, np.ones(32), np.ones(5), engine="fast")


class TestFastScale:
    def test_handles_suite_scale_quickly(self):
        # The fast engine must chew through a full-scale suite matrix;
        # the event engine would take minutes here.
        coo = g.banded(8000, 6, fill=0.8, seed=0)
        event_free = SpasmAccelerator(SPASM_4_1)
        spasm = encode_spasm(coo, candidate_portfolios()[0], 512)
        x = np.ones(8000)
        result = event_free.run(spasm, x, engine="fast")
        assert np.allclose(result.y, coo.spmv(x))
        assert result.pe_groups_executed.sum() == spasm.n_groups
