"""Tests for the SPASM data format encoder/decoder."""

import numpy as np
import pytest

from repro.core import DecompositionTable, candidate_portfolios, encode_spasm
from repro.core.encoding import unpack_position_array
from repro.core.tiling import TilingError
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


@pytest.fixture(scope="module")
def table(portfolio):
    return DecompositionTable(portfolio)


class TestEncodeBasics:
    def test_empty_matrix(self, portfolio, table):
        spasm = encode_spasm(COOMatrix([], [], [], (16, 16)), portfolio,
                             16, table)
        assert spasm.n_tiles == 0
        assert spasm.n_groups == 0
        assert spasm.padding == 0
        assert np.allclose(spasm.spmv(np.ones(16)), np.zeros(16))

    def test_single_entry(self, portfolio, table):
        coo = COOMatrix([5], [9], [2.0], (16, 16))
        spasm = encode_spasm(coo, portfolio, 16, table)
        assert spasm.n_tiles == 1
        assert spasm.n_groups == 1
        assert spasm.padding == 3
        assert spasm.source_nnz == 1

    def test_rejects_bad_tile_size(self, portfolio, table, small_coo):
        with pytest.raises(TilingError):
            encode_spasm(small_coo, portfolio, 30, table)
        with pytest.raises(TilingError):
            encode_spasm(small_coo, portfolio, 2**13 * 4 + 4, table)

    def test_padding_accounting(self, small_coo, portfolio, table):
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        assert spasm.stored_values == spasm.n_groups * 4
        assert spasm.padding == spasm.stored_values - small_coo.nnz
        assert 0.0 <= spasm.padding_rate < 1.0

    def test_storage_bytes(self, small_coo, portfolio, table):
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        assert spasm.storage_bytes() == spasm.n_groups * 5 * 4
        assert spasm.storage_bytes(include_global=True) == (
            spasm.n_groups * 5 * 4 + spasm.n_tiles * 8
        )

    def test_padding_matches_table(self, small_coo, portfolio, table):
        from repro.core import analyze_local_patterns

        hist = analyze_local_patterns(small_coo)
        expected = table.total_padding(hist)
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        assert spasm.padding == expected


class TestRoundtrip:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    @pytest.mark.parametrize("tile_size", [16, 32, 64])
    def test_decode_roundtrip(self, rng, kind, tile_size, portfolio, table):
        coo = random_structured_coo(rng, 64, kind)
        spasm = encode_spasm(coo, portfolio, tile_size, table)
        assert np.array_equal(spasm.to_coo().to_dense(), coo.to_dense())

    def test_roundtrip_all_candidates(self, rng):
        coo = random_structured_coo(rng, 48, "mixed")
        for portfolio in candidate_portfolios():
            spasm = encode_spasm(coo, portfolio, 16)
            assert np.array_equal(
                spasm.to_coo().to_dense(), coo.to_dense()
            ), portfolio.name

    def test_non_square(self, portfolio, table, rng):
        dense = np.where(rng.random((20, 52)) < 0.2, 1.0, 0.0)
        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, portfolio, 16, table)
        assert np.array_equal(spasm.to_coo().to_dense(), dense)

    def test_unaligned_shape_spmv(self, portfolio, table, rng):
        # Dimensions not multiples of k: template padding cells fall
        # past the matrix edge and must not index out of bounds.
        dense = np.where(rng.random((67, 67)) < 0.15, 1.0, 0.0)
        dense[66, 66] = 1.0
        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, portfolio, 16, table)
        x = rng.random(67)
        assert np.allclose(spasm.spmv(x), dense @ x)
        assert np.array_equal(spasm.to_coo().to_dense(), dense)

    def test_spmv_matches_reference(self, rng, portfolio, table):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32, table)
        x = rng.random(64)
        y0 = rng.random(64)
        assert np.allclose(spasm.spmv(x, y0), coo.spmv(x, y0))


class TestStreamSemantics:
    def test_tiles_in_row_major_stream_order(self, portfolio, table, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        keys = (
            spasm.tile_rows * (96 // 16 + 1) + spasm.tile_cols
        )
        assert np.all(np.diff(keys) > 0)

    def test_ce_marks_tile_boundaries(self, portfolio, table, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        fields = unpack_position_array(spasm.words)
        boundaries = set((spasm.tile_ptr[1:] - 1).tolist())
        for i in range(spasm.n_groups):
            assert fields["ce"][i] == (i in boundaries)

    def test_re_marks_tile_row_boundaries(self, portfolio, table, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        fields = unpack_position_array(spasm.words)
        tile_of_group = np.repeat(
            np.arange(spasm.n_tiles), spasm.groups_per_tile()
        )
        group_row = spasm.tile_rows[tile_of_group]
        for i in range(spasm.n_groups):
            is_last_of_row = (
                i == spasm.n_groups - 1
                or group_row[i + 1] != group_row[i]
            )
            assert fields["re"][i] == is_last_of_row

    def test_re_implies_ce_positions_are_consistent(self, portfolio,
                                                    table, rng):
        # An RE group must also be the end of a tile.
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        fields = unpack_position_array(spasm.words)
        assert np.all(~fields["re"] | fields["ce"])

    def test_group_indices_within_tile(self, portfolio, table, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, portfolio, 32, table)
        fields = unpack_position_array(spasm.words)
        spt = 32 // 4
        assert fields["c_idx"].max() < spt
        assert fields["r_idx"].max() < spt


class TestTileViews:
    def test_tiles_partition_groups(self, small_coo, portfolio, table):
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        total = sum(t.n_groups for t in spasm.tiles())
        assert total == spasm.n_groups

    def test_groups_per_tile(self, small_coo, portfolio, table):
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        assert np.array_equal(
            spasm.groups_per_tile(),
            np.array([t.n_groups for t in spasm.tiles()]),
        )

    def test_global_composition_consistent(self, small_coo, portfolio,
                                           table):
        spasm = encode_spasm(small_coo, portfolio, 16, table)
        gc = spasm.global_composition()
        assert gc.total_groups == spasm.n_groups
        assert gc.total_nnz == small_coo.nnz
        assert gc.n_tiles == spasm.n_tiles


class TestValidate:
    def test_fresh_encoding_validates(self, rng, portfolio, table):
        coo = random_structured_coo(rng, 96, "mixed")
        encode_spasm(coo, portfolio, 32, table).validate()

    def test_hazard_reordered_validates(self, rng, portfolio, table):
        from repro.hw.hazards import hazard_aware_reorder

        coo = random_structured_coo(rng, 96, "mixed")
        spasm = hazard_aware_reorder(
            encode_spasm(coo, portfolio, 32, table)
        )
        spasm.validate()

    def test_deserialized_validates(self, rng, portfolio, table,
                                    tmp_path):
        from repro.core.serialize import load_spasm, save_spasm

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32, table)
        save_spasm(tmp_path / "m.npz", spasm)
        load_spasm(tmp_path / "m.npz").validate()

    def test_empty_validates(self, portfolio, table):
        encode_spasm(COOMatrix([], [], [], (16, 16)), portfolio, 16,
                     table).validate()

    def test_detects_corrupted_flags(self, rng, portfolio, table):
        from repro.core.format import FormatError

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        spasm.words[0] ^= np.uint32(1 << 26)  # flip a CE bit
        with pytest.raises(FormatError):
            spasm.validate()

    def test_detects_out_of_range_index(self, rng, portfolio, table):
        from repro.core.format import FormatError

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        spasm.words[0] |= np.uint32(0x1FFF)  # blow up c_idx
        with pytest.raises(FormatError):
            spasm.validate()

    def test_detects_broken_tile_ptr(self, rng, portfolio, table):
        from repro.core.format import FormatError

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 16, table)
        spasm.tile_ptr[-1] += 1
        with pytest.raises(FormatError):
            spasm.validate()


class TestStructuredMatrices:
    def test_pure_blocks_zero_padding(self, block_diag_coo, table,
                                      portfolio):
        spasm = encode_spasm(block_diag_coo, portfolio, 16, table)
        assert spasm.padding == 0
        assert spasm.bytes_per_nnz() == pytest.approx(5.0)

    def test_diag_stripes_zero_padding(self, portfolio, table):
        coo = g.diagonal_stripes(64, (0,), fill=1.0, seed=0)
        spasm = encode_spasm(coo, portfolio, 16, table)
        assert spasm.padding == 0

    def test_bytes_per_nnz_formula(self, portfolio, table):
        # Storage of pattern_size elements is (pattern_size+1)*4 bytes
        # (Section V-B): exact when padding is zero.
        coo = g.block_diagonal(10, 4, fill=1.0, seed=1)
        spasm = encode_spasm(coo, portfolio, 16, table)
        assert spasm.bytes_per_nnz() == pytest.approx((4 + 1) / 4 * 4)
