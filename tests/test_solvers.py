"""Tests for the iterative solvers and the operator interface."""

import numpy as np
import pytest

from repro.core import SpasmCompiler, candidate_portfolios, encode_spasm
from repro.matrix import COOMatrix
from repro.solvers import (
    LinearOperator,
    as_operator,
    bicgstab,
    conjugate_gradient,
    jacobi,
    power_iteration,
)


def spd_system(n=60, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    a = m @ m.T + n * np.eye(n)
    b = rng.random(n)
    return a, b


def nonsymmetric_system(n=50, seed=1):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) * 0.5
    np.fill_diagonal(a, n * 1.0)
    b = rng.random(n)
    return a, b


class TestOperator:
    def test_from_dense(self):
        a = np.array([[2.0, 1.0], [0.0, 3.0]])
        op = as_operator(a)
        assert np.allclose(op.matvec([1.0, 1.0]), [3.0, 3.0])
        assert np.allclose(op.diagonal(), [2.0, 3.0])

    def test_from_coo(self):
        coo = COOMatrix.from_dense(np.diag([1.0, 2.0, 3.0]))
        op = as_operator(coo)
        assert np.allclose(op.diagonal(), [1.0, 2.0, 3.0])
        assert np.allclose(op @ np.ones(3), [1.0, 2.0, 3.0])

    def test_from_csr(self):
        from repro.matrix import coo_to_csr

        coo = COOMatrix.from_dense(np.diag([1.0, 2.0]))
        op = as_operator(coo_to_csr(coo))
        assert np.allclose(op.matvec([1.0, 1.0]), [1.0, 2.0])

    def test_from_spasm(self, rng):
        dense = np.diag(np.arange(1.0, 17.0))
        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        op = as_operator(spasm)
        x = rng.random(16)
        assert np.allclose(op.matvec(x), dense @ x)
        assert np.allclose(op.diagonal(), np.arange(1.0, 17.0))

    def test_from_program(self):
        dense = np.diag(np.arange(1.0, 33.0))
        coo = COOMatrix.from_dense(dense)
        program = SpasmCompiler(tile_sizes=(16, 32)).compile(coo)
        op = as_operator(program)
        assert op.shape == (32, 32)

    def test_idempotent(self):
        op = as_operator(np.eye(2))
        assert as_operator(op) is op

    def test_custom_without_diagonal(self):
        op = LinearOperator((2, 2), lambda x: x)
        with pytest.raises(NotImplementedError):
            op.diagonal()

    def test_rejects_bad_source(self):
        with pytest.raises(TypeError):
            as_operator("not a matrix")

    def test_rejects_bad_vector(self):
        op = as_operator(np.eye(3))
        with pytest.raises(ValueError):
            op.matvec(np.ones(2))


class TestConjugateGradient:
    def test_solves_spd(self):
        a, b = spd_system()
        result = conjugate_gradient(a, b, tol=1e-10)
        assert result.converged
        assert np.allclose(a @ result.x, b, atol=1e-7)

    def test_history_decreases_overall(self):
        a, b = spd_system()
        result = conjugate_gradient(a, b)
        assert result.history[-1] < result.history[0]

    def test_warm_start_converges_fast(self):
        a, b = spd_system()
        exact = np.linalg.solve(a, b)
        result = conjugate_gradient(a, b, x0=exact)
        assert result.iterations <= 2

    def test_max_iters_reported(self):
        a, b = spd_system()
        result = conjugate_gradient(a, b, tol=1e-16, max_iters=2)
        assert result.iterations == 2
        assert not result.converged

    def test_through_spasm_backend(self):
        a, b = spd_system(n=64)
        coo = COOMatrix.from_dense(a)
        spasm = encode_spasm(coo, candidate_portfolios()[0], 64)
        result = conjugate_gradient(spasm, b)
        assert result.converged
        assert np.allclose(a @ result.x, b, atol=1e-6)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            conjugate_gradient(np.ones((2, 3)), np.ones(2))

    def test_rejects_bad_rhs(self):
        with pytest.raises(ValueError):
            conjugate_gradient(np.eye(3), np.ones(2))


class TestPreconditionedCG:
    def ill_conditioned_spd(self, n=80, seed=4):
        rng = np.random.default_rng(seed)
        # Widely spread diagonal makes plain CG crawl.
        diag = np.logspace(0, 5, n)
        q, __ = np.linalg.qr(rng.random((n, n)))
        a = q @ np.diag(diag) @ q.T
        # Re-symmetrize against roundoff.
        a = (a + a.T) / 2
        return a, rng.random(n)

    def test_jacobi_preconditioner_accepted(self):
        a, b = spd_system()
        result = conjugate_gradient(a, b, preconditioner="jacobi")
        assert result.converged
        assert np.allclose(a @ result.x, b, atol=1e-6)

    def test_custom_preconditioner(self):
        a, b = spd_system()
        inv_diag = 1.0 / np.diag(a)
        result = conjugate_gradient(
            a, b, preconditioner=lambda r: inv_diag * r
        )
        assert result.converged

    def test_preconditioning_helps_ill_conditioned(self):
        a, b = self.ill_conditioned_spd()
        plain = conjugate_gradient(a, b, tol=1e-6, max_iters=400)
        pcg = conjugate_gradient(
            a, b, tol=1e-6, max_iters=400, preconditioner="jacobi"
        )
        # Diagonal scaling may not fix a rotated spectrum, but on this
        # system it must not be worse.
        assert pcg.iterations <= plain.iterations

    def test_jacobi_precond_rejects_zero_diagonal(self):
        a = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            conjugate_gradient(a, np.ones(2), preconditioner="jacobi")


class TestBicgstab:
    def test_solves_nonsymmetric(self):
        a, b = nonsymmetric_system()
        result = bicgstab(a, b)
        assert result.converged
        assert np.allclose(a @ result.x, b, atol=1e-7)

    def test_solves_spd_too(self):
        a, b = spd_system()
        result = bicgstab(a, b)
        assert result.converged

    def test_identity_one_step(self):
        result = bicgstab(np.eye(8), np.ones(8))
        assert result.converged
        assert result.iterations <= 2


class TestJacobi:
    def test_solves_diagonally_dominant(self):
        a, b = nonsymmetric_system()
        result = jacobi(a, b, max_iters=500)
        assert result.converged
        assert np.allclose(a @ result.x, b, atol=1e-7)

    def test_rejects_zero_diagonal(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            jacobi(a, np.ones(2))

    def test_diverges_gracefully(self):
        # Not diagonally dominant: must stop at max_iters unconverged.
        a = np.array([[1.0, 10.0], [10.0, 1.0]])
        result = jacobi(a, np.ones(2), max_iters=30)
        assert not result.converged


class TestPowerIteration:
    def test_dominant_eigenvalue(self):
        a = np.diag([1.0, 5.0, 3.0])
        value, vector, __ = power_iteration(a)
        assert value == pytest.approx(5.0, abs=1e-6)
        assert abs(vector[1]) == pytest.approx(1.0, abs=1e-4)

    def test_matches_numpy_on_symmetric(self):
        rng = np.random.default_rng(2)
        m = rng.random((20, 20))
        a = m + m.T
        value, __, __ = power_iteration(a, max_iters=5000)
        expected = max(np.linalg.eigvalsh(a), key=abs)
        assert value == pytest.approx(expected, rel=1e-4)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            power_iteration(np.ones((2, 3)))
