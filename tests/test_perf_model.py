"""Tests for the analytic performance model."""

import numpy as np
import pytest

from repro.core import DecompositionTable, candidate_portfolios
from repro.core.format import encode_spasm, groups_per_submatrix
from repro.core.tiling import extract_global_composition
from repro.hw.configs import SPASM_3_2, SPASM_3_4, SPASM_4_1, make_config
from repro.hw.perf_model import (
    PIPELINE_FILL_CYCLES,
    assign_tiles,
    estimate_gflops,
    estimate_time_s,
    perf_breakdown,
    perf_model,
)
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def table():
    return DecompositionTable(candidate_portfolios()[0])


def gc_of(coo, table, tile_size):
    counts, keys = groups_per_submatrix(coo, table)
    return extract_global_composition(coo, counts, keys, tile_size)


class TestAssignTiles:
    def test_deterministic(self):
        loads = np.array([5, 1, 7, 2, 2, 9])
        a = assign_tiles(loads, 3)
        b = assign_tiles(loads, 3)
        assert np.array_equal(a, b)

    def test_all_tiles_assigned(self):
        owner = assign_tiles(np.array([1, 2, 3, 4, 5]), 2)
        assert owner.size == 5
        assert set(owner.tolist()) <= {0, 1}

    def test_greedy_balances(self):
        # One heavy tile followed by many light ones: the heavy PE must
        # not also receive the light tiles.
        loads = np.array([100, 1, 1, 1, 1, 1])
        owner = assign_tiles(loads, 2)
        heavy_pe = owner[0]
        assert np.all(owner[1:] != heavy_pe)

    def test_single_pe(self):
        owner = assign_tiles(np.array([3, 1]), 1)
        assert np.array_equal(owner, [0, 0])

    def test_empty(self):
        assert assign_tiles(np.array([], dtype=int), 4).size == 0

    def test_round_robin(self):
        owner = assign_tiles(np.array([9, 1, 1, 9]), 2, "round-robin")
        assert owner.tolist() == [0, 1, 0, 1]

    def test_lpt_beats_greedy_on_adversarial_stream(self):
        # Stream order: light tiles first, then two heavy ones — the
        # streaming greedy can strand both heavies behind balanced
        # light loads; LPT places them first.
        loads = np.array([3, 3, 8, 8])
        for policy in ("greedy", "lpt", "round-robin"):
            owner = assign_tiles(loads, 2, policy)
            per_pe = np.bincount(owner, weights=loads, minlength=2)
            if policy == "lpt":
                assert per_pe.max() == 11

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            assign_tiles(np.array([1]), 1, "magic")

    def test_policies_assign_everything(self):
        loads = np.arange(1, 30)
        for policy in ("greedy", "lpt", "round-robin"):
            owner = assign_tiles(loads, 4, policy)
            total = np.bincount(owner, weights=loads, minlength=4).sum()
            assert total == loads.sum()


class TestBreakdown:
    def test_total_is_max_plus_fill(self, rng, table):
        coo = random_structured_coo(rng, 128, "mixed")
        b = perf_breakdown(gc_of(coo, table, 32), SPASM_4_1)
        bounds = [
            b.compute_cycles,
            b.value_stream_cycles,
            b.position_stream_cycles,
            b.x_load_cycles,
            b.y_cycles,
        ]
        assert b.total_cycles == max(bounds) + PIPELINE_FILL_CYCLES

    def test_bottleneck_names_max(self, rng, table):
        coo = random_structured_coo(rng, 128, "mixed")
        b = perf_breakdown(gc_of(coo, table, 32), SPASM_4_1)
        mapping = {
            "compute": b.compute_cycles,
            "value-stream": b.value_stream_cycles,
            "position-stream": b.position_stream_cycles,
            "x-load": b.x_load_cycles,
            "y": b.y_cycles,
        }
        assert mapping[b.bottleneck] == max(mapping.values())

    def test_empty_composition(self, table):
        from repro.matrix import COOMatrix

        coo = COOMatrix([], [], [], (64, 64))
        gc = gc_of(coo, table, 32)
        assert perf_model(gc, SPASM_4_1) == PIPELINE_FILL_CYCLES

    def test_more_pe_groups_not_slower_on_balanced_work(self, table):
        coo = g.banded(512, 4, fill=0.9, seed=0)
        gc = gc_of(coo, table, 32)
        small = make_config(1, 1)
        big = make_config(4, 1, frequency_hz=small.frequency_hz)
        assert perf_model(gc, big) <= perf_model(gc, small)

    def test_more_x_channels_help_x_bound_matrix(self, table):
        # Many tiles but few groups each: x loading dominates.
        coo = g.random_uniform(2048, 0.0005, seed=1)
        gc = gc_of(coo, table, 256)
        b1 = perf_breakdown(gc, make_config(3, 1))
        b4 = perf_breakdown(gc, make_config(3, 4))
        assert b4.x_load_cycles < b1.x_load_cycles

    def test_y_cycles_proportional_to_tile_rows(self, table):
        coo = g.diagonal_stripes(256, (0,), fill=1.0, seed=0)
        b_small = perf_breakdown(gc_of(coo, table, 16), SPASM_4_1)
        b_big = perf_breakdown(gc_of(coo, table, 256), SPASM_4_1)
        # Same total y elements -> same y traffic regardless of tiling.
        assert b_small.y_cycles == pytest.approx(b_big.y_cycles)


class TestEstimates:
    def test_time_and_gflops(self, rng, table):
        coo = random_structured_coo(rng, 128, "mixed")
        gc = gc_of(coo, table, 32)
        t = estimate_time_s(gc, SPASM_4_1)
        assert t > 0
        gf = estimate_gflops(gc, SPASM_4_1, coo.nnz, coo.shape[0])
        assert gf == pytest.approx(
            (2 * coo.nnz + coo.shape[0]) / t / 1e9
        )

    def test_gflops_below_peak(self, rng, table):
        coo = random_structured_coo(rng, 256, "blocks")
        gc = gc_of(coo, table, 64)
        for config in (SPASM_4_1, SPASM_3_4, SPASM_3_2):
            gf = estimate_gflops(gc, config, coo.nnz, coo.shape[0])
            assert gf <= config.peak_gflops

    def test_matches_functional_sim_estimate(self, rng, table):
        coo = random_structured_coo(rng, 96, "mixed")
        portfolio = candidate_portfolios()[0]
        spasm = encode_spasm(coo, portfolio, 32, table)
        from repro.hw import SpasmAccelerator

        result = SpasmAccelerator(SPASM_4_1).run(spasm, np.ones(96))
        expected = perf_model(spasm.global_composition(), SPASM_4_1, 32)
        assert result.cycles == pytest.approx(expected)
