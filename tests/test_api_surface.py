"""API-surface stability tests: every advertised export must resolve.

Guards the public interface against refactoring accidents: anything in
an ``__all__`` must be importable from that module, and the top-level
convenience API must expose the documented entry points.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.pipeline",
    "repro.exec",
    "repro.matrix",
    "repro.hw",
    "repro.baselines",
    "repro.synth",
    "repro.analysis",
    "repro.solvers",
    "repro.analyze",
    "repro.verify",
    "repro.tune",
    "repro.resilience",
    "repro.serve",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"
        assert getattr(module, symbol) is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_top_level_quickstart_api():
    import repro

    for symbol in (
        "COOMatrix", "SpasmCompiler", "SpasmAccelerator",
        "encode_spasm", "analyze_local_patterns",
        "candidate_portfolios", "DEFAULT_CONFIGS",
    ):
        assert symbol in repro.__all__

    assert repro.__version__


def test_public_callables_documented():
    """Every public function/class reachable from __all__ carries a
    docstring (the documentation deliverable, enforced)."""
    import inspect

    undocumented = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"undocumented: {undocumented}"


def test_submodule_functions_documented():
    """Module-level public functions of core implementation modules are
    documented even when not re-exported."""
    import inspect

    modules = [
        "repro.core.bitmask", "repro.core.patterns",
        "repro.core.templates", "repro.core.decompose",
        "repro.core.encoding", "repro.core.format",
        "repro.core.tiling", "repro.core.schedule",
        "repro.core.selection", "repro.core.framework",
        "repro.core.dynamic", "repro.core.reorder",
        "repro.core.serialize",
        "repro.pipeline.artifacts", "repro.pipeline.cache",
        "repro.pipeline.passes", "repro.pipeline.runner",
        "repro.pipeline.trace",
        "repro.hw.opcode", "repro.hw.valu", "repro.hw.pe",
        "repro.hw.perf_model", "repro.hw.hazards",
        "repro.hw.fast_sim", "repro.hw.memory_image",
        "repro.baselines.base", "repro.baselines.serpens_sim",
        "repro.baselines.hisparse_sim",
        "repro.analysis.charts", "repro.analysis.spy",
        "repro.solvers.iterative", "repro.solvers.operator",
        "repro.analyze.symbolic", "repro.analyze.lints",
    ]
    undocumented = []
    for name in modules:
        module = importlib.import_module(name)
        for attr, obj in vars(module).items():
            if attr.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != name:
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{name}.{attr}")
    assert not undocumented, f"undocumented: {undocumented}"
