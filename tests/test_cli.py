"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import load_matrix, main
from repro.matrix import COOMatrix, write_matrix_market


@pytest.fixture
def mtx_file(tmp_path):
    coo = COOMatrix.from_dense(np.eye(16))
    path = tmp_path / "eye.mtx"
    write_matrix_market(path, coo)
    return str(path)


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "mycielskian14" in out and "stormG2_1000" in out

    def test_analyze_workload(self, capsys):
        assert main(["analyze", "t2em", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "distinct patterns" in out
        assert "#1:" in out

    def test_analyze_no_spy(self, capsys):
        assert main(["analyze", "t2em", "--no-spy"]) == 0
        out = capsys.readouterr().out
        assert "+--" not in out

    def test_analyze_mtx_file(self, capsys, mtx_file):
        assert main(["analyze", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "nnz=16" in out

    def test_analyze_pattern_size(self, capsys):
        assert main(
            ["analyze", "t2em", "--pattern-size", "2", "--no-spy"]
        ) == 0
        assert "submatrices" in capsys.readouterr().out

    def test_compile(self, capsys):
        assert main(["compile", "raefsky3", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "portfolio:" in out
        assert "GFLOP/s" in out

    def test_compile_json_includes_trace(self, capsys):
        assert main([
            "compile", "t2em", "--scale", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"] == "t2em"
        assert payload["tile_size"] > 0
        assert payload["report_ms"]["total"] > 0
        stages = [e["name"] for e in payload["trace"]["events"]]
        assert stages == [
            "analysis", "selection", "decomposition", "schedule",
            "encode",
        ]

    def test_compile_trace_file(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main([
            "compile", "t2em", "--scale", "0.2",
            "--trace", str(trace_file),
        ]) == 0
        capsys.readouterr()
        trace = json.loads(trace_file.read_text())
        assert trace["total_ms"] > 0
        assert {e["cache"] for e in trace["events"]} == {"off"}

    def test_compile_cache_dir_cold_then_warm(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "compile", "t2em", "--scale", "0.2", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        assert "analysis=miss" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "analysis=hit" in out and "schedule=hit" in out

    def test_compile_jobs_and_verify(self, capsys):
        assert main([
            "compile", "t2em", "--scale", "0.2", "--jobs", "2",
            "--verify", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["events"][-1]["name"] == "verify"

    def test_storage(self, capsys):
        assert main(["storage", "t2em", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "SPASM" in out and "COO" in out

    def test_compare(self, capsys):
        assert main(["compare", "t2em", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Serpens_a24" in out and "RTX 3090" in out


class TestAnalyzeProofs:
    def test_single_matrix_proofs(self, capsys):
        assert main([
            "analyze", "t2em", "--proofs", "--scale", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out and "REFUTED" not in out
        assert "all proof obligations hold" in out

    def test_proofs_json_has_six_obligations(self, capsys):
        assert main([
            "analyze", "t2em", "--proofs", "--scale", "0.2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["matrices"] == 1 and payload["refuted"] == 0
        report = payload["reports"][0]
        assert report["matrix"] == "t2em"
        assert [
            o["obligation"] for o in report["obligations"]
        ] == ["index_width", "coverage", "shards", "image", "policy",
              "backend"]
        assert all(
            o["status"] == "proved" for o in report["obligations"]
        )

    def test_suite_mode_proves_every_workload(self, capsys):
        """Bare ``analyze`` sweeps the whole synth suite."""
        from repro.synth import workload_names

        assert main(["analyze", "--scale", "0.12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["matrices"] == len(workload_names())

    def test_self_lint_clean_against_baseline(self, capsys):
        assert main(["analyze", "--self"]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_self_lint_json(self, capsys):
        assert main(["analyze", "--self", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["new"] == []
        assert payload["baselined"] == payload["findings"]


class TestRunReorder:
    def test_run_with_reorder_reports_gain(self, capsys):
        assert main([
            "run", "stormG2_1000", "--scale", "0.5", "--reorder",
            "--repeat", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "reorder:" in out and "bytes/nnz" in out
        assert "storage gain" in out
        assert "plan vs naive engines agree" in out

    def test_run_without_reorder_stays_quiet(self, capsys):
        assert main([
            "run", "stormG2_1000", "--scale", "0.5", "--repeat", "1",
        ]) == 0
        assert "reorder:" not in capsys.readouterr().out


class TestBackendsCommand:
    def test_table_lists_every_registered_backend(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "Registered kernel backends" in out
        for name in ("csr", "numba", "gather"):
            assert name in out
        assert "spmv, spmm, spmv_batch" in out

    def test_json_payload_in_negotiation_order(self, capsys):
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [b["name"] for b in payload] == [
            "csr", "numba", "gather",
        ]
        gather = payload[-1]
        assert gather["available"] is True
        assert gather["requires"] is None
        assert gather["capabilities"]["ops"] == [
            "spmv", "spmm", "spmv_batch",
        ]
        for backend in payload:
            if not backend["available"]:
                assert backend["requires"]

    def test_run_with_explicit_backend(self, capsys):
        assert main([
            "run", "t2em", "--scale", "0.2", "--repeat", "1",
            "--backend", "gather",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=gather, explicit" in out
        assert "plan vs naive engines agree" in out

    def test_run_auto_reports_resolved_backend(self, capsys):
        assert main([
            "run", "t2em", "--scale", "0.2", "--repeat", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=" in out and "explicit" not in out

    def test_run_unknown_backend_exits_1(self, capsys):
        assert main([
            "run", "t2em", "--scale", "0.2", "--repeat", "1",
            "--backend", "nope",
        ]) == 1
        assert "unknown execution backend" in capsys.readouterr().err

    def test_run_naive_engine_rejects_backend(self, capsys):
        assert main([
            "run", "t2em", "--scale", "0.2", "--repeat", "1",
            "--engine", "naive", "--backend", "gather",
        ]) == 1
        err = capsys.readouterr().err
        assert "no kernel backend" in err


class TestEncodeSpmv:
    def test_encode_then_spmv(self, capsys, tmp_path):
        out = str(tmp_path / "m.npz")
        assert main([
            "encode", "t2em", "--scale", "0.2", "-o", out,
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["spmv", out]) == 0
        text = capsys.readouterr().out
        assert "exact" in text and "GFLOP/s" in text

    def test_spmv_hardware_choice(self, capsys, tmp_path):
        out = str(tmp_path / "m.npz")
        main(["encode", "raefsky3", "--scale", "0.2", "-o", out])
        capsys.readouterr()
        assert main(["spmv", out, "--hardware", "SPASM_3_2"]) == 0
        assert "SPASM_3_2" in capsys.readouterr().out

    def test_encode_with_cache_and_trace(self, capsys, tmp_path):
        out = str(tmp_path / "m.npz")
        trace_file = tmp_path / "trace.json"
        cache = str(tmp_path / "cache")
        assert main([
            "encode", "t2em", "--scale", "0.2", "-o", out,
            "--cache-dir", cache, "--trace", str(trace_file),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(trace_file.read_text())
        cached = {
            e["name"]: e["cache"]
            for e in trace["events"]
            if e["name"] in (
                "analysis", "selection", "decomposition", "schedule"
            )
        }
        assert set(cached.values()) == {"miss"}
        assert main(["spmv", out]) == 0
        assert "exact" in capsys.readouterr().out

    def test_spmv_missing_file(self, capsys):
        assert main(["spmv", "/no/such.npz"]) == 1
        assert "error:" in capsys.readouterr().err


class TestReproduce:
    def test_writes_reports(self, capsys, tmp_path):
        out = tmp_path / "rep"
        assert main([
            "reproduce", "--out", str(out), "--scale", "0.2",
            "--matrices", "raefsky3,t2em",
        ]) == 0
        written = {p.name for p in out.iterdir()}
        assert written == {
            "storage.txt", "throughput.txt",
            "bandwidth_efficiency.txt", "energy.txt",
        }
        text = (out / "throughput.txt").read_text()
        assert "raefsky3" in text and "Serpens_a24" in text
        assert "wrote 4 reports" in capsys.readouterr().out


class TestErrors:
    def test_unknown_workload(self, capsys):
        assert main(["analyze", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_mtx(self, capsys):
        assert main(["analyze", "/does/not/exist.mtx"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_missing_mtx(self, capsys):
        assert main(["run", "/does/not/exist.mtx"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # exactly one line

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "no_such_workload"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_verify_missing_artifact(self, capsys):
        assert main(["verify", "/does/not/exist.npz"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_verify_truncated_npz(self, capsys, tmp_path):
        from repro.core import SpasmCompiler, save_spasm
        from repro.synth import load_workload

        spasm = SpasmCompiler().compile(
            load_workload("stormG2_1000", scale=0.5)
        ).spasm
        path = tmp_path / "t.npz"
        save_spasm(path, spasm)
        path.write_bytes(path.read_bytes()[:64])
        assert main(["verify", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_verify_non_npz_garbage(self, capsys, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        assert main(["verify", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaults:
    TINY = {
        "name": "tiny",
        "workload": "stormG2_1000",
        "scale": 0.5,
        "overhead_scale": 0.5,
        "jobs": 2,
        "overhead_calls": 3,
        "trials": {
            "stream": 1, "value": 1, "plan": 1,
            "cache": 1, "worker": 1, "image": 1,
        },
    }

    def test_faults_smoke_json_and_report_file(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.resilience import campaign

        monkeypatch.setitem(
            campaign.CAMPAIGN_PRESETS, "smoke", self.TINY
        )
        out_file = tmp_path / "faults.json"
        assert main([
            "faults", "--no-overhead", "--quiet", "--json",
            "--out", str(out_file),
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["zero_escapes"] is True
        assert report["totals"]["injections"] == 6
        archived = json.loads(out_file.read_text())
        assert archived["totals"] == report["totals"]

    def test_faults_escape_exits_nonzero(
        self, capsys, monkeypatch
    ):
        from repro.resilience import campaign

        monkeypatch.setitem(
            campaign.CAMPAIGN_PRESETS, "smoke", self.TINY
        )

        def rigged(preset="smoke", seed=0, overhead=True,
                   progress=None):
            return {
                "preset": "smoke", "seed": seed,
                "workload": {"name": "x", "nnz": 1},
                "surfaces": {}, "escapes": [{"surface": "plan"}],
                "zero_escapes": False,
                "totals": {"injections": 1, "detected": 0,
                           "contained": 0, "escaped": 1},
            }

        import repro.resilience

        monkeypatch.setattr(
            repro.resilience, "run_campaign", rigged
        )
        assert main(["faults", "--no-overhead", "--quiet"]) == 1
        assert "escaped" in capsys.readouterr().err

    def test_faults_text_render(self, capsys, monkeypatch):
        from repro.resilience import campaign

        monkeypatch.setitem(
            campaign.CAMPAIGN_PRESETS, "smoke", self.TINY
        )
        assert main(["faults", "--no-overhead", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "ZERO ESCAPES" in out
        assert "stream" in out and "cache" in out


class TestLoadMatrix:
    def test_workload_name(self):
        assert load_matrix("t2em", 0.3).nnz > 0

    def test_mtx_path(self, mtx_file):
        assert load_matrix(mtx_file, 1.0).nnz == 16
