"""Tests for the v2 execution-plan features: fused encode-time
builds, compact dtype-aware layouts, batched multi-query SpMV, the
shard auto-heuristic and the guarded/cached integrations.

The non-negotiable invariant throughout: every float64 engine —
naive, compiled (int32 or int64 indices), fused, sharded, batched,
guarded — produces **bitwise identical** results.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.exec.plan as plan_mod
from repro.core import (
    SpasmCompiler,
    cached_table,
    candidate_portfolios,
    encode_spasm,
)
from repro.exec import (
    ExecutionPlan,
    csr_kernels_available,
    index_dtype_for,
)
from repro.matrix.coo import COOMatrix
from repro.pipeline.cache import ArtifactCache
from tests.conftest import random_structured_coo


def integer_coo(rng, n=64, kind="mixed"):
    """Small-integer values: float64 sums are order-independent, so
    every comparison below can demand bitwise equality."""
    coo = random_structured_coo(rng, n, kind)
    vals = rng.integers(1, 8, size=coo.nnz).astype(np.float64)
    return COOMatrix(rows=coo.rows, cols=coo.cols, vals=vals,
                     shape=coo.shape)


def encode(coo, tile_size=32, portfolio_idx=0, **kwargs):
    portfolio = candidate_portfolios()[portfolio_idx]
    return encode_spasm(coo, portfolio, tile_size, **kwargs)


def assert_plans_identical(a, b):
    assert a.digest == b.digest
    assert a.checksum == b.checksum
    assert a.shape == b.shape
    for name in ("cols", "vals", "seg_starts", "seg_rows"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name


# -- fused encode-time builds ------------------------------------------


class TestFusedBuild:
    def test_fused_equals_compile(self, rng):
        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo, build_plan=True)
        fused = spasm.plan()
        assert fused is spasm.__dict__.get("_plan")
        assert_plans_identical(fused, ExecutionPlan.build(spasm))
        assert fused.build_ms > 0.0

    def test_fused_empty_matrix(self):
        coo = COOMatrix(
            rows=np.array([], dtype=np.int64),
            cols=np.array([], dtype=np.int64),
            vals=np.array([], dtype=np.float64),
            shape=(16, 16),
        )
        spasm = encode(coo, tile_size=16, build_plan=True)
        plan = spasm.plan()
        assert plan.n_slots == 0
        assert np.array_equal(
            plan.spmv(np.ones(16)), np.zeros(16)
        )

    def test_mutation_after_fused_encode_recompiles(self, rng):
        # The fused plan's digest is hashed off the critical path over
        # a build-time snapshot.  Mutating the live stream *before*
        # that hash ever resolves must still invalidate the stale plan
        # — a digest of the mutated arrays would match the fresh hash
        # in plan() and silently serve the pre-mutation answer.
        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo, build_plan=True)
        stale = spasm.__dict__.get("_plan")
        assert stale is not None
        spasm.values[spasm.values != 0.0] *= 2.0
        x = rng.integers(0, 5, size=96).astype(np.float64)
        expected = spasm.spmv_naive(x)
        assert np.array_equal(spasm.spmv(x), expected)
        assert spasm.__dict__.get("_plan") is not stale

    def test_compiler_fuses_when_building_plans(self, rng):
        coo = integer_coo(rng, 64, "blocks")
        program = SpasmCompiler(build_plan=True).compile(coo)
        assert program.plan is not None
        assert_plans_identical(
            program.plan, ExecutionPlan.build(program.spasm)
        )
        encode_note = next(
            e.note for e in program.trace if e.name == "encode"
        )
        assert "fused plan" in encode_note

    def test_hazard_aware_compile_still_plans_correctly(self, rng):
        # Fusion is skipped under hazard-aware reorder (the stream is
        # rewritten after encode); the PlanPass compile must still
        # agree with the naive engine bitwise.
        coo = integer_coo(rng, 64, "mixed")
        program = SpasmCompiler(
            build_plan=True, hazard_aware=True
        ).compile(coo)
        x = rng.integers(0, 5, size=64).astype(np.float64)
        assert np.array_equal(
            program.plan.spmv(x), program.spasm.spmv_naive(x)
        )

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.sampled_from([32, 48, 64]),
        kind=st.sampled_from(["mixed", "blocks", "scatter"]),
        portfolio_idx=st.integers(0, 2),
        tile_size=st.sampled_from([16, 32]),
    )
    def test_fused_compile_cache_identical(
        self, seed, n, kind, portfolio_idx, tile_size
    ):
        """Property: fused build ≡ stream re-expansion compile ≡
        cache roundtrip, bitwise, for random matrices, portfolios and
        tile sizes."""
        rng = np.random.default_rng(seed)
        coo = integer_coo(rng, n, kind)
        spasm = encode(
            coo, tile_size=tile_size, portfolio_idx=portfolio_idx,
            build_plan=True,
        )
        fused = spasm.plan()
        compiled = ExecutionPlan.build(spasm)
        assert_plans_identical(fused, compiled)
        with tempfile.TemporaryDirectory() as tmp:
            cache = ArtifactCache(tmp)
            stored = ExecutionPlan.build(spasm, cache=cache)
            loaded = ExecutionPlan.build(spasm, cache=cache)
            assert_plans_identical(stored, loaded)
            assert_plans_identical(fused, loaded)


# -- compact dtype-aware layouts ---------------------------------------


class TestCompactLayouts:
    def test_index_dtype_policy(self):
        assert index_dtype_for((100, 100), 50) == np.int32
        big = 2**31
        assert index_dtype_for((big, 100), 50) == np.int64
        assert index_dtype_for((100, big), 50) == np.int64
        assert index_dtype_for((100, 100), big) == np.int64

    def test_default_layout_is_compact(self, rng):
        plan = encode(integer_coo(rng, 64)).plan()
        assert plan.cols.dtype == np.int32
        assert plan.seg_starts.dtype == np.int32
        assert plan.seg_rows.dtype == np.int32
        assert plan.vals.dtype == np.float64

    def test_all_engines_bitwise_identical(self, rng):
        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo, build_plan=True)
        x = rng.integers(0, 5, size=coo.shape[1]).astype(np.float64)
        reference = spasm.spmv_naive(x)
        fused = spasm.plan()
        plan_i64 = ExecutionPlan.build(spasm, index="int64")
        outputs = {
            "fused_int32": fused.spmv(x),
            "compiled_int32": ExecutionPlan.build(spasm).spmv(x),
            "int64": plan_i64.spmv(x),
            "sharded": fused.spmv(x, jobs=3),
            "auto": fused.spmv(x, jobs=None),
            "batch_row": fused.spmv_batch(x[None, :])[0],
        }
        from repro.resilience import ExecutionGuard

        outputs["guarded"] = ExecutionGuard(spasm).spmv(x)
        for engine, y in outputs.items():
            assert y.dtype == np.float64, engine
            assert np.array_equal(y, reference), engine

    def test_int64_opt_in(self, rng):
        spasm = encode(integer_coo(rng, 64))
        plan = ExecutionPlan.build(spasm, index="int64")
        assert plan.cols.dtype == np.int64
        assert plan.validate() == []

    def test_float32_opt_in(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode(coo)
        plan = ExecutionPlan.build(spasm, precision="float32")
        assert plan.vals.dtype == np.float32
        assert plan.validate() == []
        x = rng.random(64)
        assert np.allclose(
            plan.spmv(x), spasm.spmv_naive(x),
            rtol=1e-5, atol=1e-8,
        )

    def test_unknown_layouts_rejected(self, rng):
        spasm = encode(integer_coo(rng, 32))
        with pytest.raises(ValueError):
            ExecutionPlan.build(spasm, index="int16")
        with pytest.raises(ValueError):
            ExecutionPlan.build(spasm, precision="float16")

    def test_out_of_range_rows_build_safely(self):
        # A corrupted stream can expand to coordinates outside the
        # matrix (the fault campaign recompiles such streams through
        # the guard).  The build must never crash on them — the
        # counting-sort fast path scatters through the row pointer
        # unchecked, so bad rows must route to the tolerant sort path
        # — and validate() must report the violation.
        cols = np.array([0, 1, 2], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        for bad in (40, -7):
            rows = np.array([1, bad, 3], dtype=np.int64)
            plan = ExecutionPlan.from_slots(
                (16, 16), rows, cols, vals,
                digest="x" * 64, source_nnz=3,
            )
            assert plan.validate() == [
                "segment rows outside [0, 16)"
            ]

    @pytest.mark.skipif(
        not csr_kernels_available(),
        reason="scipy CSR kernels not present",
    )
    def test_csr_and_portable_kernels_bitwise(self, rng):
        # int32/float64 auto-negotiates to the scipy CSR backend;
        # forcing the kernels away exercises the portable gather
        # backend on the same plan.  Both must agree bitwise.
        from repro.exec.backends import csr as csr_mod

        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo)
        x = rng.integers(0, 5, size=coo.shape[1]).astype(np.float64)
        xs = rng.integers(
            0, 5, size=(4, coo.shape[1])
        ).astype(np.float64)
        csr_plan = ExecutionPlan.build(spasm)
        y_csr = csr_plan.spmv(x)
        ys_csr = csr_plan.spmv_batch(xs)
        saved = csr_mod._csr_kernels
        csr_mod._csr_kernels = None
        try:
            portable_plan = ExecutionPlan.build(spasm)
            assert np.array_equal(portable_plan.spmv(x), y_csr)
            assert np.array_equal(
                portable_plan.spmv_batch(xs), ys_csr
            )
        finally:
            csr_mod._csr_kernels = saved
        # The build paths themselves must also agree bitwise: with
        # scipy the row sort is coo_tocsr's counting sort, without it
        # the portable stable argsort — same plan either way.
        assert portable_plan.checksum == csr_plan.checksum
        for field in ("cols", "vals", "seg_starts", "seg_rows"):
            a = getattr(csr_plan, field)
            b = getattr(portable_plan, field)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_validate_rejects_mixed_index_dtypes(self, rng):
        import dataclasses

        plan = encode(integer_coo(rng, 64)).plan()
        mutated = dataclasses.replace(
            plan, seg_rows=plan.seg_rows.astype(np.int64)
        )
        assert any(
            "index" in p or "dtype" in p for p in mutated.validate()
        )

    def test_layout_rule_flags_wasteful_int64(self, rng):
        from repro.verify import verify_plan

        spasm = encode(integer_coo(rng, 64))
        report = verify_plan(
            ExecutionPlan.build(spasm, index="int64"), spasm=spasm
        )
        assert report.ok  # advisory: warn, not error
        assert any(
            d.rule_id == "plan.layout" for d in report.warnings
        )
        compact = verify_plan(ExecutionPlan.build(spasm), spasm=spasm)
        assert not any(
            d.rule_id == "plan.layout" for d in compact.warnings
        )


# -- dtype-preserving cache --------------------------------------------


class TestDtypeCache:
    def test_cache_preserves_compact_dtypes(self, rng, tmp_path):
        spasm = encode(integer_coo(rng, 64))
        cache = ArtifactCache(str(tmp_path))
        stored = ExecutionPlan.build(spasm, cache=cache)
        assert stored.cols.dtype == np.int32
        loaded = ExecutionPlan.build(spasm, cache=cache)
        assert_plans_identical(stored, loaded)
        # A clean roundtrip must not quarantine anything.
        assert cache.entries()

    def test_cache_layouts_coexist(self, rng, tmp_path):
        spasm = encode(integer_coo(rng, 64))
        cache = ArtifactCache(str(tmp_path))
        default = ExecutionPlan.build(spasm, cache=cache)
        wide = ExecutionPlan.build(spasm, cache=cache, index="int64")
        f32 = ExecutionPlan.build(
            spasm, cache=cache, precision="float32"
        )
        # Reloading each layout hits its own entry, dtypes intact.
        assert ExecutionPlan.build(
            spasm, cache=cache
        ).cols.dtype == np.int32
        assert ExecutionPlan.build(
            spasm, cache=cache, index="int64"
        ).cols.dtype == np.int64
        assert ExecutionPlan.build(
            spasm, cache=cache, precision="float32"
        ).vals.dtype == np.float32
        assert default.checksum != wide.checksum
        assert default.checksum != f32.checksum

    def test_pipeline_cache_roundtrip_keeps_dtypes(self, rng, tmp_path):
        coo = integer_coo(rng, 64, "blocks")
        compiler = SpasmCompiler(
            build_plan=True, cache_dir=str(tmp_path)
        )
        first = compiler.compile(coo)
        second = compiler.compile(coo)
        stages = {
            e.name: e.cache for e in second.trace if e.cache
        }
        assert stages.get("plan") == "hit"
        assert_plans_identical(first.plan, second.plan)
        assert second.plan.cols.dtype == np.int32


# -- batched multi-query SpMV ------------------------------------------


class TestSpmvBatch:
    def test_batch_rows_equal_spmv(self, rng):
        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo)
        plan = spasm.plan()
        xs = rng.integers(
            0, 5, size=(9, coo.shape[1])
        ).astype(np.float64)
        ys = plan.spmv_batch(xs)
        assert ys.shape == (9, coo.shape[0])
        for i in range(9):
            assert np.array_equal(ys[i], plan.spmv(xs[i])), i

    def test_batch_blocking_invariant(self, rng):
        spasm = encode(integer_coo(rng, 64))
        plan = spasm.plan()
        xs = rng.integers(0, 5, size=(8, 64)).astype(np.float64)
        assert np.array_equal(
            plan.spmv_batch(xs, block_size=3),
            plan.spmv_batch(xs),
        )

    def test_batch_sharding_invariant(self, rng):
        spasm = encode(integer_coo(rng, 96))
        plan = spasm.plan()
        xs = rng.integers(0, 5, size=(5, 96)).astype(np.float64)
        assert np.array_equal(
            plan.spmv_batch(xs, jobs=4), plan.spmv_batch(xs, jobs=1)
        )

    def test_batch_empty_and_bad_shapes(self, rng):
        spasm = encode(integer_coo(rng, 64))
        plan = spasm.plan()
        empty = plan.spmv_batch(np.empty((0, 64)))
        assert empty.shape == (0, 64)
        with pytest.raises(ValueError):
            plan.spmv_batch(np.ones(64))
        with pytest.raises(ValueError):
            plan.spmv_batch(np.ones((3, 65)))

    def test_matrix_delegates_batch(self, rng):
        spasm = encode(integer_coo(rng, 64))
        xs = rng.integers(0, 5, size=(4, 64)).astype(np.float64)
        assert np.array_equal(
            spasm.spmv_batch(xs), spasm.plan().spmv_batch(xs)
        )


# -- guarded and simulated batching ------------------------------------


class TestGuardedBatch:
    def test_guarded_batch_clean_path_bitwise(self, rng):
        from repro.resilience import ExecutionGuard

        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo)
        guard = ExecutionGuard(spasm)
        xs = rng.integers(
            0, 5, size=(6, coo.shape[1])
        ).astype(np.float64)
        assert np.array_equal(
            guard.spmv_batch(xs), spasm.plan().spmv_batch(xs)
        )
        assert len(guard.log) == 0

    def test_guarded_batch_recovers_from_corrupt_plan(self, rng):
        from repro.resilience import ExecutionGuard
        from repro.resilience.faults import FaultInjector

        coo = integer_coo(rng, 64, "mixed")
        spasm = encode(coo)
        guard = ExecutionGuard(spasm)
        injector = FaultInjector(seed=3)
        injector.flip_plan_array(spasm.plan())
        xs = rng.integers(0, 5, size=(3, 64)).astype(np.float64)
        expected = np.stack([spasm.spmv_naive(q) for q in xs])
        assert np.array_equal(guard.spmv_batch(xs), expected)
        assert any(
            e.kind == "detect" for e in guard.log.events
        )

    def test_guarded_batch_bad_shape_is_caller_error(self, rng):
        from repro.resilience import ExecutionGuard

        guard = ExecutionGuard(encode(integer_coo(rng, 64)))
        with pytest.raises(ValueError):
            guard.spmv_batch(np.ones((2, 63)))

    def test_fast_sim_batch_bitwise(self, rng):
        from repro.hw import DEFAULT_CONFIGS, SpasmAccelerator

        coo = integer_coo(rng, 64, "blocks")
        spasm = encode(coo)
        acc = SpasmAccelerator(DEFAULT_CONFIGS[0])
        xs = rng.integers(0, 5, size=(4, 64)).astype(np.float64)
        result = acc.run_batch(spasm, xs)
        singles = np.stack([
            acc.run(spasm, q, engine="fast").y for q in xs
        ])
        assert np.array_equal(result.y, singles)
        assert result.cycles > 0
        assert result.hbm_bytes > 0


# -- shard auto-heuristic ----------------------------------------------


class TestAutoSharding:
    def test_small_plans_stay_serial(self, rng):
        plan = encode(integer_coo(rng, 64)).plan()
        assert plan._auto_jobs() == 1

    def test_heuristic_scales_with_slots(self, rng, monkeypatch):
        # Pin dispatch overhead to ~zero: this test isolates the nnz
        # rule, the overhead clamp has its own tests in test_tune.py.
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", 1e-12)
        monkeypatch.setattr(plan_mod, "AUTO_SHARD_SLOTS", 64)
        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 8)
        plan = encode(integer_coo(rng, 96)).plan()
        assert plan._auto_jobs() == min(plan.n_slots // 64, 8)

    def test_heuristic_caps_at_cpu_count(self, rng, monkeypatch):
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", 1e-12)
        monkeypatch.setattr(plan_mod, "AUTO_SHARD_SLOTS", 64)
        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 2)
        plan = encode(integer_coo(rng, 96)).plan()
        assert plan._auto_jobs() == 2

    def test_auto_matches_serial_bitwise(self, rng, monkeypatch):
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", 1e-12)
        monkeypatch.setattr(plan_mod, "AUTO_SHARD_SLOTS", 64)
        monkeypatch.setattr(plan_mod, "MIN_SHARD_SLOTS", 16)
        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 4)
        coo = integer_coo(rng, 96, "mixed")
        spasm = encode(coo)
        plan = spasm.plan()
        assert plan._auto_jobs() > 1
        x = rng.integers(0, 5, size=96).astype(np.float64)
        assert np.array_equal(plan.spmv(x), plan.spmv(x, jobs=1))


# -- decomposition table cache -----------------------------------------


class TestCachedTable:
    def test_same_portfolio_reuses_table(self):
        portfolio = candidate_portfolios()[0]
        assert cached_table(portfolio) is cached_table(portfolio)

    def test_distinct_portfolios_distinct_tables(self):
        a, b = candidate_portfolios()[:2]
        assert cached_table(a) is not cached_table(b)

    def test_cached_table_matches_fresh(self):
        from repro.core import DecompositionTable

        portfolio = candidate_portfolios()[1]
        fresh = DecompositionTable(portfolio)
        cached = cached_table(portfolio)
        assert fresh.masks == cached.masks
        patterns = np.arange(1, 64, dtype=np.int64)
        assert np.array_equal(
            fresh.padding_array(patterns),
            cached.padding_array(patterns),
        )
