"""Tests for the byte-level HBM memory images."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.core.encoding import unpack_position
from repro.hw.configs import SPASM_3_2, SPASM_4_1
from repro.hw.memory_image import pack_images, unpack_images
from repro.hw.perf_model import assign_tiles
from repro.matrix import COOMatrix
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


def make(rng, portfolio, config=SPASM_4_1, n=96, tile=32):
    coo = random_structured_coo(rng, n, "mixed")
    spasm = encode_spasm(coo, portfolio, tile)
    return coo, spasm, pack_images(spasm, config)


class TestPack:
    def test_channel_inventory(self, rng, portfolio):
        __, __, image = make(rng, portfolio, SPASM_4_1)
        assert len(image.value_images) == 4 * 4  # 4 groups x 4 channels
        assert len(image.position_images) == 4 * 2

    def test_byte_sizes(self, rng, portfolio):
        __, spasm, image = make(rng, portfolio)
        total_value = sum(
            len(img) for img in image.value_images.values()
        )
        total_pos = sum(
            len(img) for img in image.position_images.values()
        )
        assert total_value == spasm.n_groups * 16  # 4 x float32
        assert total_pos == spasm.n_groups * 4
        assert image.total_bytes == total_value + total_pos

    def test_descriptors_cover_all_tiles(self, rng, portfolio):
        __, spasm, image = make(rng, portfolio)
        n_desc = sum(len(d) for d in image.descriptors)
        assert n_desc == spasm.n_tiles
        groups = sum(
            n for desc in image.descriptors for __, __, n in desc
        )
        assert groups == spasm.n_groups

    def test_descriptors_match_schedule(self, rng, portfolio):
        __, spasm, image = make(rng, portfolio)
        owner = assign_tiles(
            spasm.groups_per_tile(), SPASM_4_1.num_pes
        )
        for t, tile in enumerate(spasm.tiles()):
            pe = int(owner[t])
            assert (
                tile.tile_row, tile.tile_col, tile.n_groups
            ) in image.descriptors[pe]


class TestUnpackRoundtrip:
    def test_words_roundtrip(self, rng, portfolio):
        __, spasm, image = make(rng, portfolio)
        pe_words, __ = unpack_images(image)
        unpacked = sorted(
            int(w) for words in pe_words for w in words
        )
        # CE/RE flags are per-stream; the multiset of words matches.
        assert len(unpacked) == spasm.n_groups

    def test_values_roundtrip_float32(self, rng, portfolio):
        __, spasm, image = make(rng, portfolio)
        __, pe_values = unpack_images(image)
        total = np.concatenate([v.ravel() for v in pe_values])
        original = spasm.values.astype(np.float32).ravel()
        assert sorted(total.tolist()) == sorted(original.tolist())

    def test_streams_recompute_spmv(self, rng, portfolio):
        # Execute the unpacked per-PE streams through raw position
        # decoding and template expansion: the y vector must match.
        coo, spasm, image = make(rng, portfolio, n=64, tile=16)
        pe_words, pe_values = unpack_images(image)
        x = rng.random(64)
        y = np.zeros(64 + spasm.tile_size)
        x_pad = np.zeros(64 + spasm.tile_size)
        x_pad[:64] = x
        cells = {
            t_idx: portfolio.templates[t_idx].cells()
            for t_idx in range(len(portfolio))
        }
        for pe, descriptor in enumerate(image.descriptors):
            cursor = 0
            for tile_row, tile_col, n_groups in descriptor:
                for g in range(cursor, cursor + n_groups):
                    pos = unpack_position(int(pe_words[pe][g]))
                    vals = pe_values[pe][g]
                    for lane, (r, c) in enumerate(cells[pos.t_idx]):
                        row = tile_row * spasm.tile_size + pos.r_idx * 4 + r
                        col = tile_col * spasm.tile_size + pos.c_idx * 4 + c
                        y[row] += float(vals[lane]) * x_pad[col]
                cursor += n_groups
        assert np.allclose(y[:64], coo.spmv(x), rtol=1e-6, atol=1e-6)

    def test_other_config(self, rng, portfolio):
        coo, spasm, image = make(rng, portfolio, config=SPASM_3_2)
        pe_words, pe_values = unpack_images(image)
        assert len(pe_words) == SPASM_3_2.num_pes
        assert sum(w.size for w in pe_words) == spasm.n_groups

    def test_empty_matrix(self, portfolio):
        spasm = encode_spasm(
            COOMatrix([], [], [], (16, 16)), portfolio, 16
        )
        image = pack_images(spasm, SPASM_4_1)
        assert image.total_bytes == 0
        pe_words, pe_values = unpack_images(image)
        assert all(w.size == 0 for w in pe_words)
