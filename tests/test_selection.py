"""Tests for template pattern selection (paper Algorithm 3)."""

import pytest

from repro.core import analyze_local_patterns, select_portfolio
from repro.core.selection import padding_rate, storage_bytes_estimate
from repro.core.templates import build_portfolio, candidate_portfolios
from repro.synth import generators as g


class TestSelectPortfolio:
    def test_antidiag_matrix_selects_antidiag_portfolio(self):
        coo = g.anti_diagonal_stripes(128, (0, 33, -47), fill=1.0, seed=0)
        hist = analyze_local_patterns(coo)
        result = select_portfolio(hist)
        kinds = {t.kind for t in result.portfolio}
        assert "ADIAG" in kinds

    def test_diag_matrix_selects_diag_portfolio(self):
        coo = g.diagonal_stripes(128, (0, 17), fill=1.0, seed=0)
        hist = analyze_local_patterns(coo)
        result = select_portfolio(hist)
        kinds = {t.kind for t in result.portfolio}
        assert "DIAG" in kinds

    def test_block_matrix_zero_padding_winner(self, block_diag_coo):
        hist = analyze_local_patterns(block_diag_coo)
        result = select_portfolio(hist)
        assert result.paddings[result.portfolio.name] == 0

    def test_winner_has_min_padding(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = select_portfolio(hist)
        best = min(result.paddings.values())
        assert result.paddings[result.portfolio.name] == best

    def test_ranking_sorted(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = select_portfolio(hist)
        values = [result.paddings[name] for name in result.ranking]
        assert values == sorted(values)

    def test_top_n_restricts_scoring(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = select_portfolio(hist, top_n=3)
        assert result.scored_patterns <= 3

    def test_coverage_shortcut(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = select_portfolio(hist, coverage=0.5)
        assert result.scored_patterns <= hist.n_distinct

    def test_rejects_both_topn_and_coverage(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        with pytest.raises(ValueError):
            select_portfolio(hist, top_n=3, coverage=0.5)

    def test_rejects_empty_candidates(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        with pytest.raises(ValueError):
            select_portfolio(hist, candidates=[])

    def test_rejects_k_mismatch(self, small_coo):
        hist = analyze_local_patterns(small_coo, k=2)
        with pytest.raises(ValueError):
            select_portfolio(hist, candidates=candidate_portfolios(4))

    def test_table_reusable(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        result = select_portfolio(hist)
        # The returned table answers decompositions for the winner.
        pattern = int(hist.patterns[0])
        assert result.table.padding(pattern) >= 0

    def test_custom_candidates(self, block_diag_coo):
        hist = analyze_local_patterns(block_diag_coo)
        only = build_portfolio("rw+cw", name="rows-cols")
        result = select_portfolio(hist, candidates=[only])
        assert result.portfolio.name == "rows-cols"


class TestSetSelection:
    def test_merge_sums_frequencies(self, block_diag_coo):
        from repro.core.selection import merge_histograms

        hist = analyze_local_patterns(block_diag_coo)
        merged = merge_histograms([hist, hist])
        assert merged.total == 2 * hist.total
        assert merged.n_distinct == hist.n_distinct

    def test_merge_rejects_empty(self):
        from repro.core.selection import merge_histograms

        with pytest.raises(ValueError):
            merge_histograms([])

    def test_merge_rejects_k_mismatch(self, small_coo):
        from repro.core.selection import merge_histograms

        with pytest.raises(ValueError):
            merge_histograms([
                analyze_local_patterns(small_coo, 2),
                analyze_local_patterns(small_coo, 4),
            ])

    def test_set_selection_compromises(self):
        from repro.core.selection import select_portfolio_for_set

        diag = g.diagonal_stripes(128, (0, 17), fill=1.0, seed=0)
        adiag = g.anti_diagonal_stripes(128, (0, 33), fill=1.0, seed=1)
        h_diag = analyze_local_patterns(diag)
        h_adiag = analyze_local_patterns(adiag)
        shared = select_portfolio_for_set([h_diag, h_adiag]).portfolio
        kinds = {t.kind for t in shared}
        # The shared portfolio must serve both pattern families.
        assert "DIAG" in kinds and "ADIAG" in kinds

    def test_single_histogram_reduces_to_plain_selection(self,
                                                         small_coo):
        from repro.core.selection import select_portfolio_for_set

        hist = analyze_local_patterns(small_coo)
        assert (
            select_portfolio_for_set([hist]).portfolio.name
            == select_portfolio(hist).portfolio.name
        )


class TestDerivedMetrics:
    def test_padding_rate_zero_for_pure_blocks(self, block_diag_coo):
        hist = analyze_local_patterns(block_diag_coo)
        portfolio = candidate_portfolios()[0]
        assert padding_rate(hist, portfolio) == 0.0

    def test_padding_rate_bounds(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        rate = padding_rate(hist, candidate_portfolios()[0])
        assert 0.0 <= rate < 1.0

    def test_storage_estimate_matches_formula(self, block_diag_coo):
        hist = analyze_local_patterns(block_diag_coo)
        portfolio = candidate_portfolios()[0]
        estimate = storage_bytes_estimate(hist, portfolio)
        # zero padding: nnz/4 groups of 20 bytes
        assert estimate == block_diag_coo.nnz // 4 * 20

    def test_storage_estimate_matches_encoding(self, small_coo):
        from repro.core import encode_spasm

        hist = analyze_local_patterns(small_coo)
        portfolio = candidate_portfolios()[0]
        estimate = storage_bytes_estimate(hist, portfolio)
        spasm = encode_spasm(small_coo, portfolio, 16)
        assert estimate == spasm.storage_bytes()
