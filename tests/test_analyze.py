"""Tests for the symbolic static-analysis subsystem (``repro.analyze``).

Three layers are exercised: the pure symbolic certificate (boundary
behaviour at the int32 capacity, via hypothesis), the six obligation
checkers over real compiled plans (clean proofs and fault-injected
refutations with pinpointed witnesses), and the integration surfaces —
``analyze.*`` verify rules, the cacheable :class:`AnalyzePass`, the
guard's ``static_analysis`` knob and the escalated ``plan.layout``
advisory.
"""

import dataclasses
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import (
    OBLIGATION_IDS,
    PROVED,
    REFUTED,
    SKIPPED,
    AnalysisReport,
    Obligation,
    analyze_plan,
    analyze_program,
    certify_index_width,
    check_image_bounds,
    check_policy_consistency,
    check_segment_coverage,
    check_shard_disjointness,
)
from repro.core import SpasmCompiler, candidate_portfolios, encode_spasm
from repro.exec.plan import index_dtype_for, plan_checksum
from repro.resilience import ExecutionGuard, FaultInjector, GuardConfig
from repro.synth import load_workload
from tests.conftest import random_structured_coo

INT32_MAX = int(np.iinfo(np.int32).max)


@pytest.fixture(scope="module")
def program():
    """A compiled program with an attached plan (module-shared)."""
    coo = load_workload("stormG2_1000", scale=0.5)
    return SpasmCompiler(build_plan=True).compile(coo)


@pytest.fixture(scope="module")
def clean_report(program):
    return analyze_program(program, matrix="stormG2_1000")


def mutable_plan(program):
    """A deep-enough copy of the program's plan to corrupt safely."""
    base = program.plan
    return dataclasses.replace(
        base,
        cols=base.cols.copy(),
        vals=base.vals.copy(),
        seg_starts=base.seg_starts.copy(),
        seg_rows=base.seg_rows.copy(),
    )


def with_checksum(plan):
    """The same plan with its checksum recomputed over current arrays.

    Corruption tests use this to build plans that *pass*
    ``validate()`` — only the structural analyzer can reject them.
    """
    return dataclasses.replace(
        plan,
        checksum=plan_checksum(
            plan.cols, plan.vals, plan.seg_starts, plan.seg_rows,
            plan.shape,
        ),
    )


class TestCleanProofs:
    def test_all_six_obligations_proved(self, clean_report):
        assert [
            o.obligation_id for o in clean_report.obligations
        ] == list(OBLIGATION_IDS)
        assert all(o.status == PROVED for o in clean_report.obligations)
        assert clean_report.ok and not clean_report.refuted

    def test_index_width_carries_certified_bound(self, clean_report):
        o = clean_report.obligation("index_width")
        assert o.bound and "int32 layout certified" in o.bound
        assert o.details["headroom"] >= 0
        assert o.details["compact_sufficient"] is True

    def test_shards_quantify_over_jobs_grid(self, clean_report):
        o = clean_report.obligation("shards")
        grid = o.details["jobs_grid"]
        assert 1 in grid and len(grid) >= 7
        assert "bitwise determinism" in o.statement

    def test_image_skipped_without_image(self, program):
        report = analyze_plan(program.plan)
        assert report.obligation("image").status == SKIPPED
        assert report.ok  # skipped is not refuted

    def test_summary_and_render(self, clean_report):
        assert "6 obligations for stormG2_1000" in clean_report.summary()
        text = clean_report.render()
        assert "PROVED" in text and "coverage" in text

    def test_report_dict_roundtrip(self, clean_report):
        clone = AnalysisReport.from_dict(clean_report.as_dict())
        assert clone.as_dict() == clean_report.as_dict()
        assert clone.obligation("policy").proved

    def test_unknown_obligation_raises(self, clean_report):
        with pytest.raises(KeyError):
            clean_report.obligation("nope")


class TestCertificate:
    def test_matches_plan_extent(self, program):
        plan = program.plan
        cert = certify_index_width(
            plan.shape, plan.n_slots, plan.cols.dtype
        )
        assert cert.extent == max(
            plan.shape[0], plan.shape[1], plan.n_slots
        )
        assert cert.safe and cert.compact_sufficient
        assert str(cert.capacity) in cert.bound()

    def test_rejects_non_index_dtype(self):
        with pytest.raises(ValueError):
            certify_index_width((4, 4), 4, np.float32)

    def test_int64_certifies_past_int32(self):
        cert = certify_index_width(
            (INT32_MAX + 10, 8), INT32_MAX + 10, np.int64
        )
        assert cert.safe and not cert.compact_sufficient
        assert cert.dtype == "int64"

    @settings(max_examples=200, deadline=None)
    @given(
        nrows=st.integers(1, 2**40),
        ncols=st.integers(1, 2**40),
        slot_delta=st.integers(-4, 4),
    )
    def test_flips_exactly_with_index_dtype_for(
        self, nrows, ncols, slot_delta
    ):
        """The symbolic verdict and the layout heuristic agree at and
        around the int32 capacity — no allocation involved."""
        n_slots = max(1, INT32_MAX + slot_delta)
        cert = certify_index_width((nrows, ncols), n_slots, np.int32)
        compact = index_dtype_for((nrows, ncols), n_slots)
        assert cert.compact_sufficient == (
            compact == np.dtype(np.int32)
        )
        assert cert.safe == cert.compact_sufficient
        assert cert.headroom == INT32_MAX - max(nrows, ncols, n_slots)

    @settings(max_examples=50, deadline=None)
    @given(delta=st.integers(-3, 3))
    def test_boundary_is_exact(self, delta):
        extent = INT32_MAX + delta
        cert = certify_index_width((extent, 1), 1, np.int32)
        assert cert.safe == (delta <= 0)
        assert cert.compact_sufficient == (delta <= 0)


class TestFaultRefutation:
    """Seeded bit flips produce refutations with pinpointed witnesses.

    The seeds are pinned: ``FaultInjector`` is deterministic, so seed 0
    always lands in ``seg_rows`` (a coverage violation) and seed 11 in
    ``cols`` (an out-of-range gather index) for this workload.
    """

    def test_seed0_refutes_coverage(self, program):
        plan = mutable_plan(program)
        record = FaultInjector(0).flip_plan_array(plan)
        assert record.location.startswith("seg_rows")
        report = analyze_plan(with_checksum(plan))
        o = report.obligation("coverage")
        assert o.refuted
        assert re.search(r"seg_rows\[\d+\]", o.details["witness"])
        assert not report.ok

    def test_seed11_refutes_index_width(self, program):
        plan = mutable_plan(program)
        record = FaultInjector(11).flip_plan_array(plan)
        assert record.location.startswith("cols")
        o = analyze_plan(with_checksum(plan)).obligation("index_width")
        assert o.refuted
        assert re.match(r"cols\[\d+\]", o.details["witness"])
        assert o.details["value"] >= program.plan.shape[1]
        assert "out of bounds" in o.statement

    def test_refutation_survives_checksum_repair(self, program):
        """Recomputing the checksum over corrupted arrays does not
        rescue the plan: the refutation is structural, not a hash
        mismatch, and carries a witness the checksum never could."""
        plan = mutable_plan(program)
        FaultInjector(0).flip_plan_array(plan)
        repaired = with_checksum(plan)
        assert all("checksum" not in p for p in repaired.validate())
        report = analyze_plan(repaired)
        assert not report.ok
        assert report.obligation("coverage").details["witness"]

    def test_constant_seg_rows_refute_coverage(self, program):
        plan = mutable_plan(program)
        plan.seg_rows[:] = 0
        plan = with_checksum(plan)
        o = check_segment_coverage(plan)
        assert o.refuted and "written twice" in o.statement

    def test_overlapping_shards_refute(self):
        """The shard obligation catches write-set races per jobs count
        (driven through a stub — real plans this small collapse to one
        shard, which is trivially race-free)."""

        class Sharded:
            n_segments = 4
            seg_rows = np.array([0, 1, 1, 2])

            def _auto_jobs(self):
                return 1

            def shard_bounds(self, jobs):
                return (
                    [(0, 4)] if jobs == 1 else [(0, 2), (2, 4)]
                )

        o = check_shard_disjointness(Sharded(), jobs_grid=(1, 2))
        assert o.refuted
        assert "jobs=2" in o.statement and "race" in o.statement
        assert o.details["jobs"] == 2

    def test_shard_gap_refutes(self):
        class Gapped:
            n_segments = 4
            seg_rows = np.array([0, 1, 2, 3])

            def _auto_jobs(self):
                return 2

            def shard_bounds(self, jobs):
                return [(0, 4)] if jobs == 1 else [(0, 2), (3, 4)]

        o = check_shard_disjointness(Gapped(), jobs_grid=(1, 2))
        assert o.refuted and "gap or overlap" in o.statement

    def test_mixed_index_dtypes_refute(self, program):
        base = program.plan
        mixed = dataclasses.replace(
            base, seg_rows=base.seg_rows.astype(np.int64)
        )
        o = analyze_plan(mixed).obligation("index_width")
        assert o.refuted and "disagree on width" in o.statement

    def test_image_descriptor_drift_refutes(self, program):
        from repro.hw.memory_image import pack_images

        spasm = program.spasm
        image = pack_images(spasm, program.hw_config)
        assert check_image_bounds(
            image, k=spasm.k, spasm=spasm
        ).proved

        class FakeStream:
            k = spasm.k
            n_groups = int(spasm.n_groups) + 1

        o = check_image_bounds(image, k=spasm.k, spasm=FakeStream())
        assert o.refuted and "descriptors account" in o.statement


class TestPolicyConsistency:
    def test_clean_plan_is_consistent(self, program):
        o = check_policy_consistency(program.plan)
        assert o.proved and "drift" in o.statement

    def test_wide_plan_still_consistent(self, program):
        """Widening to int64 fires the plan.layout advisory — and the
        certificate predicts it, so policy stays consistent."""
        base = program.plan
        wide = with_checksum(dataclasses.replace(
            base,
            cols=base.cols.astype(np.int64),
            seg_starts=base.seg_starts.astype(np.int64),
            seg_rows=base.seg_rows.astype(np.int64),
        ))
        assert wide.validate() == []
        assert check_policy_consistency(wide).proved


class TestPlanLayoutEscalation:
    def test_advisory_reports_certified_bound(self, program):
        from repro.verify.rules import REGISTRY, VerifyContext

        base = program.plan
        wide = with_checksum(dataclasses.replace(
            base,
            cols=base.cols.astype(np.int64),
            seg_starts=base.seg_starts.astype(np.int64),
            seg_rows=base.seg_rows.astype(np.int64),
        ))
        diags = list(
            REGISTRY["plan.layout"].check(VerifyContext(plan=wide))
        )
        assert len(diags) == 1
        d = diags[0]
        assert "certifies the compact layout" in d.message
        assert "int32 layout certified" in d.message
        assert d.details["certified_capacity"] == INT32_MAX
        assert d.details["certified_headroom"] >= 0

    def test_silent_on_compact_plan(self, program):
        from repro.verify.rules import REGISTRY, VerifyContext

        ctx = VerifyContext(plan=program.plan)
        assert list(REGISTRY["plan.layout"].check(ctx)) == []


class TestVerifyIntegration:
    def test_clean_plan_yields_no_diagnostics(self, program):
        from repro.verify import verify_analysis

        report = verify_analysis(program.plan, spasm=program.spasm)
        assert report.ok
        rules = {d.rule_id for d in report.diagnostics}
        assert not rules  # refutation-only rules stay silent

    def test_refuted_obligation_becomes_error(self, program):
        from repro.verify import verify_analysis

        plan = mutable_plan(program)
        FaultInjector(0).flip_plan_array(plan)
        report = verify_analysis(with_checksum(plan))
        assert not report.ok
        assert all(
            d.rule_id.startswith("analyze.") for d in report.errors
        )
        assert any(
            "refuted coverage" in d.message for d in report.errors
        )

    def test_analyze_rules_registered(self):
        from repro.verify.rules import KIND_ANALYZE, rules_for

        ids = {r.rule_id for r in rules_for([KIND_ANALYZE])}
        assert ids == {
            "analyze.index_width", "analyze.coverage",
            "analyze.shards", "analyze.image", "analyze.policy",
            "analyze.backend",
        }


class TestAnalyzePass:
    TILES = (16, 32)

    def test_compile_with_analyze_caches_report(self, rng, tmp_path):
        coo = random_structured_coo(rng, 64, "mixed")
        kwargs = dict(
            tile_sizes=self.TILES, cache_dir=tmp_path, analyze=True
        )
        cold = SpasmCompiler(**kwargs).compile(coo)
        states = {e.name: e.cache for e in cold.trace}
        assert states["analyze"] == "miss"
        warm = SpasmCompiler(**kwargs).compile(coo)
        states = {e.name: e.cache for e in warm.trace}
        assert states["analyze"] == "hit"

    def test_analyze_implies_build_plan(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        program = SpasmCompiler(
            tile_sizes=self.TILES, analyze=True
        ).compile(coo)
        assert program.plan is not None

    def test_refuted_plan_raises_format_error(self, program):
        from repro.core.format import FormatError
        from repro.pipeline import AnalyzePass, ArtifactStore

        plan = mutable_plan(program)
        FaultInjector(0).flip_plan_array(plan)
        store = ArtifactStore()
        store.put("plan", with_checksum(plan))
        with pytest.raises(FormatError, match="refuted"):
            AnalyzePass().run(store)


class TestGuardStaticAnalysis:
    def test_structural_corruption_detected_and_rebuilt(self, rng):
        """With validate() disabled, only the analyzer stands between
        a checksum-consistent corrupted plan and dispatch."""
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        x = rng.random(spasm.shape[1])
        reference = spasm.plan().spmv(x)

        corrupted = dataclasses.replace(
            spasm.plan(), seg_rows=spasm.plan().seg_rows.copy()
        )
        corrupted.seg_rows[:2] = corrupted.seg_rows[:2][::-1]
        # Checksum-consistent: only the structural proofs can object.
        spasm._plan = with_checksum(corrupted)

        guard = ExecutionGuard(spasm, config=GuardConfig(
            validate_plan=False, static_analysis=True,
        ))
        out = guard.spmv(x)
        assert np.array_equal(out, reference)
        detections = [
            e for e in guard.log.events
            if e.kind == "detect" and e.surface == "plan"
        ]
        assert detections and "coverage" in detections[0].detail

    def test_clean_plan_stays_silent(self, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        guard = ExecutionGuard(
            spasm, config=GuardConfig(static_analysis=True)
        )
        x = rng.random(spasm.shape[1])
        assert np.array_equal(guard.spmv(x), spasm.plan().spmv(x))
        assert not guard.log.events


class TestObligationDataclass:
    def test_dict_roundtrip_preserves_bound_and_details(self):
        o = Obligation(
            "index_width", REFUTED, "boom",
            bound="b", details={"witness": "cols[3]"},
        )
        clone = Obligation.from_dict(o.as_dict())
        assert clone == o
        assert "REFUTED" in clone.render() and "[b]" in clone.render()

    def test_minimal_dict_omits_empty_fields(self):
        payload = Obligation("policy", PROVED, "fine").as_dict()
        assert "bound" not in payload and "details" not in payload
