"""Tests for the pluggable kernel-backend registry.

The acceptance gate of the backend split: every registered backend
that claims a plan layout produces **bitwise identical** float64
results to the portable ``gather`` reference across all three entry
points (``spmv``/``spmm``/``spmv_batch``), serial and sharded.  The
registry's negotiation policy and error paths, the guard's fallback
ladder through a hostile backend, and prepared-state fault injection
ride along.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import candidate_portfolios, encode_spasm
from repro.exec import (
    BackendCapabilities,
    BackendCapabilityError,
    BackendUnavailable,
    ExecutionBackend,
    ExecutionPlan,
    available_backends,
    csr_kernels_available,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.exec.backends.numba_jit import numba_available
from repro.matrix.coo import COOMatrix
from repro.resilience import (
    ExecutionGuard,
    FaultInjector,
    GuardConfig,
    IntegrityError,
)
from tests.conftest import random_structured_coo

#: Every storable plan layout; each backend participates in the
#: parity sweep exactly where its declared capabilities claim it.
LAYOUTS = [
    ("int32", "float64"),
    ("int32", "float32"),
    ("int64", "float64"),
    ("int64", "float32"),
]


def integer_coo(rng, n=48, kind="mixed"):
    """Small-integer values: float64 sums are order-independent, so
    every cross-backend comparison can demand bitwise equality."""
    coo = random_structured_coo(rng, n, kind)
    vals = rng.integers(1, 8, size=coo.nnz).astype(np.float64)
    return COOMatrix(rows=coo.rows, cols=coo.cols, vals=vals,
                     shape=coo.shape)


def encode(coo, tile_size=32):
    return encode_spasm(coo, candidate_portfolios()[0], tile_size)


def build_plan(rng, index="int32", precision="float64", n=48):
    spasm = encode(integer_coo(rng, n))
    return spasm, ExecutionPlan.build(
        spasm, index=index, precision=precision
    )


# -- cross-backend bitwise parity --------------------------------------


class TestBitwiseParity:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        layout=st.sampled_from(LAYOUTS),
        jobs=st.sampled_from([1, 3]),
    )
    def test_every_capable_backend_matches_gather(
        self, seed, layout, jobs
    ):
        """gather is the reference; csr (and numba when installed)
        must agree bitwise on every layout they claim, for all three
        ops, sharded and serial."""
        index, precision = layout
        rng = np.random.default_rng(seed)
        __, plan = build_plan(rng, index=index, precision=precision)
        n = plan.shape[1]
        x = rng.random(n)
        xb = rng.random((n, 3))
        xs = rng.random((4, n))

        ref_v = plan.spmv(x, jobs=jobs, backend="gather")
        ref_m = plan.spmm(xb, jobs=jobs, backend="gather")
        ref_b = plan.spmv_batch(xs, jobs=jobs, backend="gather")
        # Serial and sharded gather agree with themselves first.
        assert np.array_equal(ref_v, plan.spmv(x, backend="gather"))

        others = [
            engine for engine in available_backends()
            if engine.name != "gather"
        ]
        for engine in others:
            for op in ("spmv", "spmm", "spmv_batch"):
                if not engine.supports(plan, op):
                    continue
                if op == "spmv":
                    got = plan.spmv(x, jobs=jobs, backend=engine.name)
                    assert np.array_equal(got, ref_v), engine.name
                elif op == "spmm":
                    got = plan.spmm(xb, jobs=jobs, backend=engine.name)
                    assert np.array_equal(got, ref_m), engine.name
                else:
                    got = plan.spmv_batch(
                        xs, jobs=jobs, backend=engine.name
                    )
                    assert np.array_equal(got, ref_b), engine.name

    @pytest.mark.skipif(not csr_kernels_available(),
                        reason="scipy kernels unavailable")
    def test_parity_is_not_vacuous_for_csr(self, rng):
        """The canonical compact layout really exercises the csr
        backend: auto resolves to it and it agrees with gather."""
        __, plan = build_plan(rng)
        assert resolve_backend(None, plan=plan, op="spmv").name == "csr"
        x = np.random.default_rng(7).random(plan.shape[1])
        assert np.array_equal(
            plan.spmv(x, backend="csr"),
            plan.spmv(x, backend="gather"),
        )

    @pytest.mark.skipif(not numba_available(),
                        reason="numba not installed")
    def test_numba_matches_gather_on_every_layout(self, rng):
        for index, precision in LAYOUTS:
            __, plan = build_plan(
                rng, index=index, precision=precision
            )
            n = plan.shape[1]
            x = np.random.default_rng(3).random(n)
            xs = np.random.default_rng(4).random((3, n))
            assert np.array_equal(
                plan.spmv(x, backend="numba"),
                plan.spmv(x, backend="gather"),
            )
            assert np.array_equal(
                plan.spmv_batch(xs, backend="numba"),
                plan.spmv_batch(xs, backend="gather"),
            )

    def test_float64_backends_match_naive_exactly(self, rng):
        """Every float64-capable backend is bitwise equal to the
        naive re-expansion engine on integer values."""
        spasm, plan = build_plan(rng)
        x = np.random.default_rng(11).random(plan.shape[1])
        reference = spasm.spmv_naive(x)
        for engine in available_backends():
            if not engine.supports(plan, "spmv"):
                continue
            got = plan.spmv(x, backend=engine.name)
            assert np.array_equal(got, reference), engine.name


# -- registry and negotiation ------------------------------------------


class TestRegistry:
    def test_negotiation_order_is_priority_descending(self):
        names = [b.name for b in registered_backends()]
        assert names == ["csr", "numba", "gather"]
        priorities = [b.priority for b in registered_backends()]
        assert priorities == sorted(priorities, reverse=True)

    def test_gather_is_always_available(self):
        assert "gather" in {b.name for b in available_backends()}
        assert get_backend("gather").requires() is None

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="gather"):
            get_backend("nope")
        with pytest.raises(KeyError, match="unknown execution backend"):
            resolve_backend("nope")

    def test_duplicate_registration_rejected(self):
        gather = get_backend("gather")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(gather)
        # replace=True shadows; re-registering restores the original.
        assert register_backend(gather, replace=True) is gather
        assert get_backend("gather") is gather

    def test_invalid_names_rejected(self):
        class Nameless(_FailingBackend):
            name = ""

        class Reserved(_FailingBackend):
            name = "auto"

        for bad in (Nameless(), Reserved()):
            with pytest.raises(ValueError, match="invalid backend name"):
                register_backend(bad)

    def test_unregister_then_reregister(self):
        failing = _FailingBackend()
        register_backend(failing)
        try:
            assert get_backend("failing") is failing
        finally:
            unregister_backend("failing")
        with pytest.raises(KeyError):
            get_backend("failing")
        unregister_backend("failing")  # idempotent

    def test_csr_refuses_layouts_outside_its_envelope(self, rng):
        __, plan64 = build_plan(rng, index="int64")
        with pytest.raises(BackendCapabilityError,
                           match="int64/float64"):
            resolve_backend("csr", plan=plan64, op="spmv")
        x = np.random.default_rng(5).random(plan64.shape[1])
        with pytest.raises(BackendCapabilityError):
            plan64.spmv(x, backend="csr")

    def test_auto_falls_back_to_gather_off_the_fast_path(self, rng):
        """Layouts the csr kernels exclude negotiate to gather (or
        numba where installed) instead of failing."""
        __, plan = build_plan(rng, index="int64", precision="float32")
        engine = resolve_backend(None, plan=plan, op="spmv")
        assert engine.name == ("numba" if numba_available()
                               else "gather")

    @pytest.mark.skipif(numba_available(),
                        reason="numba installed in this env")
    def test_unavailable_backend_raises_soft_error(self, rng):
        """numba registers for discoverability but never dispatches
        while its dependency is missing."""
        assert get_backend("numba").is_available() is False
        with pytest.raises(BackendUnavailable, match="numba"):
            resolve_backend("numba")
        __, plan = build_plan(rng)
        x = np.random.default_rng(5).random(plan.shape[1])
        with pytest.raises(BackendUnavailable):
            plan.spmv(x, backend="numba")

    def test_resolved_engine_instance_passes_through(self, rng):
        __, plan = build_plan(rng)
        gather = get_backend("gather")
        assert resolve_backend(gather, plan=plan, op="spmm") is gather

    def test_prepared_state_is_memoized_per_backend(self, rng):
        __, plan = build_plan(rng)
        x = np.random.default_rng(5).random(plan.shape[1])
        plan.spmv(x, backend="gather")
        plan.spmv(x, backend="gather")
        state = plan._scratch["backend::gather"]
        plan.spmv(x, backend="gather")
        assert plan._scratch["backend::gather"] is state


# -- guard fallback through a hostile backend --------------------------


class _FailingBackend(ExecutionBackend):
    """Claims everything, executes nothing — proves the guard ladder
    survives a backend whose kernels always blow up."""

    name = "failing"
    priority = 99

    def capabilities(self):
        return BackendCapabilities(
            index_dtypes=("int32", "int64"),
            value_dtypes=("float32", "float64"),
        )

    def prepare(self, plan):
        return None

    def spmv(self, plan, state, x, out, lo, hi):
        raise RuntimeError("injected kernel failure")

    def spmm(self, plan, state, xb, out, j0, j1, lo, hi):
        raise RuntimeError("injected kernel failure")


@pytest.fixture
def failing_backend():
    backend = register_backend(_FailingBackend())
    yield backend
    unregister_backend(backend.name)


class TestGuardWithFailingBackend:
    def test_spmv_falls_back_to_naive(self, rng, failing_backend):
        spasm = encode(integer_coo(rng, 64))
        x = np.random.default_rng(9).random(spasm.shape[1])
        guard = ExecutionGuard(spasm, backend="failing")
        out = guard.spmv(x)
        assert np.array_equal(out, spasm.spmv_naive(x))
        actions = [e.action for e in guard.log.events]
        assert "retry" in actions and "fallback" in actions
        # Detection events attribute the incident to the backend.
        assert any(e.backend == "failing" for e in guard.log.events)

    def test_spmv_raises_when_fallback_disabled(
        self, rng, failing_backend
    ):
        spasm = encode(integer_coo(rng, 64))
        x = np.random.default_rng(9).random(spasm.shape[1])
        guard = ExecutionGuard(
            spasm, config=GuardConfig(fallback=False, backoff_s=0.0),
            backend="failing",
        )
        with pytest.raises(IntegrityError, match="fallback"):
            guard.spmv(x)

    def test_batch_falls_back_to_naive(self, rng, failing_backend):
        spasm = encode(integer_coo(rng, 64))
        xs = np.random.default_rng(9).random((3, spasm.shape[1]))
        guard = ExecutionGuard(spasm, backend="failing")
        out = guard.spmv_batch(xs)
        expected = np.stack([spasm.spmv_naive(row) for row in xs])
        assert np.array_equal(out, expected)
        assert any(e.action == "fallback" for e in guard.log.events)

    def test_clean_backend_logs_no_incidents(self, rng):
        spasm = encode(integer_coo(rng, 64))
        x = np.random.default_rng(9).random(spasm.shape[1])
        guard = ExecutionGuard(spasm, backend="gather")
        out = guard.spmv(x)
        assert np.array_equal(out, spasm.spmv_naive(x))
        assert len(guard.log) == 0


# -- prepared-state fault injection ------------------------------------


class TestBackendStateFaults:
    def test_flip_lands_in_memoized_state(self, rng):
        """The byte flip hits exactly the scratch a later dispatch
        consumes, and clearing the memo restores clean output."""
        spasm = encode(integer_coo(rng, 64))
        plan = spasm.plan()
        x = np.random.default_rng(13).random(plan.shape[1])
        clean = plan.spmv(x, backend="gather")

        injector = FaultInjector(seed=21)
        record = injector.flip_backend_state(plan, "gather")
        assert record is not None
        assert record.surface == "backend"
        assert record.details["backend"] == "gather"
        assert record.details["array"] in ("rows", "cols")

        # The corrupted scratch either diverges or trips a bounds
        # check — it must never silently reproduce the clean result.
        try:
            corrupted = plan.spmv(x, backend="gather")
        except (IndexError, ValueError):
            corrupted = None
        if corrupted is not None:
            assert not np.array_equal(corrupted, clean)

        plan._scratch.clear()
        assert np.array_equal(plan.spmv(x, backend="gather"), clean)

    @pytest.mark.skipif(not csr_kernels_available(),
                        reason="scipy kernels unavailable")
    def test_flip_reaches_csr_row_pointer(self, rng):
        spasm = encode(integer_coo(rng, 64))
        plan = spasm.plan()
        x = np.random.default_rng(13).random(plan.shape[1])
        plan.spmv(x, backend="csr")  # materialize the prepared state

        injector = FaultInjector(seed=5)
        record = injector.flip_backend_state(plan, "csr")
        assert record is not None
        assert record.details["array"] == "indptr"
        indptr = plan._scratch["backend::csr"]
        fresh = get_backend("csr").prepare(plan)
        assert not np.array_equal(indptr, fresh)
