"""Cross-module integration tests: the full pipeline on real workloads.

These tie the layers together: synthetic suite -> compiler -> format ->
functional hardware simulation -> analytic model -> analysis metrics,
asserting the invariants that hold across module boundaries.
"""

import numpy as np
import pytest

from repro import SpasmAccelerator, SpasmCompiler
from repro.analysis.storage_compare import spasm_storage_bytes
from repro.baselines import (
    CPUReference,
    HiSparseModel,
    SERPENS_A24,
    SpasmModel,
)
from repro.core import analyze_local_patterns, encode_spasm
from repro.hw.perf_model import perf_model
from repro.synth import load_suite, load_workload

#: A structurally diverse subset of the Table II suite, kept small so
#: the functional simulator (pure Python PE loops) stays fast.
SUBSET = ("raefsky3", "c-73", "t2em", "stormG2_1000", "mip1")
SCALE = 0.15


@pytest.fixture(scope="module")
def compiled():
    compiler = SpasmCompiler(tile_sizes=(64, 128, 256, 512))
    out = {}
    for spec, coo in load_suite(scale=SCALE, names=SUBSET):
        out[spec.name] = (coo, compiler.compile(coo))
    return out


class TestEndToEnd:
    @pytest.mark.parametrize("name", SUBSET)
    def test_functional_sim_exact(self, compiled, name):
        coo, program = compiled[name]
        rng = np.random.default_rng(11)
        x = rng.random(coo.shape[1])
        y0 = rng.random(coo.shape[0])
        result = SpasmAccelerator(program.hw_config).run(
            program.spasm, x, y0
        )
        assert np.allclose(result.y, coo.spmv(x, y0)), name

    @pytest.mark.parametrize("name", SUBSET)
    def test_format_spmv_matches_cpu_reference(self, compiled, name):
        coo, program = compiled[name]
        rng = np.random.default_rng(13)
        x = rng.random(coo.shape[1])
        cpu = CPUReference(repeats=1)
        assert np.allclose(program.spasm.spmv(x), cpu.spmv(coo, x))

    @pytest.mark.parametrize("name", SUBSET)
    def test_decode_roundtrip(self, compiled, name):
        coo, program = compiled[name]
        assert program.spasm.to_coo().to_dense() == pytest.approx(
            coo.to_dense()
        )

    @pytest.mark.parametrize("name", SUBSET)
    def test_sim_cycles_match_perf_model(self, compiled, name):
        coo, program = compiled[name]
        x = np.ones(coo.shape[1])
        result = SpasmAccelerator(program.hw_config).run(program.spasm, x)
        expected = perf_model(
            program.spasm.global_composition(),
            program.hw_config,
            program.tile_size,
        )
        assert result.cycles == pytest.approx(expected)

    @pytest.mark.parametrize("name", SUBSET)
    def test_schedule_best_equals_encoding(self, compiled, name):
        # The cycles the scheduler reported for the winning point must
        # match re-evaluating the final encoded matrix.
        __, program = compiled[name]
        if program.schedule is None:
            pytest.skip("fixed schedule")
        recomputed = perf_model(
            program.spasm.global_composition(),
            program.hw_config,
            program.tile_size,
        )
        assert recomputed == pytest.approx(program.schedule.best_cycles)


class TestStorageConsistency:
    @pytest.mark.parametrize("name", SUBSET)
    def test_estimate_matches_encoding(self, compiled, name):
        # The histogram-based storage estimate used for Figures 9-11
        # must equal the byte count of an actual encoding with the same
        # portfolio.
        coo, program = compiled[name]
        hist = analyze_local_patterns(coo)
        from repro.core.selection import storage_bytes_estimate

        estimate = storage_bytes_estimate(hist, program.portfolio)
        assert estimate == program.spasm.storage_bytes()

    def test_dynamic_storage_never_worse_than_selected(self):
        coo = load_workload("c-73", scale=SCALE)
        dynamic = spasm_storage_bytes(coo)
        from repro.core import candidate_portfolios
        from repro.core.selection import storage_bytes_estimate

        hist = analyze_local_patterns(coo)
        for portfolio in candidate_portfolios():
            assert dynamic <= storage_bytes_estimate(hist, portfolio)


class TestModelCrossChecks:
    def test_spasm_model_consistent_with_compiler(self):
        coo = load_workload("t2em", scale=SCALE)
        model = SpasmModel()
        program = model.program(coo)
        direct = SpasmCompiler().compile(coo)
        assert program.tile_size == direct.tile_size
        assert program.hw_config.name == direct.hw_config.name
        assert program.portfolio.name == direct.portfolio.name

    def test_baselines_slower_than_spasm_on_structured(self):
        # Full scale: at tiny scales SPASM's fixed per-run overheads
        # (pipeline fill, tile switching) dominate and the comparison
        # is meaningless.
        coo = load_workload("raefsky3", scale=1.0)
        spasm = SpasmModel().gflops(coo)
        assert spasm > HiSparseModel().gflops(coo)

    def test_throughput_metric_definition(self):
        # (2*nnz + nrows) / time, per Section V-E1.
        coo = load_workload("t2em", scale=SCALE)
        model = SERPENS_A24()
        t = model.time_s(coo)
        assert model.gflops(coo) == pytest.approx(
            (2 * coo.nnz + coo.shape[0]) / t / 1e9
        )


class TestWholeSuiteSmoke:
    def test_compile_whole_suite_small(self):
        # Every suite matrix must survive the full pipeline at tiny
        # scale (guards generator/compiler edge cases: empty tiles,
        # rectangular shapes, extreme sparsity).
        compiler = SpasmCompiler(tile_sizes=(64, 256))
        for spec, coo in load_suite(scale=0.05):
            program = compiler.compile(coo)
            assert program.spasm.source_nnz == coo.nnz, spec.name
            x = np.ones(coo.shape[1])
            assert np.allclose(
                program.spasm.spmv(x), coo.spmv(x)
            ), spec.name
