"""Tests for the event-level HiSparse simulator."""

import numpy as np
import pytest

from repro.baselines import HiSparseModel
from repro.baselines.hisparse_sim import (
    NUM_CHANNELS,
    PACK_SIZE,
    HiSparseSimulator,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def sim():
    return HiSparseSimulator()


class TestFunctional:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    def test_spmv_exact(self, sim, rng, kind):
        coo = random_structured_coo(rng, 96, kind)
        x = rng.random(96)
        assert np.allclose(sim.run(coo, x).y, coo.spmv(x))

    def test_accumulates(self, sim, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        x, y0 = rng.random(64), rng.random(64)
        assert np.allclose(sim.run(coo, x, y0).y, coo.spmv(x, y0))

    def test_rejects_bad_x(self, sim, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        with pytest.raises(ValueError):
            sim.run(coo, np.ones(5))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            HiSparseSimulator(vector_window=0)


class TestCycleModel:
    def test_throughput_lower_bound(self, sim):
        coo = g.banded(1024, 4, fill=0.9, seed=0)
        run = sim.run(coo, np.ones(1024))
        assert run.cycles >= coo.nnz / (NUM_CHANNELS * PACK_SIZE)

    def test_bank_conflicts_on_row_clustered_stream(self):
        sim = HiSparseSimulator()
        # All records in one row: every packet serializes fully.
        n = 512
        coo = COOMatrix(
            np.zeros(n, dtype=int), np.arange(n), np.ones(n), (8, n)
        )
        run = sim.run(coo, np.ones(n))
        assert run.conflict_cycles > 0
        # A spread-row matrix of the same size has no conflicts.
        diag = COOMatrix.from_dense(np.eye(n))
        run_diag = sim.run(diag, np.ones(n))
        assert run_diag.conflict_cycles == 0
        assert run.cycles > run_diag.cycles

    def test_window_drives_passes(self):
        small = HiSparseSimulator(vector_window=64)
        coo = g.banded(512, 2, fill=0.9, seed=1)
        run = small.run(coo, np.ones(512))
        assert run.passes == 8
        big = HiSparseSimulator(vector_window=10**6)
        assert big.run(coo, np.ones(512)).passes == 1

    def test_more_passes_cost_cycles(self):
        coo = g.banded(512, 2, fill=0.9, seed=1)
        few = HiSparseSimulator(vector_window=10**6).run(
            coo, np.ones(512)
        )
        many = HiSparseSimulator(vector_window=64).run(
            coo, np.ones(512)
        )
        assert many.cycles > few.cycles

    def test_gflops_accounting(self, sim, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        run = sim.run(coo, np.ones(96))
        assert run.gflops == pytest.approx(
            (2 * coo.nnz + 96) / run.time_s / 1e9
        )


class TestCrossCheck:
    def test_event_sim_bounds_analytic(self):
        analytic = HiSparseModel()
        sim = HiSparseSimulator()
        for make in (
            lambda: g.banded(2048, 4, fill=0.8, seed=0),
            lambda: g.block_diagonal(512, 4, fill=1.0, seed=1),
        ):
            coo = make()
            event = sim.run(coo, np.ones(coo.shape[1])).gflops
            model = analytic.gflops(coo)
            assert event > model
            assert event / model < 30.0
