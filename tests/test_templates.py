"""Tests for templates and portfolios (paper Table V)."""

import pytest

from repro.core.bitmask import full_mask, popcount
from repro.core.templates import (
    CANDIDATE_SPECS,
    MAX_TEMPLATES,
    Portfolio,
    PortfolioError,
    Template,
    antidiag_templates,
    block_templates_8,
    block_templates_aligned,
    block_templates_torus,
    build_portfolio,
    candidate_portfolios,
    col_templates,
    diag_templates,
    row_templates,
    template_universe,
    universe_size,
)


class TestFamilies:
    @pytest.mark.parametrize(
        "family",
        [row_templates, col_templates, diag_templates, antidiag_templates],
    )
    def test_vector_families_have_k_templates(self, family):
        templates = family(4)
        assert len(templates) == 4
        assert all(popcount(t.mask) == 4 for t in templates)

    def test_aligned_blocks(self):
        templates = block_templates_aligned(4)
        assert len(templates) == 4
        union = 0
        for t in templates:
            assert popcount(t.mask) == 4
            union |= t.mask
        assert union == full_mask(4)

    def test_aligned_blocks_need_even_k(self):
        with pytest.raises(PortfolioError):
            block_templates_aligned(3)

    def test_torus_blocks_distinct(self):
        templates = block_templates_torus(4)
        assert len(templates) == 16
        assert len({t.mask for t in templates}) == 16
        assert all(popcount(t.mask) == 4 for t in templates)

    def test_block8(self):
        templates = block_templates_8(4)
        assert len(templates) == 8
        assert len({t.mask for t in templates}) == 8


class TestPortfolioValidation:
    def test_candidate_count(self):
        assert len(candidate_portfolios()) == len(CANDIDATE_SPECS) == 10

    def test_candidates_valid(self):
        for portfolio in candidate_portfolios():
            assert len(portfolio) <= MAX_TEMPLATES
            union = 0
            for template in portfolio:
                assert popcount(template.mask) == 4
                union |= template.mask
            assert union == full_mask(4)

    def test_candidate_names(self):
        names = [p.name for p in candidate_portfolios()]
        assert names == [f"portfolio-{i}" for i in range(10)]

    def test_rejects_empty(self):
        with pytest.raises(PortfolioError):
            Portfolio((), k=4)

    def test_rejects_too_many(self):
        templates = tuple(
            Template(mask, f"t{i}")
            for i, mask in enumerate(template_universe(4))
        )[:17]
        with pytest.raises(PortfolioError):
            Portfolio(templates, k=4)

    def test_rejects_wrong_length_template(self):
        bad = (Template(0b11, "short"),) + tuple(row_templates(4))
        with pytest.raises(PortfolioError):
            Portfolio(bad, k=4)

    def test_rejects_uncovering_set(self):
        with pytest.raises(PortfolioError):
            Portfolio(tuple(diag_templates(4))[:2], k=4)

    def test_rejects_duplicates(self):
        templates = tuple(row_templates(4)) + (row_templates(4)[0],)
        # duplicates but covering; still rejected
        with pytest.raises(PortfolioError):
            Portfolio(templates, k=4)

    def test_masks_property_order(self):
        portfolio = candidate_portfolios()[0]
        assert portfolio.masks == tuple(
            t.mask for t in portfolio.templates
        )

    def test_describe(self):
        text = candidate_portfolios()[0].describe()
        assert "t_idx= 0" in text


class TestBuildPortfolio:
    def test_spec_parsing(self):
        portfolio = build_portfolio("rw+cw")
        assert len(portfolio) == 8

    def test_unknown_family(self):
        with pytest.raises(PortfolioError):
            build_portfolio("rw+nope")

    def test_portfolio0_is_table_v_row0(self):
        portfolio = build_portfolio("rw+cw+bw4+diag")
        kinds = [t.kind for t in portfolio]
        assert kinds.count("RW") == 4
        assert kinds.count("CW") == 4
        assert kinds.count("BW") == 4
        assert kinds.count("DIAG") == 4


class TestUniverse:
    def test_size_1820(self):
        assert universe_size(4) == 1820
        assert len(list(template_universe(4))) == 1820

    def test_all_masks_have_4_cells(self):
        for mask in template_universe(4):
            assert popcount(mask) == 4

    def test_k2_universe(self):
        assert universe_size(2) == len(list(template_universe(2))) == 6


class TestOtherPatternSizes:
    def test_k2_candidates_exist(self):
        portfolios = candidate_portfolios(2)
        assert portfolios
        for p in portfolios:
            assert all(popcount(t.mask) == 2 for t in p)

    def test_k3_candidates_exist(self):
        portfolios = candidate_portfolios(3)
        assert portfolios
        for p in portfolios:
            assert all(popcount(t.mask) == 3 for t in p)
