"""Tests for pattern decomposition (paper Listing 1 + the table solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmask import diag_mask, full_mask, popcount, row_mask
from repro.core.decompose import (
    Decomposition,
    DecompositionError,
    DecompositionTable,
    find_best_decomp,
    greedy_decompose,
)
from repro.core.templates import candidate_portfolios


@pytest.fixture(scope="module")
def portfolio0():
    return candidate_portfolios()[0]


@pytest.fixture(scope="module")
def table0(portfolio0):
    return DecompositionTable(portfolio0)


class TestBruteForce:
    def test_exact_template_match(self):
        templates = [row_mask(r, 4) for r in range(4)]
        subset, padding = find_best_decomp(row_mask(1, 4), templates)
        assert subset == 0b0010
        assert padding == 0

    def test_single_cell_costs_3(self):
        templates = [row_mask(r, 4) for r in range(4)]
        __, padding = find_best_decomp(1, templates)
        assert padding == 3

    def test_full_grid_costs_0(self):
        templates = [row_mask(r, 4) for r in range(4)]
        subset, padding = find_best_decomp(full_mask(4), templates)
        assert subset == 0b1111
        assert padding == 0

    def test_prefers_fewer_templates(self):
        # pattern = main diagonal; diag template matches exactly, rows
        # would cost 12 paddings.
        templates = [row_mask(r, 4) for r in range(4)] + [diag_mask(0, 4)]
        subset, padding = find_best_decomp(diag_mask(0, 4), templates)
        assert subset == 0b10000
        assert padding == 0

    def test_uncoverable_raises(self):
        with pytest.raises(DecompositionError):
            find_best_decomp(1 << 15, [row_mask(0, 4)])

    def test_empty_pattern(self):
        subset, padding = find_best_decomp(0, [row_mask(0, 4)])
        assert subset == 0
        assert padding == 0

    def test_overlap_counted_as_padding(self):
        # pattern needs row 0 and column 0; they overlap at cell (0,0).
        from repro.core.bitmask import col_mask

        pattern = row_mask(0, 4) | col_mask(0, 4)
        templates = [row_mask(0, 4), col_mask(0, 4)]
        __, padding = find_best_decomp(pattern, templates)
        assert padding == 1  # 8 slots for 7 distinct cells


class TestTableSolver:
    def test_matches_brute_force_on_small_set(self):
        templates = [row_mask(0, 4), row_mask(1, 4), diag_mask(0, 4),
                     diag_mask(2, 4)]
        table = DecompositionTable(templates, k=4)
        rng = np.random.default_rng(0)
        coverable_union = 0
        for t in templates:
            coverable_union |= t
        for __ in range(200):
            pattern = int(rng.integers(0, 1 << 16)) & coverable_union
            expected = find_best_decomp(pattern, templates)[1] if pattern else 0
            assert table.padding(pattern) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=0xFFFF))
    def test_matches_brute_force_portfolio4(self, pattern):
        portfolio = candidate_portfolios()[4]
        table = DecompositionTable(portfolio)
        __, expected = find_best_decomp(pattern, portfolio.masks)
        assert table.padding(pattern) == expected

    def test_all_patterns_coverable_by_candidates(self):
        for portfolio in candidate_portfolios():
            table = DecompositionTable(portfolio)
            pads = table.padding_array(np.arange(1, 1 << 16))
            assert np.all(pads >= 0)

    def test_padding_formula(self, table0):
        # For fixed-length-4 templates: padding = 4*n_templates - |p|.
        decomp = table0.decompose(0b1)
        assert decomp.padding == 4 * len(decomp.template_ids) - 1

    def test_decompose_covers_pattern(self, portfolio0, table0):
        rng = np.random.default_rng(3)
        for __ in range(100):
            pattern = int(rng.integers(1, 1 << 16))
            decomp = table0.decompose(pattern)
            union = 0
            for t_idx in decomp.template_ids:
                union |= portfolio0.masks[t_idx]
            assert pattern & ~union == 0

    def test_empty_pattern(self, table0):
        decomp = table0.decompose(0)
        assert decomp.template_ids == ()
        assert decomp.padding == 0

    def test_subset_array_empty_is_zero(self, table0):
        assert table0.subset_array(np.array([0]))[0] == 0

    def test_uncoverable_raises(self):
        table = DecompositionTable([row_mask(0, 4)], k=4)
        with pytest.raises(DecompositionError):
            table.padding(1 << 15)
        with pytest.raises(DecompositionError):
            table.padding_array(np.array([1 << 15]))
        assert not table.coverable(1 << 15)
        assert table.coverable(0b1111)

    def test_rejects_empty_template_set(self):
        with pytest.raises(DecompositionError):
            DecompositionTable([], k=4)

    def test_total_padding_weighted(self, table0):
        histogram = {0b1: 10, full_mask(4): 2}
        expected = 10 * table0.padding(0b1) + 2 * table0.padding(
            full_mask(4)
        )
        assert table0.total_padding(histogram.items()) == expected

    def test_total_padding_empty(self, table0):
        assert table0.total_padding([]) == 0

    def test_k2(self):
        portfolio = candidate_portfolios(2)[0]
        table = DecompositionTable(portfolio)
        assert table.padding(0b1) == 1  # one 2-cell template, 1 pad

    def test_padding_array_matches_scalar(self, table0):
        patterns = np.arange(1, 512)
        pads = table0.padding_array(patterns)
        for i in (0, 100, 510):
            assert pads[i] == table0.padding(int(patterns[i]))


class TestGreedy:
    def test_greedy_at_least_optimal(self, portfolio0, table0):
        rng = np.random.default_rng(5)
        for __ in range(100):
            pattern = int(rng.integers(1, 1 << 16))
            greedy = greedy_decompose(pattern, portfolio0.masks)
            assert greedy.padding >= table0.padding(pattern)

    def test_greedy_covers(self, portfolio0):
        pattern = 0b1010_0101_1010_0101
        decomp = greedy_decompose(pattern, portfolio0.masks)
        union = 0
        for t_idx in decomp.template_ids:
            union |= portfolio0.masks[t_idx]
        assert pattern & ~union == 0

    def test_greedy_uncoverable(self):
        with pytest.raises(DecompositionError):
            greedy_decompose(1 << 15, [row_mask(0, 4)])


class TestDecompositionDataclass:
    def test_subset_bitmask(self):
        decomp = Decomposition(0b1, (0, 2), 3)
        assert decomp.subset == 0b101
