"""Tests for global composition analysis (step ④)."""

import numpy as np
import pytest

from repro.core import DecompositionTable, candidate_portfolios
from repro.core.format import encode_spasm, groups_per_submatrix
from repro.core.patterns import submatrix_masks
from repro.core.tiling import (
    TilingError,
    extract_global_composition,
    partition_loads,
    validate_tile_size,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def table():
    return DecompositionTable(candidate_portfolios()[0])


def make_gc(coo, table, tile_size):
    counts, keys = groups_per_submatrix(coo, table)
    return extract_global_composition(coo, counts, keys, tile_size)


class TestValidateTileSize:
    def test_accepts_multiples_of_k(self):
        assert validate_tile_size(1024) == 1024

    def test_rejects_non_multiple(self):
        with pytest.raises(TilingError):
            validate_tile_size(30)

    def test_rejects_too_small(self):
        with pytest.raises(TilingError):
            validate_tile_size(0)

    def test_rejects_over_budget(self):
        with pytest.raises(TilingError):
            validate_tile_size(2**13 * 4 + 4)

    def test_max_allowed(self):
        assert validate_tile_size(2**13 * 4) == 32768


class TestGlobalComposition:
    def test_counts_match_encoding(self, rng, table):
        coo = random_structured_coo(rng, 96, "mixed")
        gc = make_gc(coo, table, 32)
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32, table)
        assert gc.n_tiles == spasm.n_tiles
        assert np.array_equal(gc.tile_rows, spasm.tile_rows)
        assert np.array_equal(gc.tile_cols, spasm.tile_cols)
        assert np.array_equal(
            gc.groups_per_tile, spasm.groups_per_tile()
        )

    def test_nnz_conserved(self, rng, table):
        coo = random_structured_coo(rng, 96, "mixed")
        gc = make_gc(coo, table, 16)
        assert gc.total_nnz == coo.nnz

    def test_tile_grid_dims(self, table):
        coo = COOMatrix([0], [0], [1.0], (100, 70))
        gc = make_gc(coo, table, 32)
        assert gc.n_tile_rows == 4
        assert gc.n_tile_cols == 3

    def test_occupancy_block_diag(self, block_diag_coo, table):
        gc = make_gc(block_diag_coo, table, 16)
        # Only diagonal tiles occupied: 4 of 16.
        assert gc.n_tiles == 4
        assert gc.occupancy() == pytest.approx(4 / 16)

    def test_tiles_in_row(self, block_diag_coo, table):
        gc = make_gc(block_diag_coo, table, 16)
        assert gc.tiles_in_row().tolist() == [1, 1, 1, 1]

    def test_groups_in_row_sums_to_total(self, rng, table):
        coo = random_structured_coo(rng, 96, "mixed")
        gc = make_gc(coo, table, 16)
        assert gc.groups_in_row().sum() == gc.total_groups

    def test_stream_order_row_major(self, rng, table):
        coo = random_structured_coo(rng, 96, "mixed")
        gc = make_gc(coo, table, 16)
        keys = gc.tile_rows * gc.n_tile_cols + gc.tile_cols
        assert np.all(np.diff(keys) > 0)


class TestImbalance:
    def test_balanced_matrix(self, table):
        coo = g.diagonal_stripes(256, (0,), fill=1.0, seed=0)
        gc = make_gc(coo, table, 16)
        assert gc.imbalance(4) == pytest.approx(1.0)

    def test_imbalanced_matrix(self, table):
        coo = g.dense_rows(256, 4, row_fill=1.0, seed=0)
        gc = make_gc(coo, table, 8)
        assert gc.imbalance(8) > 2.0

    def test_partition_loads_conserves(self):
        loads = partition_loads(np.array([5, 3, 2, 7, 1]), 2)
        assert loads.sum() == 18
        assert loads.tolist() == [5 + 2 + 1, 3 + 7]

    def test_partition_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            partition_loads(np.array([1]), 0)


class TestTileSizeIndependence:
    def test_total_groups_constant_across_tile_sizes(self, rng, table):
        # Decomposition is tile-size independent (the Algorithm 4 fast
        # path relies on this).
        coo = random_structured_coo(rng, 128, "mixed")
        totals = {
            ts: make_gc(coo, table, ts).total_groups
            for ts in (16, 32, 64, 128)
        }
        assert len(set(totals.values())) == 1

    def test_groups_match_submatrix_masks(self, rng, table):
        coo = random_structured_coo(rng, 64, "mixed")
        counts, keys = groups_per_submatrix(coo, table)
        masks, keys2 = submatrix_masks(coo)
        assert np.array_equal(keys, keys2)
        assert counts.size == masks.size
