"""Matrix Market I/O tests."""

import numpy as np
import pytest

from repro.matrix import COOMatrix, read_matrix_market, write_matrix_market
from repro.matrix.io import MatrixMarketError


class TestRoundtrip:
    def test_write_read(self, tmp_path, small_coo):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, small_coo)
        back = read_matrix_market(path)
        assert back.shape == small_coo.shape
        assert np.array_equal(back.to_dense(), small_coo.to_dense())

    def test_empty_matrix(self, tmp_path):
        path = tmp_path / "empty.mtx"
        write_matrix_market(path, COOMatrix([], [], [], (3, 4)))
        back = read_matrix_market(path)
        assert back.shape == (3, 4)
        assert back.nnz == 0


class TestParsing:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        m = read_matrix_market(path)
        assert np.array_equal(m.to_dense(), np.eye(2))

    def test_integer_field(self, tmp_path):
        path = tmp_path / "i.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "1 1 1\n1 1 7\n"
        )
        assert read_matrix_market(path).vals[0] == 7.0

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 1.0\n2 1 5.0\n"
        )
        dense = read_matrix_market(path).to_dense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 5.0
        assert dense[0, 0] == 1.0

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 2.5\n"
        )
        assert read_matrix_market(path).vals[0] == 2.5


class TestErrors:
    def test_missing_banner(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 1\n1 1 1.0\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_unsupported_layout(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate complex general\n"
        )
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_bad_size_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2\n"
        )
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)
