"""Property tests over random portfolios and random matrices.

These stress the invariants the rest of the suite checks on the Table V
candidates, against *arbitrary* valid portfolios drawn from the
1820-template universe — the "flexible pattern portfolio" claim of the
paper's title.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DecompositionTable,
    analyze_local_patterns,
    encode_spasm,
)
from repro.core.bitmask import full_mask, popcount
from repro.core.decompose import find_best_decomp
from repro.core.templates import Portfolio, Template, template_universe
from repro.hw.opcode import encode_opcode, opcode_for_template
from repro.hw.valu import VALU, VALUOp
from repro.matrix import COOMatrix

UNIVERSE = list(template_universe(4))


@st.composite
def random_portfolios(draw, max_extra=12):
    """A valid random portfolio: random universe templates + coverage.

    Up to ``max_extra`` random templates are drawn; whatever cells stay
    uncovered are patched with row templates, and duplicates collapse.
    """
    from repro.core.templates import row_templates

    count = draw(st.integers(1, max_extra))
    indices = draw(
        st.lists(
            st.integers(0, len(UNIVERSE) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    masks = [UNIVERSE[i] for i in indices]
    union = 0
    for m in masks:
        union |= m
    for t in row_templates(4):
        if len(masks) >= 16:
            break
        if t.mask & ~union and t.mask not in masks:
            masks.append(t.mask)
            union |= t.mask
    # Ensure full coverage survives the 16-template cap.
    if union != full_mask(4):
        masks = [t.mask for t in row_templates(4)] + masks
        masks = list(dict.fromkeys(masks))[:16]
    templates = tuple(
        Template(mask, f"R{i}") for i, mask in enumerate(masks)
    )
    return Portfolio(templates, k=4, name="random")


@st.composite
def random_matrices(draw, max_dim=48):
    n = draw(st.integers(8, max_dim))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((n, n)) < 0.15, rng.uniform(0.5, 1.5, (n, n)), 0.0
    )
    dense[0, 0] = 1.0
    return COOMatrix.from_dense(dense)


class TestPortfolioInvariants:
    @settings(max_examples=30, deadline=None)
    @given(random_portfolios())
    def test_all_patterns_coverable(self, portfolio):
        table = DecompositionTable(portfolio)
        pads = table.padding_array(np.arange(1, 1 << 16))
        assert np.all(pads >= 0)

    @settings(max_examples=20, deadline=None)
    @given(random_portfolios(), st.integers(1, 0xFFFF))
    def test_table_matches_brute_force(self, portfolio, pattern):
        table = DecompositionTable(portfolio)
        __, expected = find_best_decomp(pattern, portfolio.masks)
        assert table.padding(pattern) == expected

    @settings(max_examples=30, deadline=None)
    @given(random_portfolios())
    def test_opcodes_route_every_template(self, portfolio):
        rng = np.random.default_rng(0)
        valu = VALU()
        for mask in portfolio.masks:
            opcode = encode_opcode(opcode_for_template(mask))
            values = rng.uniform(-2, 2, 4)
            x_seg = rng.uniform(-2, 2, 4)
            out = valu.execute(VALUOp(opcode, values, x_seg))
            expected = np.zeros(4)
            from repro.core.bitmask import coords_from_mask

            for lane, (r, c) in enumerate(coords_from_mask(mask, 4)):
                expected[r] += values[lane] * x_seg[c]
            assert np.allclose(out, expected)


class TestEncodingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(random_portfolios(), random_matrices())
    def test_roundtrip_any_portfolio(self, portfolio, coo):
        spasm = encode_spasm(coo, portfolio, 16)
        assert np.array_equal(
            spasm.to_coo().to_dense(), coo.to_dense()
        )

    @settings(max_examples=20, deadline=None)
    @given(random_portfolios(), random_matrices())
    def test_spmv_any_portfolio(self, portfolio, coo):
        spasm = encode_spasm(coo, portfolio, 16)
        rng = np.random.default_rng(1)
        x = rng.random(coo.shape[1])
        assert np.allclose(spasm.spmv(x), coo.spmv(x))

    @settings(max_examples=20, deadline=None)
    @given(random_portfolios(), random_matrices())
    def test_padding_accounting(self, portfolio, coo):
        spasm = encode_spasm(coo, portfolio, 16)
        table = DecompositionTable(portfolio)
        hist = analyze_local_patterns(coo)
        assert spasm.padding == table.total_padding(hist)
        assert spasm.stored_values == spasm.n_groups * 4
        assert spasm.padding == spasm.stored_values - coo.nnz

    @settings(max_examples=15, deadline=None)
    @given(random_matrices(), st.sampled_from([16, 32, 64]))
    def test_tile_size_does_not_change_groups(self, coo, tile_size):
        from repro.core import candidate_portfolios

        portfolio = candidate_portfolios()[0]
        a = encode_spasm(coo, portfolio, 16)
        b = encode_spasm(coo, portfolio, tile_size)
        assert a.n_groups == b.n_groups
        assert a.padding == b.padding


class TestHistogramInvariant:
    @settings(max_examples=25, deadline=None)
    @given(random_matrices())
    def test_nnz_conservation(self, coo):
        hist = analyze_local_patterns(coo)
        recovered = int(
            sum(popcount(p) * f for p, f in hist.items())
        )
        assert recovered == coo.nnz
