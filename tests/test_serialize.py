"""Tests for SPASM matrix persistence."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.core.serialize import (
    SerializationError,
    load_spasm,
    save_spasm,
)
from tests.conftest import random_structured_coo


@pytest.fixture
def spasm(rng):
    coo = random_structured_coo(rng, 64, "mixed")
    return coo, encode_spasm(coo, candidate_portfolios()[3], 32)


class TestRoundtrip:
    def test_payload_identical(self, tmp_path, spasm):
        coo, original = spasm
        path = tmp_path / "m.npz"
        save_spasm(path, original)
        loaded = load_spasm(path)
        assert loaded.shape == original.shape
        assert loaded.k == original.k
        assert loaded.tile_size == original.tile_size
        assert loaded.source_nnz == original.source_nnz
        assert np.array_equal(loaded.words, original.words)
        assert np.array_equal(loaded.values, original.values)
        assert np.array_equal(loaded.tile_ptr, original.tile_ptr)

    def test_portfolio_restored(self, tmp_path, spasm):
        __, original = spasm
        path = tmp_path / "m.npz"
        save_spasm(path, original)
        loaded = load_spasm(path)
        assert loaded.portfolio.masks == original.portfolio.masks
        assert loaded.portfolio.name == original.portfolio.name
        assert [t.kind for t in loaded.portfolio] == [
            t.kind for t in original.portfolio
        ]

    def test_loaded_matrix_computes(self, tmp_path, spasm, rng):
        coo, original = spasm
        path = tmp_path / "m.npz"
        save_spasm(path, original)
        loaded = load_spasm(path)
        x = rng.random(coo.shape[1])
        assert np.allclose(loaded.spmv(x), coo.spmv(x))

    def test_loaded_matrix_simulates(self, tmp_path, spasm, rng):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        coo, original = spasm
        path = tmp_path / "m.npz"
        save_spasm(path, original)
        loaded = load_spasm(path)
        x = rng.random(coo.shape[1])
        result = SpasmAccelerator(SPASM_4_1).run(loaded, x)
        assert np.allclose(result.y, coo.spmv(x))

    def test_empty_matrix(self, tmp_path):
        from repro.matrix import COOMatrix

        empty = encode_spasm(
            COOMatrix([], [], [], (16, 16)), candidate_portfolios()[0], 16
        )
        path = tmp_path / "empty.npz"
        save_spasm(path, empty)
        assert load_spasm(path).n_groups == 0


class TestErrors:
    def test_rejects_random_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SerializationError):
            load_spasm(path)

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, magic=np.array("not-spasm"))
        with pytest.raises(SerializationError):
            load_spasm(path)
