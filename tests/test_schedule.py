"""Tests for workload schedule exploration (paper Algorithm 4)."""

import pytest

from repro.core import DecompositionTable, candidate_portfolios
from repro.core.format import groups_per_submatrix
from repro.core.schedule import explore_schedule
from repro.core.tiling import TilingError, extract_global_composition
from repro.hw.configs import DEFAULT_CONFIGS, SPASM_3_4, SPASM_4_1
from repro.hw.perf_model import perf_model
from repro.synth import generators as g
from tests.conftest import random_structured_coo


def factory_for(coo, table):
    counts, keys = groups_per_submatrix(coo, table)

    def factory(tile_size):
        return extract_global_composition(coo, counts, keys, tile_size)

    return factory


@pytest.fixture(scope="module")
def table():
    return DecompositionTable(candidate_portfolios()[0])


class TestExploreSchedule:
    def test_best_is_minimum(self, rng, table):
        coo = random_structured_coo(rng, 256, "mixed")
        result = explore_schedule(
            factory_for(coo, table), DEFAULT_CONFIGS, perf_model,
            tile_sizes=(64, 128, 256),
        )
        assert result.best.cycles == min(p.cycles for p in result.points)

    def test_sweeps_all_points(self, rng, table):
        coo = random_structured_coo(rng, 256, "mixed")
        result = explore_schedule(
            factory_for(coo, table), DEFAULT_CONFIGS, perf_model,
            tile_sizes=(64, 128),
        )
        assert len(result.points) == 2 * len(DEFAULT_CONFIGS)

    def test_accessors(self, rng, table):
        coo = random_structured_coo(rng, 256, "mixed")
        result = explore_schedule(
            factory_for(coo, table), [SPASM_4_1], perf_model,
            tile_sizes=(64,),
        )
        assert result.best_tile_size == 64
        assert result.best_hw_config is SPASM_4_1
        assert result.best_cycles > 0
        assert "SPASM_4_1" in result.best.label

    def test_improvement_over_baseline(self, rng, table):
        coo = random_structured_coo(rng, 256, "mixed")
        result = explore_schedule(
            factory_for(coo, table), DEFAULT_CONFIGS, perf_model,
            tile_sizes=(64, 128, 256),
        )
        imp = result.improvement_over(64, DEFAULT_CONFIGS[0])
        assert imp >= 1.0

    def test_improvement_over_unknown_point(self, rng, table):
        coo = random_structured_coo(rng, 256, "mixed")
        result = explore_schedule(
            factory_for(coo, table), [SPASM_4_1], perf_model,
            tile_sizes=(64,),
        )
        with pytest.raises(KeyError):
            result.improvement_over(999, SPASM_4_1)

    def test_skips_invalid_tile_sizes(self, rng, table):
        coo = random_structured_coo(rng, 128, "mixed")

        def factory(tile_size):
            if tile_size > 64:
                raise TilingError("too big for test")
            return factory_for(coo, table)(tile_size)

        result = explore_schedule(
            factory, [SPASM_4_1], perf_model, tile_sizes=(32, 64, 128)
        )
        sizes = {p.tile_size for p in result.points}
        assert sizes == {32, 64}

    def test_all_invalid_raises(self, rng, table):
        def factory(tile_size):
            raise TilingError("nothing fits")

        with pytest.raises(ValueError):
            explore_schedule(
                factory, [SPASM_4_1], perf_model, tile_sizes=(32,)
            )

    def test_empty_configs_raises(self, rng, table):
        coo = random_structured_coo(rng, 64, "mixed")
        with pytest.raises(ValueError):
            explore_schedule(
                factory_for(coo, table), [], perf_model, tile_sizes=(32,)
            )

    def test_custom_perf_model_injected(self, rng, table):
        # A model preferring the largest tile must steer the choice.
        coo = random_structured_coo(rng, 256, "mixed")

        def prefer_large(gc, hw, tile_size):
            return 1e9 / tile_size

        result = explore_schedule(
            factory_for(coo, table), [SPASM_4_1], prefer_large,
            tile_sizes=(64, 128, 256),
        )
        assert result.best_tile_size == 256


class TestScheduleShape:
    def test_imbalanced_prefers_smaller_tiles(self, table):
        # A matrix whose rows concentrate into one stripe: big tiles put
        # everything on few PEs.
        coo = g.dense_rows(512, 6, row_fill=0.9, seed=0)
        result = explore_schedule(
            factory_for(coo, table), [SPASM_4_1], perf_model,
            tile_sizes=(16, 512),
        )
        assert result.best_tile_size == 16
