"""Tests for the VALU datapath model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmask import coords_from_mask
from repro.core.templates import template_universe
from repro.hw.opcode import encode_opcode, opcode_for_template
from repro.hw.valu import VALU, VALUOp


def reference(mask, values, x_segment):
    out = np.zeros(4)
    for lane, (r, c) in enumerate(coords_from_mask(mask, 4)):
        out[r] += values[lane] * x_segment[c]
    return out


def run_template(mask, values, x_segment):
    valu = VALU()
    word = encode_opcode(opcode_for_template(mask))
    return valu.execute(
        VALUOp(word, np.asarray(values), np.asarray(x_segment))
    )


class TestRoutingCorrectness:
    def test_every_universe_template_once(self, rng):
        # One random operand set for each of the 1820 templates: the
        # decoded datapath must reproduce the template semantics exactly.
        for mask in template_universe(4):
            values = rng.uniform(-2, 2, 4)
            x_segment = rng.uniform(-2, 2, 4)
            out = run_template(mask, values, x_segment)
            assert np.allclose(out, reference(mask, values, x_segment)), (
                f"template {mask:#06x}"
            )

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 1819),
        st.lists(st.floats(-10, 10), min_size=4, max_size=4),
        st.lists(st.floats(-10, 10), min_size=4, max_size=4),
    )
    def test_random_operands(self, index, values, x_segment):
        masks = list(template_universe(4))
        mask = masks[index]
        out = run_template(mask, values, x_segment)
        assert np.allclose(out, reference(mask, values, x_segment))

    def test_padding_values_vanish(self, rng):
        # Zero value slots contribute nothing regardless of x.
        from repro.core.bitmask import row_mask

        out = run_template(
            row_mask(0, 4), [0.0, 0.0, 0.0, 0.0], rng.uniform(-5, 5, 4)
        )
        assert np.allclose(out, 0.0)


class TestAccounting:
    def test_cycle_counting(self, rng):
        from repro.core.bitmask import diag_mask

        valu = VALU()
        word = encode_opcode(opcode_for_template(diag_mask(0, 4)))
        for __ in range(7):
            valu.execute(VALUOp(word, np.ones(4), np.ones(4)))
        assert valu.cycles == 7
        assert valu.mul_ops == 28

    def test_rejects_bad_operand_width(self):
        from repro.core.bitmask import diag_mask

        valu = VALU()
        word = encode_opcode(opcode_for_template(diag_mask(0, 4)))
        with pytest.raises(ValueError):
            valu.execute(VALUOp(word, np.ones(3), np.ones(4)))
