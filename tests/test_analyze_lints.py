"""Tests for the AST determinism/safety lint (``repro.analyze.lints``).

Each lint rule is exercised through :func:`lint_source` on small
fixture modules — including the acceptance case of a deliberately
unseeded ``np.random`` call being detected — plus the baseline
burndown arithmetic and the repository's own self-lint staying clean
against the checked-in baseline.
"""

import textwrap

from repro.analyze import (
    LINT_IDS,
    LintFinding,
    diff_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    self_lint,
    write_baseline,
)


def lint(source, relpath="repro/core/fake.py"):
    return lint_source(textwrap.dedent(source), relpath)


def ids(findings):
    return [f.lint_id for f in findings]


class TestUnseededRng:
    def test_unseeded_default_rng_detected(self):
        findings = lint("""
            import numpy as np

            def sample():
                return np.random.default_rng().random(4)
        """)
        assert ids(findings) == ["det.unseeded-rng"]
        assert "without a seed" in findings[0].message
        assert findings[0].symbol == "sample"

    def test_seeded_default_rng_clean(self):
        assert lint("""
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).random(4)
        """) == []

    def test_global_state_functions_always_flagged(self):
        findings = lint("""
            import numpy as np

            def noisy():
                np.random.seed(0)
                return np.random.rand(3)
        """)
        assert ids(findings) == ["det.unseeded-rng"] * 2
        assert "hidden global state" in findings[0].message

    def test_stdlib_random_flagged_seeded_instance_ok(self):
        findings = lint("""
            import random

            def roll():
                private = random.Random(7)
                entropy = random.SystemRandom()
                return random.randint(0, 6)
        """)
        assert ids(findings) == ["det.unseeded-rng"]
        assert "random.randint" in findings[0].message

    def test_import_alias_resolved(self):
        findings = lint("""
            from numpy.random import default_rng as mk

            def sample():
                return mk()
        """)
        assert ids(findings) == ["det.unseeded-rng"]


class TestKernelClock:
    def test_clock_inside_kernel_body(self):
        findings = lint("""
            import time

            class Plan:
                def spmv(self, x):
                    t0 = time.perf_counter()
                    return x, t0
        """)
        assert ids(findings) == ["det.kernel-clock"]
        assert "'spmv'" in findings[0].message

    def test_clock_outside_kernel_is_fine(self):
        assert lint("""
            import time

            def bench(step):
                t0 = time.perf_counter()
                step()
                return time.perf_counter() - t0
        """) == []


class TestAdhocPool:
    def test_pool_outside_helper_flagged(self):
        findings = lint("""
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(tasks):
                with ThreadPoolExecutor(4) as pool:
                    return list(pool.map(str, tasks))
        """)
        assert ids(findings) == ["det.adhoc-pool"]
        assert "one-pool invariant" in findings[0].message

    def test_shared_helper_site_sanctioned(self):
        assert lint("""
            from concurrent.futures import ThreadPoolExecutor

            def _pool(jobs):
                return ThreadPoolExecutor(jobs)
        """, relpath="repro/exec/plan.py") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        findings = lint("""
            def risky():
                try:
                    return 1
                except:
                    return 0
        """)
        assert ids(findings) == ["det.bare-except"]

    def test_typed_except_clean(self):
        assert lint("""
            def risky():
                try:
                    return 1
                except (ValueError, KeyError):
                    return 0
        """) == []


class TestImplicitDtype:
    EXEC = "repro/exec/fake.py"

    def test_asarray_without_dtype_in_exec(self):
        findings = lint("""
            import numpy as np

            def ingest(x):
                return np.asarray(x)
        """, relpath=self.EXEC)
        assert ids(findings) == ["exec.implicit-dtype"]

    def test_dtype_kwarg_clean(self):
        assert lint("""
            import numpy as np

            def ingest(x):
                return np.asarray(x, dtype=np.float64)
        """, relpath=self.EXEC) == []

    def test_outside_exec_not_checked(self):
        assert lint("""
            import numpy as np

            def ingest(x):
                return np.asarray(x)
        """, relpath="repro/core/fake.py") == []


class TestRawKernel:
    def test_sparsetools_reference_outside_plan_module(self):
        findings = lint("""
            from scipy.sparse import _sparsetools

            def fast(args):
                return _sparsetools.csr_matvec(*args)
        """)
        assert set(ids(findings)) == {"exec.raw-kernel"}
        assert any("validate()" in f.message for f in findings)

    def test_kernel_module_itself_sanctioned(self):
        assert lint("""
            from scipy.sparse import _sparsetools

            def dispatch(args):
                return _sparsetools.csr_matvec(*args)
        """, relpath="repro/exec/backends/csr.py") == []

    def test_plan_module_no_longer_sanctioned(self):
        """The backend split moved the kernel sanction off plan.py."""
        findings = lint("""
            from scipy.sparse import _sparsetools

            def dispatch(args):
                return _sparsetools.csr_matvec(*args)
        """, relpath="repro/exec/plan.py")
        assert "exec.raw-kernel" in ids(findings)


class TestPlanKernel:
    PLAN = "repro/exec/plan.py"

    def test_kernel_math_in_plan_module_flagged(self):
        findings = lint("""
            import numpy as np

            def dispatch(plan, x):
                gathered = np.take(x, plan.cols)
                return np.bincount(plan.rows, weights=gathered)
        """, relpath=self.PLAN)
        assert ids(findings) == ["exec.plan-kernel"] * 2
        assert "belong to a backend" in findings[0].message

    def test_model_numpy_in_plan_module_clean(self):
        assert lint("""
            import numpy as np

            def shard_bounds(n, jobs):
                return np.zeros(jobs + 1, dtype=np.int64), n
        """, relpath=self.PLAN) == []

    def test_backend_modules_not_checked(self):
        assert lint("""
            import numpy as np

            def spmv(plan, x):
                gathered = np.take(x, plan.cols)
                return np.bincount(plan.rows, weights=gathered)
        """, relpath="repro/exec/backends/gather.py") == []


class TestSuppression:
    def test_inline_allow_silences_one_rule(self):
        findings = lint("""
            import numpy as np

            def sample():
                return np.random.default_rng().random(4)  # lint: allow(det.unseeded-rng)
        """)
        assert findings == []

    def test_allow_all(self):
        assert lint("""
            def risky():
                try:
                    return 1
                except:  # lint: allow(all)
                    return 0
        """) == []

    def test_allow_for_other_rule_does_not_silence(self):
        findings = lint("""
            import numpy as np

            def sample():
                return np.random.default_rng().random(4)  # lint: allow(det.bare-except)
        """)
        assert ids(findings) == ["det.unseeded-rng"]


class TestUnusedPublic:
    def write_project(self, tmp_path, files):
        root = tmp_path / "repro"
        root.mkdir()
        paths = []
        for name, body in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(body))
            paths.append(str(path))
        return paths, str(root)

    def test_dead_public_def_flagged(self, tmp_path):
        paths, root = self.write_project(tmp_path, {
            "a.py": """
                def used():
                    return 1

                def dead():
                    return 2
            """,
            "b.py": """
                from repro.a import used
            """,
        })
        findings = lint_paths(paths, root)
        assert [
            (f.lint_id, f.symbol) for f in findings
        ] == [("api.unused-public", "dead")]
        assert findings[0].path == "repro/a.py"

    def test_init_reexport_does_not_count(self, tmp_path):
        paths, root = self.write_project(tmp_path, {
            "a.py": """
                def exported_only():
                    return 1
            """,
            "__init__.py": """
                from repro.a import exported_only
            """,
        })
        findings = lint_paths(paths, root)
        assert [f.symbol for f in findings] == ["exported_only"]

    def test_experimental_list_sanctions(self, tmp_path):
        paths, root = self.write_project(tmp_path, {
            "a.py": """
                __experimental__ = ["prototype"]

                def prototype():
                    return 1
            """,
        })
        assert lint_paths(paths, root) == []

    def test_syntax_error_becomes_finding(self, tmp_path):
        paths, root = self.write_project(tmp_path, {
            "a.py": "def broken(:\n",
        })
        findings = lint_paths(paths, root)
        assert len(findings) == 1
        assert "does not parse" in findings[0].message


class TestBaseline:
    def finding(self, n=0):
        return LintFinding(
            "det.bare-except", "repro/x.py", 10 + n, "f", "msg"
        )

    def test_roundtrip_and_counts(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([self.finding(0), self.finding(1)], path)
        baseline = load_baseline(path)
        assert baseline == {self.finding().key: 2}

    def test_diff_new_and_fixed(self):
        known = self.finding()
        other = LintFinding(
            "det.unseeded-rng", "repro/y.py", 3, "g", "other"
        )
        baseline = {known.key: 1, "gone|repro/z.py|h|old": 1}
        new, fixed = diff_baseline([known, other], baseline)
        assert new == [other]
        assert fixed == ["gone|repro/z.py|h|old"]

    def test_second_instance_is_new(self):
        known = self.finding(0)
        dup = self.finding(1)  # same key, different line
        new, fixed = diff_baseline([known, dup], {known.key: 1})
        assert new == [dup] and fixed == []

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "none.json")) == {}

    def test_key_excludes_line_number(self):
        assert self.finding(0).key == self.finding(5).key


class TestSelfLint:
    def test_repo_is_clean_against_baseline(self):
        """The acceptance gate: the library carries no lint findings
        beyond the checked-in burndown baseline."""
        new, __ = diff_baseline(self_lint(), load_baseline())
        assert new == [], "\n".join(f.render() for f in new)

    def test_baseline_has_no_stale_entries(self):
        __, fixed = diff_baseline(self_lint(), load_baseline())
        assert fixed == [], (
            "baseline entries fixed — regenerate the baseline: "
            f"{fixed}"
        )

    def test_lint_ids_cover_all_findings(self):
        assert all(
            f.lint_id in LINT_IDS for f in self_lint()
        )
