"""Tests for the pass-based compilation pipeline (repro.pipeline)."""

import json

import numpy as np
import pytest

from repro.core import SpasmCompiler, candidate_portfolios
from repro.core.framework import PreprocessReport
from repro.hw import SPASM_3_4, SPASM_4_1
from repro.pipeline import (
    ArtifactError,
    ArtifactStore,
    CompilerPass,
    DecompositionPass,
    PipelineError,
    PipelineRunner,
    PipelineTrace,
    StageEvent,
)
from tests.conftest import random_structured_coo

TILE_SIZES = (16, 32, 64)


@pytest.fixture(scope="module")
def compiler():
    return SpasmCompiler(tile_sizes=TILE_SIZES)


@pytest.fixture(scope="module")
def program(compiler):
    rng = np.random.default_rng(7)
    return compiler.compile(random_structured_coo(rng, 96, "mixed"))


class TestArtifactStore:
    def test_put_get_roundtrip(self, small_coo):
        store = ArtifactStore()
        store.put("coo", small_coo)
        assert store.get("coo") is small_coo
        assert store.require("coo") is small_coo
        assert store.has("coo")
        assert store.names() == ("coo",)

    def test_unknown_name_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact"):
            ArtifactStore().put("nonsense", 1)

    def test_type_mismatch_rejected(self):
        with pytest.raises(ArtifactError, match="expects"):
            ArtifactStore().put("tile_size", "sixteen")

    def test_require_missing(self):
        with pytest.raises(ArtifactError, match="not been produced"):
            ArtifactStore().require("histogram")

    def test_summarize_is_scalar_sized(self, small_coo):
        store = ArtifactStore()
        store.put("coo", small_coo)
        store.put("masks", np.arange(5))
        store.put("tile_size", 32)
        summary = store.summarize(("coo", "masks", "tile_size", "spasm"))
        assert summary["coo"] == {
            "shape": list(small_coo.shape), "nnz": small_coo.nnz
        }
        assert summary["masks"] == 5
        assert summary["tile_size"] == 32
        assert "spasm" not in summary  # absent artifacts are skipped


class TestRunnerContracts:
    def test_missing_requires_raises(self, small_coo):
        store = ArtifactStore()
        store.put("coo", small_coo)
        with pytest.raises(PipelineError, match="requires artifacts"):
            PipelineRunner().run([DecompositionPass(4)], store)

    def test_undelivered_provides_raises(self, small_coo):
        class LazyPass(CompilerPass):
            name = "analysis"
            requires = ("coo",)
            provides = ("masks",)

            def run(self, store):
                return "forgot to produce masks"

        store = ArtifactStore()
        store.put("coo", small_coo)
        with pytest.raises(PipelineError, match="did not produce"):
            PipelineRunner().run([LazyPass()], store)

    def test_build_passes_default_sequence(self, compiler):
        names = [p.name for p in compiler.build_passes()]
        assert names == [
            "analysis", "selection", "decomposition", "schedule",
            "encode",
        ]

    def test_verify_pass_mounted(self):
        names = [
            p.name
            for p in SpasmCompiler(
                tile_sizes=TILE_SIZES, verify=True
            ).build_passes()
        ]
        assert names[-1] == "verify"


class TestTrace:
    def test_every_stage_traced(self, program):
        trace = program.trace
        assert [e.name for e in trace] == [
            "analysis", "selection", "decomposition", "schedule",
            "encode",
        ]
        assert all(e.wall_ms >= 0 for e in trace)
        assert all(e.cache == "off" for e in trace)

    def test_stage_summaries(self, program):
        analysis = program.trace.event("analysis")
        assert analysis.inputs["coo"]["nnz"] > 0
        assert analysis.outputs["masks"] > 0
        assert "patterns" in analysis.note
        encode = program.trace.event("encode")
        assert encode.outputs["spasm"]["groups"] == \
            program.spasm.n_groups

    def test_missing_stage_helpers(self, program):
        trace = program.trace
        assert not trace.has_stage("verify")
        assert trace.stage_ms("verify") == 0.0
        assert trace.cache_status("verify") == "off"
        with pytest.raises(KeyError):
            trace.event("verify")

    def test_total_and_json_roundtrip(self, program):
        trace = program.trace
        assert trace.total_ms == pytest.approx(
            sum(e.wall_ms for e in trace)
        )
        payload = json.loads(trace.to_json())
        assert [e["name"] for e in payload["events"]] == [
            e.name for e in trace
        ]
        assert payload["total_ms"] == pytest.approx(trace.total_ms)
        assert payload["cache_hits"] == 0

    def test_render_lists_stages(self, program):
        text = program.trace.render()
        for stage in ("analysis", "selection", "schedule", "total"):
            assert stage in text

    def test_report_is_view_over_trace(self, program):
        report = PreprocessReport.from_trace(program.trace)
        assert report == program.report
        assert report.analysis_ms == program.trace.stage_ms("analysis")
        assert report.schedule_ms == program.trace.stage_ms("schedule")
        # encode time is traced but not part of the Table VIII columns
        assert report.total_ms <= program.trace.total_ms

    def test_trace_event_to_dict(self):
        event = StageEvent(name="x", wall_ms=1.5, note="n")
        d = event.to_dict()
        assert d == {
            "name": "x", "wall_ms": 1.5, "cache": "off",
            "inputs": {}, "outputs": {}, "note": "n",
        }
        assert PipelineTrace(events=(event,)).cache_hits == 0


class TestArtifactReuse:
    def test_masks_computed_exactly_once(self, rng, monkeypatch):
        """Step ①'s submatrix scan must be the only one per compile."""
        import repro.core.format as format_mod
        import repro.core.patterns as patterns_mod
        import repro.pipeline.passes as passes_mod

        real = patterns_mod.submatrix_masks
        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        for mod in (patterns_mod, format_mod, passes_mod):
            monkeypatch.setattr(mod, "submatrix_masks", counting)

        coo = random_structured_coo(rng, 96, "mixed")
        program = SpasmCompiler(tile_sizes=TILE_SIZES).compile(coo)
        assert len(calls) == 1
        x = rng.random(coo.shape[1])
        assert np.allclose(program.spasm.spmv(x), coo.spmv(x))

    def test_masks_once_even_with_ablations(self, rng, monkeypatch):
        import repro.core.format as format_mod
        import repro.core.patterns as patterns_mod
        import repro.pipeline.passes as passes_mod

        real = patterns_mod.submatrix_masks
        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        for mod in (patterns_mod, format_mod, passes_mod):
            monkeypatch.setattr(mod, "submatrix_masks", counting)

        coo = random_structured_coo(rng, 64, "mixed")
        SpasmCompiler(tile_sizes=TILE_SIZES).compile(
            coo,
            fixed_portfolio=candidate_portfolios()[0],
            fixed_tile_size=32,
            fixed_hw_config=SPASM_4_1,
        )
        assert len(calls) == 1


class TestParallelSchedule:
    def test_jobs_match_serial(self, rng):
        coo = random_structured_coo(rng, 128, "mixed")
        serial = SpasmCompiler(tile_sizes=TILE_SIZES, jobs=1)
        parallel = SpasmCompiler(tile_sizes=TILE_SIZES, jobs=4)
        a = serial.compile(coo)
        b = parallel.compile(coo)
        assert a.tile_size == b.tile_size
        assert a.hw_config.name == b.hw_config.name
        assert [
            (p.tile_size, p.hw_config.name, p.cycles)
            for p in a.schedule.points
        ] == [
            (p.tile_size, p.hw_config.name, p.cycles)
            for p in b.schedule.points
        ]
        assert np.array_equal(a.spasm.words, b.spasm.words)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            SpasmCompiler(jobs=0)


class TestVerifyPass:
    def test_verify_stage_runs_clean(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        program = SpasmCompiler(
            tile_sizes=TILE_SIZES, verify=True
        ).compile(coo)
        assert program.trace.has_stage("verify")
        assert "0 errors" in program.trace.event("verify").note


class TestFacadeBehavior:
    def test_fixed_hw_config_type(self, rng, compiler):
        coo = random_structured_coo(rng, 64, "mixed")
        program = compiler.compile(
            coo, fixed_tile_size=32, fixed_hw_config=SPASM_3_4
        )
        assert program.hw_config is SPASM_3_4
        assert program.schedule is None
        assert program.trace.has_stage("schedule")  # traced, just fixed

    def test_trace_attached_to_program(self, program):
        assert isinstance(program.trace, PipelineTrace)
        assert len(program.trace) == 5
