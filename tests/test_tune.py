"""Tests for the per-matrix autotuning subsystem (``repro.tune``)."""

import dataclasses
import json
import os

import numpy as np
import pytest

import repro.exec.plan as plan_mod
from repro.cli import main
from repro.core import SpasmCompiler
from repro.pipeline import ArtifactCache, matrix_digest
from repro.resilience import ExecutionGuard
from repro.tune import (
    TUNED_STAGE,
    TUNER_VERSION,
    TunedConfig,
    TunedExecutor,
    load_tuned,
    store_tuned,
    tune_matrix,
    tuned_cache_key,
)
from tests.conftest import random_structured_coo

DIGEST_A = "a1" * 32
DIGEST_B = "b2" * 32


def make_config(digest=DIGEST_A, **overrides):
    base = dict(
        matrix_digest=digest, portfolio="portfolio-0", tile_size=256,
        index="int32", precision="float64", backend="csr", jobs=1,
        batch_block=0, structure_bitwise=False, spmv_ms=1.0,
        default_spmv_ms=2.0, batch_qps=10.0, default_batch_qps=5.0,
        model_cycles=100.0, candidates_total=10,
        candidates_measured=3,
    )
    base.update(overrides)
    return TunedConfig(**base)


@pytest.fixture
def coo(rng):
    return random_structured_coo(rng, 96, "mixed")


class TestTunedConfigCache:
    """ArtifactCache round-trip of tuning records (satellite 3)."""

    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        config = make_config()
        store_tuned(cache, config)
        loaded = load_tuned(cache, DIGEST_A)
        assert loaded == config
        assert loaded.speedup == pytest.approx(2.0)
        assert loaded.layout == "int32/float64"

    def test_digest_keying(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        store_tuned(cache, make_config(DIGEST_A))
        assert load_tuned(cache, DIGEST_B) is None
        assert load_tuned(cache, DIGEST_A) is not None

    def test_tuner_version_invalidates_without_quarantine(
        self, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        stale = make_config(tuner_version=TUNER_VERSION + 1)
        store_tuned(cache, stale)
        # A version bump is a deliberate schema change, not data
        # corruption: plain miss, nothing quarantined.
        assert load_tuned(cache, DIGEST_A) is None
        assert not cache.quarantined()

    def test_truncated_record_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        store_tuned(cache, make_config())
        path = cache.path(TUNED_STAGE, tuned_cache_key(DIGEST_A))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert load_tuned(cache, DIGEST_A) is None  # miss, no raise
        assert len(cache.quarantined()) == 1

    def test_malformed_meta_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = tuned_cache_key(DIGEST_A)
        cache.store(
            TUNED_STAGE, key,
            {"tuner_version": np.array([TUNER_VERSION],
                                       dtype=np.int64)},
            {"bogus": 1},
        )
        assert load_tuned(cache, DIGEST_A) is None
        assert len(cache.quarantined()) == 1
        reason_files = [
            n for n in os.listdir(cache.quarantine_dir)
            if n.endswith(".reason")
        ]
        assert reason_files

    def test_digest_mismatch_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        # A record whose meta names a different matrix than its key
        # claims: corrupt, not just stale.
        cache.store(
            TUNED_STAGE, tuned_cache_key(DIGEST_A),
            {"tuner_version": np.array([TUNER_VERSION],
                                       dtype=np.int64)},
            make_config(DIGEST_B).as_dict(),
        )
        assert load_tuned(cache, DIGEST_A) is None
        assert len(cache.quarantined()) == 1

    def test_from_meta_rejects_unknown_and_mistyped(self):
        meta = make_config().as_dict()
        with pytest.raises(ValueError):
            TunedConfig.from_meta({**meta, "surprise": 1})
        with pytest.raises(ValueError):
            TunedConfig.from_meta({**meta, "jobs": "many"})
        missing = dict(meta)
        del missing["portfolio"]
        with pytest.raises(ValueError):
            TunedConfig.from_meta(missing)


class TestTuneMatrix:
    def test_search_and_cache_hit(self, coo, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = tune_matrix(coo, cache=cache, repeats=1)
        assert not first.cache_hit
        assert first.trials  # a real search timed candidates
        assert first.config.matrix_digest == matrix_digest(coo)
        # Second invocation on the same matrix is a pure cache hit:
        # no candidates are re-measured.
        second = tune_matrix(coo, cache=cache, repeats=1)
        assert second.cache_hit
        assert second.trials == ()
        assert second.config == first.config
        forced = tune_matrix(coo, cache=cache, repeats=1, force=True)
        assert not forced.cache_hit

    def test_model_prunes_most_candidates(self, coo):
        result = tune_matrix(coo, repeats=1)
        cfg = result.config
        assert cfg.candidates_total > 0
        # Acceptance bar: the analytic pruner cuts the measured set
        # by at least half versus the exhaustive grid.
        assert cfg.candidates_measured <= cfg.candidates_total // 2

    def test_tuned_result_bitwise_equal_to_default(self, coo, rng):
        result = tune_matrix(coo, repeats=1)
        default = SpasmCompiler(build_plan=True).compile(coo)
        spasm = default.spasm
        executor = spasm.apply_tuned(result.config)
        x = rng.random(spasm.shape[1])
        expected = default.plan.spmv(x)
        assert np.array_equal(executor.spmv(x), expected)
        assert np.array_equal(spasm.spmv(x), expected)

    def test_no_lingering_jobs_pin(self, coo):
        # tune_matrix pins shard counts while measuring; the pins must
        # not leak into plans the caller keeps using.
        tune_matrix(coo, repeats=1)
        plan = SpasmCompiler(build_plan=True).compile(coo).plan
        assert "tuned_jobs" not in plan._scratch


class TestTunedExecutor:
    @pytest.fixture
    def program(self, coo):
        return SpasmCompiler(build_plan=True).compile(coo)

    def test_batch_and_spmm_routing(self, program, rng):
        spasm = program.spasm
        config = make_config(matrix_digest="ignored",
                             batch_block=8, structure_bitwise=False)
        executor = spasm.apply_tuned(config)
        xs = np.ascontiguousarray(rng.random((5, spasm.shape[1])))
        expected = program.plan.spmv_batch(xs)
        assert np.array_equal(executor.spmv_batch(xs), expected)
        assert np.array_equal(spasm.spmv_batch(xs), expected)
        dense = np.ascontiguousarray(rng.random((spasm.shape[1], 3)))
        assert np.array_equal(spasm.spmm(dense),
                              program.plan.spmm(dense))

    def test_explicit_args_bypass_pin(self, program, rng):
        spasm = program.spasm
        spasm.apply_tuned(make_config())
        x = rng.random(spasm.shape[1])
        pinned = spasm.spmv(x)
        explicit = spasm.spmv(x, jobs=1)
        assert np.array_equal(pinned, explicit)

    def test_apply_tuned_none_clears(self, program, rng):
        spasm = program.spasm
        spasm.apply_tuned(make_config())
        assert spasm.__dict__.get("_tuned") is not None
        spasm.apply_tuned(None)
        assert spasm.__dict__.get("_tuned") is None

    def test_unknown_backend_falls_back_to_auto(self, program, rng):
        executor = TunedExecutor(
            program.plan, make_config(backend="no-such-backend")
        )
        x = rng.random(program.spasm.shape[1])
        assert np.array_equal(executor.spmv(x),
                              program.plan.spmv(x))

    def test_y_accumulation(self, program, rng):
        spasm = program.spasm
        executor = spasm.apply_tuned(make_config())
        x = rng.random(spasm.shape[1])
        y = rng.random(spasm.shape[0])
        expected = program.plan.spmv(x) + y
        assert np.allclose(executor.spmv(x, y=y.copy()), expected)


class TestCompilerTunedReuse:
    def test_tuned_true_requires_cache_dir(self):
        with pytest.raises(ValueError):
            SpasmCompiler(tuned=True)

    def test_compile_with_record(self, coo, tmp_path):
        cache = ArtifactCache(tmp_path)
        result = tune_matrix(coo, cache=cache, repeats=1)
        default = SpasmCompiler(build_plan=True).compile(coo)
        for tuned in (result.config, True):
            prog = SpasmCompiler(
                build_plan=True, cache_dir=tmp_path, tuned=tuned
            ).compile(coo)
            assert np.array_equal(prog.spasm.words,
                                  default.spasm.words)
            assert np.array_equal(prog.spasm.values,
                                  default.spasm.values)
            if result.config.structure_bitwise:
                # The record pins the structural knobs, so the
                # portfolio-selection pass is skipped entirely.
                assert prog.selection is None

    def test_missing_record_is_untuned_compile(self, coo, tmp_path):
        default = SpasmCompiler(build_plan=True).compile(coo)
        prog = SpasmCompiler(
            build_plan=True, cache_dir=tmp_path, tuned=True
        ).compile(coo)
        assert np.array_equal(prog.spasm.words, default.spasm.words)
        assert prog.portfolio.name == default.portfolio.name

    def test_guard_accepts_tuned_plan(self, coo, tmp_path, rng):
        cache = ArtifactCache(tmp_path)
        result = tune_matrix(coo, cache=cache, repeats=1)
        prog = SpasmCompiler(
            build_plan=True, cache_dir=tmp_path,
            tuned=result.config,
        ).compile(coo)
        guard = ExecutionGuard(prog.spasm, seed=0)
        x = rng.random(prog.spasm.shape[1])
        got = guard.spmv(x)
        assert np.array_equal(got, prog.spasm.spmv_naive(x))
        assert len(guard.log) == 0  # no fallback, no incidents


class TestAutoJobsClamp:
    """The dispatch-overhead clamp on auto-sharding (satellite 1)."""

    @pytest.fixture
    def plan(self, coo):
        return SpasmCompiler(build_plan=True).compile(coo).plan

    def test_override_pins_and_clears(self, plan):
        plan.override_auto_jobs(3)
        assert plan._auto_jobs() == max(
            1, min(3, os.cpu_count() or 1)
        )
        plan.override_auto_jobs(None)
        assert "tuned_jobs" not in plan._scratch
        with pytest.raises(ValueError):
            plan.override_auto_jobs(0)

    def test_overhead_clamps_shard_count(self, plan, monkeypatch):
        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(plan_mod, "AUTO_SHARD_SLOTS",
                            max(1, plan.n_slots // 16))
        # Negligible dispatch overhead: the nnz heuristic stands.
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", 1e-12)
        assert plan._auto_jobs() > 1
        # Pathological dispatch overhead: sharding can never pay for
        # itself, so the clamp walks the count back to serial.
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", 1.0)
        assert plan._auto_jobs() == 1

    def test_dispatch_overhead_measured_and_cached(self, monkeypatch):
        monkeypatch.setattr(plan_mod, "_DISPATCH_OVERHEAD", None)
        first = plan_mod.dispatch_overhead_s()
        assert first > 0.0
        assert plan_mod.dispatch_overhead_s() == first  # cached
        assert plan_mod.dispatch_overhead_s(refresh=True) > 0.0


class TestCLI:
    def test_tune_then_run_tuned(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["tune", "raefsky3", "--scale", "0.02",
                     "--repeat", "1",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "stored in" in out
        assert "bitwise-safe" in out
        rc = main(["run", "raefsky3", "--scale", "0.02", "--tuned",
                   "--cache-dir", cache_dir, "--repeat", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned:" in out
        assert "(cache, recorded" in out
        assert "engines agree (bitwise equal to naive)" in out

    def test_tune_json(self, capsys):
        assert main(["tune", "raefsky3", "--scale", "0.02",
                     "--repeat", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["persisted"] is False
        assert payload["cache_hit"] is False
        cfg = payload["config"]
        assert cfg["tuner_version"] == TUNER_VERSION
        assert cfg["candidates_measured"] <= cfg["candidates_total"]
        assert payload["trials"]

    def test_run_json_resolved_object(self, capsys):
        assert main(["run", "raefsky3", "--scale", "0.02",
                     "--repeat", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        resolved = payload["resolved"]
        assert resolved["engine"] == "plan"
        assert resolved["backend"]
        assert "/" in resolved["layout"]
        assert resolved["jobs"] >= 1
        assert resolved["portfolio"].startswith("portfolio")
        assert resolved["tuned"] is False
        assert payload["check"]["agree"] is True

    def test_run_tuned_rejects_conflicts(self, capsys):
        assert main(["run", "raefsky3", "--scale", "0.02",
                     "--tuned", "--engine", "naive"]) == 1
        assert "--tuned requires" in capsys.readouterr().err
        assert main(["run", "raefsky3", "--scale", "0.02",
                     "--tuned", "--backend", "csr"]) == 1
        assert "--tuned conflicts" in capsys.readouterr().err
