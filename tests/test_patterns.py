"""Tests for local pattern analysis (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core import analyze_local_patterns
from repro.core.bitmask import diag_mask, full_mask, row_mask
from repro.core.patterns import submatrix_masks
from repro.matrix import COOMatrix
from repro.synth import generators as g


class TestAnalyze:
    def test_single_dense_block(self):
        dense = np.zeros((8, 8))
        dense[:4, :4] = 1.0
        hist = analyze_local_patterns(COOMatrix.from_dense(dense))
        assert hist.n_distinct == 1
        assert hist.patterns[0] == full_mask(4)
        assert hist.frequencies[0] == 1

    def test_identity_matrix_is_all_diag(self):
        coo = COOMatrix.from_dense(np.eye(16))
        hist = analyze_local_patterns(coo)
        assert hist.n_distinct == 1
        assert hist.patterns[0] == diag_mask(0, 4)
        assert hist.frequencies[0] == 4

    def test_row_pattern(self):
        dense = np.zeros((4, 4))
        dense[2, :] = 1.0
        hist = analyze_local_patterns(COOMatrix.from_dense(dense))
        assert hist.patterns[0] == row_mask(2, 4)

    def test_total_counts_nonempty_submatrices(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        dense[5, 5] = 1.0
        hist = analyze_local_patterns(COOMatrix.from_dense(dense))
        assert hist.total == 2

    def test_nnz_conservation(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        recovered = int(
            (hist.nnz_per_pattern() * hist.frequencies).sum()
        )
        assert recovered == small_coo.nnz

    def test_frequencies_sorted_descending(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        freqs = hist.frequencies
        assert all(freqs[i] >= freqs[i + 1] for i in range(len(freqs) - 1))

    def test_empty_matrix(self):
        hist = analyze_local_patterns(COOMatrix([], [], [], (8, 8)))
        assert hist.n_distinct == 0
        assert hist.total == 0

    def test_non_multiple_shape(self):
        dense = np.zeros((5, 7))
        dense[4, 6] = 1.0
        hist = analyze_local_patterns(COOMatrix.from_dense(dense))
        assert hist.total == 1

    def test_k2(self):
        coo = COOMatrix.from_dense(np.eye(4))
        hist = analyze_local_patterns(coo, k=2)
        assert hist.patterns[0] == diag_mask(0, 2)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            analyze_local_patterns(np.eye(4))

    def test_rejects_bad_k(self):
        coo = COOMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError):
            analyze_local_patterns(coo, k=0)
        with pytest.raises(ValueError):
            analyze_local_patterns(coo, k=6)


class TestHistogramOps:
    def test_top_n(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        top = hist.top(3)
        assert top.n_distinct <= 3
        assert np.array_equal(top.patterns, hist.patterns[:3])

    def test_top_more_than_available(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        assert hist.top(10**6).n_distinct == hist.n_distinct

    def test_top_fraction_reaches_coverage(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        sub = hist.top_fraction(0.5)
        assert sub.total / hist.total >= 0.5

    def test_top_fraction_minimal(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        sub = hist.top_fraction(0.5)
        if sub.n_distinct > 1:
            smaller = hist.top(sub.n_distinct - 1)
            assert smaller.total / hist.total < 0.5

    def test_top_fraction_rejects_bad_coverage(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        with pytest.raises(ValueError):
            hist.top_fraction(0.0)
        with pytest.raises(ValueError):
            hist.top_fraction(1.5)

    def test_cdf_monotone_ending_at_one(self, small_coo):
        cdf = analyze_local_patterns(small_coo).cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_coverage_of_top(self, small_coo):
        hist = analyze_local_patterns(small_coo)
        assert hist.coverage_of_top(hist.n_distinct) == pytest.approx(1.0)
        assert 0 < hist.coverage_of_top(1) <= 1

    def test_describe_top_renders(self, small_coo):
        text = analyze_local_patterns(small_coo).describe_top(2)
        assert "#1:" in text


class TestSubmatrixMasks:
    def test_keys_sorted(self, small_coo):
        __, keys = submatrix_masks(small_coo)
        assert np.all(np.diff(keys) > 0)

    def test_masks_nonzero(self, small_coo):
        masks, __ = submatrix_masks(small_coo)
        assert np.all(masks > 0)

    def test_block_diag_masks_full(self, block_diag_coo):
        masks, keys = submatrix_masks(block_diag_coo)
        assert np.all(masks == full_mask(4))
        assert masks.size == 16


class TestStructuredInputs:
    """The generators should produce their advertised dominant patterns."""

    def test_diagonal_stripes_dominated_by_diag(self):
        coo = g.diagonal_stripes(64, (0,), fill=1.0, seed=0)
        hist = analyze_local_patterns(coo)
        assert hist.patterns[0] == diag_mask(0, 4)

    def test_row_segments_dominated_by_rows(self):
        coo = g.row_segments(64, 1, 16, seed=0)
        hist = analyze_local_patterns(coo)
        top = int(hist.patterns[0])
        assert top in {row_mask(r, 4) for r in range(4)}
