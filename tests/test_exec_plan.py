"""Tests for the compiled SpMV execution plans (:mod:`repro.exec`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import candidate_portfolios, encode_spasm
from repro.exec import ExecutionPlan, PLAN_STAGE, stream_digest
from repro.matrix.coo import COOMatrix
from repro.pipeline.cache import ArtifactCache
from tests.conftest import random_structured_coo


def integer_coo(rng, n=64, kind="mixed"):
    """A structured matrix with small-integer values.

    Integer-valued float64 sums are exact in any accumulation order, so
    plan-vs-naive comparisons can demand strict equality rather than
    allclose.
    """
    coo = random_structured_coo(rng, n, kind)
    vals = rng.integers(1, 8, size=coo.nnz).astype(np.float64)
    return COOMatrix(rows=coo.rows, cols=coo.cols, vals=vals,
                     shape=coo.shape)


def encode(coo, tile_size=32, portfolio_idx=0):
    portfolio = candidate_portfolios()[portfolio_idx]
    return encode_spasm(coo, portfolio, tile_size)


class TestPlanCorrectness:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    def test_spmv_exact_vs_naive(self, rng, kind):
        coo = integer_coo(rng, 96, kind)
        spasm = encode(coo)
        x = rng.integers(0, 5, size=coo.shape[1]).astype(np.float64)
        plan = spasm.plan()
        assert np.array_equal(plan.spmv(x), spasm.spmv_naive(x))

    def test_spmv_matches_dense(self, rng, small_dense):
        spasm = encode(COOMatrix.from_dense(small_dense))
        x = rng.random(small_dense.shape[1])
        assert np.allclose(spasm.plan().spmv(x), small_dense @ x)

    def test_spmv_with_initial_y(self, rng, small_dense):
        spasm = encode(COOMatrix.from_dense(small_dense))
        x = rng.random(small_dense.shape[1])
        y0 = rng.random(small_dense.shape[0])
        assert np.allclose(
            spasm.plan().spmv(x, y0), small_dense @ x + y0
        )

    def test_edge_tiles_past_matrix_boundary(self, rng):
        # 50x50 with tile 32: the last tile row/column overhang the
        # matrix edge; padding slots must not read or write past it.
        dense = np.where(
            rng.random((50, 50)) < 0.3, rng.random((50, 50)), 0.0
        )
        dense[49, 49] = 1.0
        spasm = encode(COOMatrix.from_dense(dense), tile_size=32)
        x = rng.random(50)
        plan = spasm.plan()
        assert plan.seg_rows.max() < 50
        assert plan.cols.max() < 50
        assert np.allclose(plan.spmv(x), dense @ x)

    @pytest.mark.parametrize("kind", ["mixed", "blocks"])
    def test_spmm_exact_vs_naive(self, rng, kind):
        coo = integer_coo(rng, 64, kind)
        spasm = encode(coo)
        x_block = rng.integers(0, 5, size=(64, 5)).astype(np.float64)
        assert np.array_equal(
            spasm.plan().spmm(x_block), spasm.spmm_naive(x_block)
        )

    def test_spmm_blocked_matches_unblocked(self, rng, small_dense):
        spasm = encode(COOMatrix.from_dense(small_dense))
        x_block = rng.random((32, 7))
        plan = spasm.plan()
        assert np.array_equal(
            plan.spmm(x_block, block_size=2), plan.spmm(x_block)
        )

    def test_diagonal(self, rng, small_dense):
        spasm = encode(COOMatrix.from_dense(small_dense))
        assert np.array_equal(
            spasm.plan().diagonal(), np.diag(small_dense)
        )

    def test_shape_validation(self, rng, small_coo):
        plan = encode(small_coo).plan()
        with pytest.raises(ValueError):
            plan.spmv(np.zeros(7))
        with pytest.raises(ValueError):
            plan.spmv(np.zeros(32), y=np.zeros(7))
        with pytest.raises(ValueError):
            plan.spmm(np.zeros((7, 2)))

    def test_delegation_is_bitwise(self, rng, small_dense):
        # SpasmMatrix.spmv IS the plan execution now.
        spasm = encode(COOMatrix.from_dense(small_dense))
        x = rng.random(32)
        assert np.array_equal(spasm.spmv(x), spasm.plan().spmv(x))


class TestSharding:
    def test_jobs_bitwise_determinism(self, rng):
        # Large enough to clear MIN_SHARD_SLOTS so sharding engages.
        n = 512
        dense = np.where(
            rng.random((n, n)) < 0.2, rng.random((n, n)), 0.0
        )
        spasm = encode(COOMatrix.from_dense(dense))
        plan = spasm.plan()
        assert plan.n_slots >= 2 * 16384
        assert len(plan.shard_bounds(4)) > 1
        x = rng.random(n)
        serial = plan.spmv(x, jobs=1)
        for jobs in (2, 4, 7):
            assert np.array_equal(plan.spmv(x, jobs=jobs), serial)
        x_block = rng.random((n, 3))
        assert np.array_equal(
            plan.spmm(x_block, jobs=4), plan.spmm(x_block, jobs=1)
        )

    def test_shard_bounds_partition_segments(self, rng):
        n = 512
        dense = np.where(
            rng.random((n, n)) < 0.2, rng.random((n, n)), 0.0
        )
        plan = encode(COOMatrix.from_dense(dense)).plan()
        bounds = plan.shard_bounds(4)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == plan.n_segments
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_small_plan_collapses_to_one_shard(self, small_coo):
        plan = encode(small_coo).plan()
        assert plan.shard_bounds(8) == [(0, plan.n_segments)]

    def test_jobs_validation(self, small_coo):
        plan = encode(small_coo).plan()
        with pytest.raises(ValueError):
            plan.shard_bounds(0)


class TestPlanCache:
    def test_lazy_cache_reuses_plan(self, small_coo):
        spasm = encode(small_coo)
        assert spasm.plan() is spasm.plan()

    def test_cache_invalidated_when_stream_changes(self, rng, small_coo):
        spasm = encode(small_coo)
        x = rng.random(32)
        before = spasm.plan()
        y_before = spasm.spmv(x)
        spasm.values[0, 0] += 1.0
        after = spasm.plan()
        assert after is not before
        assert after.digest != before.digest
        assert not np.array_equal(spasm.spmv(x), y_before)

    def test_digest_covers_positions(self, small_coo):
        spasm = encode(small_coo)
        d0 = stream_digest(spasm)
        spasm.words[0] += 1
        assert stream_digest(spasm) != d0

    def test_persisted_plan_roundtrip(self, tmp_path, small_coo):
        spasm = encode(small_coo)
        cache = ArtifactCache(tmp_path)
        built = ExecutionPlan.build(spasm, cache=cache)
        assert cache.load(PLAN_STAGE, built.digest[:40]) is not None
        loaded = ExecutionPlan.build(spasm, cache=cache)
        assert loaded.digest == built.digest
        assert np.array_equal(loaded.vals, built.vals)
        assert np.array_equal(loaded.cols, built.cols)

    def test_stale_persisted_entry_rejected(self, tmp_path, small_coo):
        spasm = encode(small_coo)
        cache = ArtifactCache(tmp_path)
        built = ExecutionPlan.build(spasm, cache=cache)
        spasm.values[0, 0] += 1.0
        rebuilt = ExecutionPlan.build(spasm, cache=cache)
        assert rebuilt.digest != built.digest

    def test_plan_pass_in_compiler(self, tmp_path, small_coo):
        from repro.core.framework import SpasmCompiler

        compiler = SpasmCompiler(
            build_plan=True, cache_dir=tmp_path
        )
        program = compiler.compile(small_coo)
        assert program.plan is not None
        stages = {e.name: e.cache for e in program.trace.events}
        assert stages["plan"] == "miss"
        again = SpasmCompiler(
            build_plan=True, cache_dir=tmp_path
        ).compile(small_coo)
        stages = {e.name: e.cache for e in again.trace.events}
        assert stages["plan"] == "hit"
        assert np.array_equal(again.plan.vals, program.plan.vals)


class TestFaultTolerance:
    """Worker faults and single-bit corruption of the plan arrays."""

    @pytest.fixture
    def sharded_plan(self, rng):
        n = 512
        dense = np.where(
            rng.random((n, n)) < 0.2, rng.random((n, n)), 0.0
        )
        plan = encode(COOMatrix.from_dense(dense)).plan()
        assert len(plan.shard_bounds(4)) > 1
        return plan

    def test_worker_exception_reraised_pool_survives(
        self, rng, sharded_plan
    ):
        import threading

        from repro.exec import set_shard_fault_hook

        plan = sharded_plan
        x = rng.random(plan.shape[1])
        serial = plan.spmv(x, jobs=1)

        class Boom(RuntimeError):
            pass

        state = {"calls": 0}

        def kill_first(lo, hi):
            state["calls"] += 1
            if state["calls"] == 1:
                raise Boom("shard died")

        previous = set_shard_fault_hook(kill_first)
        try:
            with pytest.raises(Boom):
                plan.spmv(x, jobs=4)
        finally:
            set_shard_fault_hook(previous)
        # The shared pool is not poisoned: the very next sharded call
        # completes bitwise identically, on the same bounded thread
        # count (no orphaned workers accumulate per failure).
        threads_after_failure = threading.active_count()
        assert np.array_equal(plan.spmv(x, jobs=4), serial)
        for _ in range(3):
            plan.spmv(x, jobs=4)
        assert threading.active_count() <= threads_after_failure

    def test_keyboard_interrupt_reraised_pool_survives(
        self, rng, sharded_plan
    ):
        from repro.exec import set_shard_fault_hook

        plan = sharded_plan
        x = rng.random(plan.shape[1])
        serial = plan.spmv(x, jobs=1)
        state = {"calls": 0}

        def interrupt_first(lo, hi):
            state["calls"] += 1
            if state["calls"] == 1:
                raise KeyboardInterrupt()

        previous = set_shard_fault_hook(interrupt_first)
        try:
            with pytest.raises(KeyboardInterrupt):
                plan.spmv(x, jobs=4)
        finally:
            set_shard_fault_hook(previous)
        assert np.array_equal(plan.spmv(x, jobs=4), serial)

    def test_validate_clean_plan(self, rng):
        coo = integer_coo(rng, 96, "mixed")
        assert encode(coo).plan().validate() == []

    def test_torn_build_relabels_mutated_stream(
        self, rng, tmp_path, monkeypatch
    ):
        """A mutation landing between the digest read and the compile
        read must not label the corrupted plan with the pristine
        digest (nor poison the cache under the pristine key)."""
        from repro.exec.plan import _plan_cache_key

        spasm = encode(integer_coo(rng, n=64))
        pristine_digest = stream_digest(spasm)
        cache = ArtifactCache(tmp_path)
        x = rng.random(spasm.shape[1])

        real_compile = ExecutionPlan._compile.__func__
        tears = {"left": 1}

        def torn_compile(cls, sp, digest, **kw):
            if tears["left"]:
                tears["left"] -= 1
                sp.values.reshape(-1)[0] += 1.0
            return real_compile(cls, sp, digest, **kw)

        monkeypatch.setattr(
            ExecutionPlan, "_compile", classmethod(torn_compile)
        )
        plan = ExecutionPlan.build(spasm, cache=cache)
        monkeypatch.setattr(
            ExecutionPlan, "_compile", classmethod(real_compile)
        )
        # The returned plan carries the post-mutation digest and
        # computes the post-mutation matrix.
        assert plan.digest == stream_digest(spasm)
        assert plan.digest != pristine_digest
        assert np.array_equal(plan.spmv(x), spasm.spmv_naive(x))
        # Nothing was persisted under the stale pristine key.
        stale = _plan_cache_key(pristine_digest, None, None)
        assert cache.load(PLAN_STAGE, stale) is None
        assert cache.load(
            PLAN_STAGE, _plan_cache_key(plan.digest, None, None)
        ) is not None

    def test_endlessly_mutating_stream_refuses_to_build(
        self, rng, monkeypatch
    ):
        """A stream that never holds still across a build window is
        unlabelable — build() must refuse rather than guess."""
        spasm = encode(integer_coo(rng, n=64))
        real_compile = ExecutionPlan._compile.__func__

        def torn_compile(cls, sp, digest, **kw):
            sp.values.reshape(-1)[0] += 1.0
            return real_compile(cls, sp, digest, **kw)

        monkeypatch.setattr(
            ExecutionPlan, "_compile", classmethod(torn_compile)
        )
        with pytest.raises(RuntimeError, match="kept mutating"):
            ExecutionPlan.build(spasm)


# -- hypothesis: any single-bit flip in any plan array is caught --------

_FLIP_SPASM = encode(
    random_structured_coo(np.random.default_rng(99), 64, "mixed"),
    tile_size=16,
)
_FLIP_PLAN = _FLIP_SPASM.plan()
_FLIP_ARRAYS = ("cols", "vals", "seg_starts", "seg_rows")


@settings(max_examples=40, deadline=None)
@given(
    which=st.integers(0, len(_FLIP_ARRAYS) - 1),
    pos=st.integers(0, 2**30),
    bit=st.integers(0, 7),
)
def test_any_plan_bit_flip_is_caught(which, pos, bit):
    """Every single-bit corruption of every executable plan array is
    flagged — by validate() (checksum + invariants) and by the
    plan.integrity verifier rule the guard and CLI share.  The flip is
    byte-addressed so compact int32 arrays are covered bit for bit."""
    import dataclasses

    from repro.verify import verify_plan

    name = _FLIP_ARRAYS[which]
    mutated = dataclasses.replace(
        _FLIP_PLAN,
        cols=_FLIP_PLAN.cols.copy(),
        vals=_FLIP_PLAN.vals.copy(),
        seg_starts=_FLIP_PLAN.seg_starts.copy(),
        seg_rows=_FLIP_PLAN.seg_rows.copy(),
    )
    arr = getattr(mutated, name).reshape(-1).view(np.uint8)
    idx = pos % arr.size
    arr[idx] ^= np.uint8(1 << bit)
    problems = mutated.validate()
    assert problems, (
        f"flip of bit {bit} in {name}[{idx}] went undetected"
    )
    report = verify_plan(mutated, spasm=_FLIP_SPASM)
    assert not report.ok
    assert any(
        d.rule_id.startswith("plan.") for d in report.errors
    )


class TestIntegration:
    def test_operator_uses_plan(self, rng, small_dense):
        from repro.solvers.operator import as_operator

        spasm = encode(COOMatrix.from_dense(small_dense))
        op = as_operator(spasm)
        x = rng.random(32)
        assert np.array_equal(op.matvec(x), spasm.plan().spmv(x))
        assert np.allclose(op.diagonal(), np.diag(small_dense))
        plan_op = as_operator(spasm.plan())
        assert np.array_equal(plan_op.matvec(x), op.matvec(x))

    def test_fast_sim_jobs(self, rng, small_dense):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        spasm = encode(COOMatrix.from_dense(small_dense))
        x = rng.random(32)
        acc = SpasmAccelerator(SPASM_4_1)
        serial = acc.run(spasm, x, engine="fast", jobs=1)
        sharded = acc.run(spasm, x, engine="fast", jobs=4)
        assert np.array_equal(serial.y, sharded.y)
        assert serial.hbm_bytes == sharded.hbm_bytes

    def test_cli_run_command(self, capsys):
        from repro.cli import main

        assert main(["run", "tmt_sym", "--scale", "0.5",
                     "--repeat", "2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "engines agree" in out

    def test_empty_matrix(self):
        coo = COOMatrix(
            rows=np.zeros(0, dtype=np.int64),
            cols=np.zeros(0, dtype=np.int64),
            vals=np.zeros(0),
            shape=(16, 16),
        )
        spasm = encode(coo)
        plan = spasm.plan()
        assert plan.n_slots == 0
        assert np.array_equal(plan.spmv(np.ones(16)), np.zeros(16))
        assert np.array_equal(
            plan.spmm(np.ones((16, 2))), np.zeros((16, 2))
        )
