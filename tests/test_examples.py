"""Smoke tests: every shipped example must run to completion.

Each example asserts its own numerical checks internally, so a clean
exit is a real end-to-end guarantee, not just an import check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "fem_cg_solver.py",
        "graph_pagerank.py",
        "codesign_exploration.py",
        "advanced_tuning.py",
    }


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
