"""Unit and property tests for repro.core.bitmask."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitmask as bm


class TestPopcount:
    def test_zero(self):
        assert bm.popcount(0) == 0

    def test_full_16bit(self):
        assert bm.popcount(0xFFFF) == 16

    def test_single_bits(self):
        for i in range(16):
            assert bm.popcount(1 << i) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_bin_count(self, value):
        assert bm.popcount(value) == bin(value).count("1")

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=1, max_size=50))
    def test_array_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint32)
        expected = [bm.popcount(v) for v in values]
        assert bm.popcount_array(arr).tolist() == expected


class TestMaskConstruction:
    def test_full_mask_4(self):
        assert bm.full_mask(4) == 0xFFFF

    def test_full_mask_2(self):
        assert bm.full_mask(2) == 0xF

    def test_bit_of_row_major(self):
        assert bm.bit_of(0, 0, 4) == 0
        assert bm.bit_of(0, 3, 4) == 3
        assert bm.bit_of(1, 0, 4) == 4
        assert bm.bit_of(3, 3, 4) == 15

    def test_mask_from_coords(self):
        mask = bm.mask_from_coords([0, 1], [0, 1], 4)
        assert mask == (1 << 0) | (1 << 5)

    def test_mask_from_coords_rejects_outside(self):
        with pytest.raises(ValueError):
            bm.mask_from_coords([4], [0], 4)

    def test_coords_roundtrip(self):
        cells = [(0, 1), (2, 3), (3, 0)]
        mask = bm.mask_from_coords(*zip(*cells), 4)
        assert bm.coords_from_mask(mask, 4) == sorted(cells)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_coords_mask_roundtrip_property(self, mask):
        cells = bm.coords_from_mask(mask, 4)
        if cells:
            rebuilt = bm.mask_from_coords(*zip(*cells), 4)
        else:
            rebuilt = 0
        assert rebuilt == mask

    def test_mask_from_dense(self):
        block = np.zeros((4, 4))
        block[1, 2] = 5.0
        assert bm.mask_from_dense(block) == 1 << bm.bit_of(1, 2, 4)

    def test_mask_from_dense_rejects_rectangles(self):
        with pytest.raises(ValueError):
            bm.mask_from_dense(np.zeros((2, 4)))


class TestPatternFamilies:
    def test_row_masks_partition_grid(self):
        union = 0
        for r in range(4):
            mask = bm.row_mask(r, 4)
            assert bm.popcount(mask) == 4
            assert union & mask == 0
            union |= mask
        assert union == bm.full_mask(4)

    def test_col_masks_partition_grid(self):
        union = 0
        for c in range(4):
            mask = bm.col_mask(c, 4)
            assert bm.popcount(mask) == 4
            assert union & mask == 0
            union |= mask
        assert union == bm.full_mask(4)

    def test_diag_masks_partition_grid(self):
        union = 0
        for s in range(4):
            mask = bm.diag_mask(s, 4)
            assert bm.popcount(mask) == 4
            assert union & mask == 0
            union |= mask
        assert union == bm.full_mask(4)

    def test_antidiag_masks_partition_grid(self):
        union = 0
        for s in range(4):
            mask = bm.antidiag_mask(s, 4)
            assert bm.popcount(mask) == 4
            assert union & mask == 0
            union |= mask
        assert union == bm.full_mask(4)

    def test_main_diag_cells(self):
        cells = bm.coords_from_mask(bm.diag_mask(0, 4), 4)
        assert cells == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_main_antidiag_cells(self):
        cells = bm.coords_from_mask(bm.antidiag_mask(3, 4), 4)
        assert cells == [(0, 3), (1, 2), (2, 1), (3, 0)]

    def test_block_mask(self):
        mask = bm.block_mask(1, 1, 2, 2, 4)
        assert bm.coords_from_mask(mask, 4) == [
            (1, 1), (1, 2), (2, 1), (2, 2),
        ]

    def test_block_mask_rejects_overflow_without_wrap(self):
        with pytest.raises(ValueError):
            bm.block_mask(3, 3, 2, 2, 4)

    def test_block_mask_wraps(self):
        mask = bm.block_mask(3, 3, 2, 2, 4, wrap=True)
        assert bm.coords_from_mask(mask, 4) == [
            (0, 0), (0, 3), (3, 0), (3, 3),
        ]

    def test_transpose_mask(self):
        mask = bm.row_mask(1, 4)
        assert bm.transpose_mask(mask, 4) == bm.col_mask(1, 4)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_transpose_involution(self, mask):
        assert bm.transpose_mask(bm.transpose_mask(mask, 4), 4) == mask


class TestRender:
    def test_render_empty(self):
        assert bm.render_mask(0, 2) == "..\n.."

    def test_render_diag(self):
        assert bm.render_mask(bm.diag_mask(0, 2), 2) == "#.\n.#"

    def test_render_row_major_orientation(self):
        mask = 1 << bm.bit_of(0, 1, 2)
        assert bm.render_mask(mask, 2) == ".#\n.."


class TestSubmaskCount:
    def test_empty(self):
        assert bm.submask_count(0) == 0

    def test_full(self):
        assert bm.submask_count(0xFFFF) == 65535
