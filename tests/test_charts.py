"""Tests for the terminal chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_basic(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[0].count("#") == 5

    def test_title_and_unit(self):
        text = bar_chart(["x"], [3.0], title="T", unit=" GF/s")
        assert text.startswith("T\n")
        assert "3.00 GF/s" in text

    def test_labels_aligned(self):
        text = bar_chart(["a", "long"], [1.0, 1.0])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_log_scale(self):
        text = bar_chart(["a", "b"], [1.0, 1000.0], width=30, log=True)
        lines = text.splitlines()
        assert lines[1].count("#") == 30
        # log floor: smallest value collapses toward zero bars but
        # stays visible.
        assert 0 <= lines[0].count("#") <= 2

    def test_zero_value_no_bar(self):
        text = bar_chart(["z", "a"], [0.0, 1.0])
        assert text.splitlines()[0].count("#") == 0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_rejects_log_of_zero(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0], log=True)

    def test_empty(self):
        assert bar_chart([], [], title="empty") == "empty"


class TestGroupedBarChart:
    def test_structure(self):
        text = grouped_bar_chart(
            ["m1", "m2"],
            {"SPASM": [2.0, 4.0], "base": [1.0, 1.0]},
        )
        lines = text.splitlines()
        assert lines[0] == "m1:"
        assert sum(1 for line in lines if line.endswith(":")) == 2
        assert sum("SPASM" in line for line in lines) == 2

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})

    def test_log(self):
        text = grouped_bar_chart(
            ["a"], {"s": [10.0], "t": [1000.0]}, log=True
        )
        assert "#" in text


class TestLineChart:
    def test_dimensions(self):
        text = line_chart({"s": [0.0, 1.0, 2.0]}, width=20, height=5)
        body = [
            line for line in text.splitlines() if line.startswith(" " * 11 + "|")
        ]
        assert len(body) == 5

    def test_monotone_series_plots_corners(self):
        text = line_chart({"s": [0.0, 10.0]}, width=10, height=4)
        body = [
            line[12:] for line in text.splitlines()
            if line.startswith(" " * 11 + "|")
        ]
        assert body[0].rstrip().endswith("*")  # max at top-right
        assert body[-1].startswith("*")  # min at bottom-left

    def test_legend_lists_series(self):
        text = line_chart({"one": [0, 1], "two": [1, 0]})
        assert "* one" in text and "o two" in text

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            line_chart({"s": [1.0]})

    def test_x_labels(self):
        text = line_chart({"s": [0, 1]}, x_labels=[16, 32])
        assert "16 .. 32" in text
