"""Tests for the analysis and reporting layer."""

import math

import numpy as np
import pytest

from repro.analysis.frequency import (
    cdf_series,
    pattern_cdf_table,
    top_pattern_report,
)
from repro.analysis.metrics import (
    bandwidth_efficiency_table,
    energy_table,
    geomean,
    render_throughput,
    speedup_summary,
    throughput_table,
    utilization_table,
)
from repro.analysis.report import format_table
from repro.analysis.storage_compare import (
    pattern_size_sweep,
    render_storage_comparison,
    spasm_storage_bytes,
    storage_summary,
    suite_storage_reports,
    template_selection_sweep,
)
from repro.baselines import HiSparseModel, SERPENS_A16, SpasmModel
from repro.core import analyze_local_patterns
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(99)
    return [
        ("blocks", g.block_diagonal(32, 4, fill=1.0, seed=1)),
        ("band", g.banded(256, 3, fill=0.8, seed=2)),
        ("mixed", random_structured_coo(rng, 128, "mixed")),
    ]


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_log_identity(self):
        values = [0.5, 2.0, 8.0]
        assert math.log(geomean(values)) == pytest.approx(
            sum(math.log(v) for v in values) / 3
        )


class TestSpeedupSummary:
    def test_fields(self):
        s = speedup_summary([1.0, 2.0, 4.0])
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["geomean"] == pytest.approx(2.0)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 20.25]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "20.25" in lines[-1]

    def test_title(self):
        text = format_table(["h"], [["v"]], title="T")
        assert text.startswith("T\n")

    def test_empty_rows(self):
        text = format_table(["h"], [])
        assert "h" in text


class TestThroughputTables(object):
    def test_throughput_structure(self, matrices):
        result = throughput_table(
            matrices, SpasmModel(), [HiSparseModel()]
        )
        assert len(result["rows"]) == 3
        assert set(result["summary"]) == {"HiSparse"}
        assert all(
            s > 0 for s in result["speedups"]["HiSparse"]
        )

    def test_render_throughput(self, matrices):
        result = throughput_table(
            matrices, SpasmModel(), [HiSparseModel()]
        )
        text = render_throughput(result, ["HiSparse"])
        assert "GFLOP/s" in text and "vs HiSparse" in text

    def test_bandwidth_efficiency(self, matrices):
        result = bandwidth_efficiency_table(
            matrices, SpasmModel(), [SERPENS_A16()]
        )
        assert "Serpens_a16" in result["summary"]

    def test_utilization_bounds(self, matrices):
        rows = utilization_table(
            matrices, SpasmModel(), [HiSparseModel()]
        )
        for row in rows:
            for platform in ("SPASM", "HiSparse"):
                assert 0 < row[platform]["bandwidth"] <= 1.0
                assert 0 < row[platform]["compute"] <= 1.0

    def test_energy_table(self, matrices):
        rows = energy_table(matrices, SpasmModel(), [HiSparseModel()])
        names = [r["name"] for r in rows]
        assert "SPASM" in names and "HiSparse" in names
        for row in rows:
            assert row["efficiency"] == pytest.approx(
                row["gflops"] / row["power_w"]
            )


class TestFrequencyAnalysis:
    def test_cdf_table_renders(self, matrices):
        text = pattern_cdf_table(matrices, top_ns=(1, 8))
        assert "top-8" in text
        for name, __ in matrices:
            assert name in text

    def test_top_pattern_report(self, matrices):
        hist = analyze_local_patterns(matrices[0][1])
        text = top_pattern_report("blocks", hist)
        assert "blocks" in text and "100.00%" in text

    def test_cdf_series_truncation(self, matrices):
        hist = analyze_local_patterns(matrices[2][1])
        assert cdf_series(hist, max_n=5).size <= 5


class TestStorageAnalysis:
    def test_spasm_storage_positive(self, matrices):
        assert spasm_storage_bytes(matrices[0][1]) > 0

    def test_suite_reports_include_spasm(self, matrices):
        reports = suite_storage_reports(matrices)
        assert all("SPASM" in r.bytes_by_format for r in reports)

    def test_summary_fields(self, matrices):
        summary = storage_summary(suite_storage_reports(matrices))
        for fmt, s in summary.items():
            assert s["min"] <= s["geomean"] <= s["max"]

    def test_render(self, matrices):
        text = render_storage_comparison(suite_storage_reports(matrices))
        assert "Table VI" in text

    def test_blocks_spasm_beats_coo_by_2_4(self, matrices):
        # Fully dense 4x4 blocks: SPASM stores 5 bytes/nnz vs COO's 12.
        reports = suite_storage_reports(matrices[:1])
        assert reports[0].improvement("SPASM") == pytest.approx(2.4)

    def test_pattern_size_sweep(self, matrices):
        result = pattern_size_sweep(matrices[:2], ks=(2, 4))
        for per_k in result.values():
            assert set(per_k) == {2, 4}
            assert all(v > 0 for v in per_k.values())

    def test_template_selection_sweep(self, matrices):
        result = template_selection_sweep(matrices[:2])
        for row in result.values():
            assert "dynamic" in row
            finite = [v for k, v in row.items() if k != "dynamic"]
            assert row["dynamic"] == min(finite)
