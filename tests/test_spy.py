"""Tests for the ASCII spy plots."""

import numpy as np
import pytest

from repro.analysis.spy import DEFAULT_RAMP, spy, spy_with_border
from repro.matrix import COOMatrix
from repro.synth import generators as g


class TestSpy:
    def test_dimensions(self):
        coo = COOMatrix.from_dense(np.eye(64))
        text = spy(coo, width=10, height=5)
        lines = text.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 10 for line in lines)

    def test_empty_matrix_blank(self):
        coo = COOMatrix([], [], [], (8, 8))
        text = spy(coo, width=4, height=4)
        assert set(text.replace("\n", "")) == {DEFAULT_RAMP[0]}

    def test_diagonal_shows_on_diagonal(self):
        coo = COOMatrix.from_dense(np.eye(64))
        lines = spy(coo, width=8, height=8).splitlines()
        for i, line in enumerate(lines):
            assert line[i] != " "
            # off-diagonal corners stay empty
            if i > 1:
                assert line[0] == " "

    def test_dense_rows_show_at_bottom(self):
        coo = g.dense_rows(64, 4, row_fill=1.0, seed=0)
        lines = spy(coo, width=8, height=8).splitlines()
        assert all(ch == " " for ch in lines[0])
        assert all(ch != " " for ch in lines[-1])

    def test_density_ramp_orders(self):
        # A dense block region must render darker than a sparse one.
        dense = np.zeros((32, 32))
        dense[:8, :8] = 1.0  # fully dense corner
        dense[24, 24] = 1.0  # lone entry
        coo = COOMatrix.from_dense(dense)
        text = spy(coo, width=4, height=4)
        lines = text.splitlines()
        assert DEFAULT_RAMP.index(lines[0][0]) > DEFAULT_RAMP.index(
            lines[3][3]
        )

    def test_rejects_bad_dims(self):
        coo = COOMatrix([], [], [], (4, 4))
        with pytest.raises(ValueError):
            spy(coo, width=0)
        with pytest.raises(ValueError):
            spy(coo, ramp="x")

    def test_border(self):
        coo = COOMatrix.from_dense(np.eye(8))
        text = spy_with_border(coo, width=6, height=3)
        lines = text.splitlines()
        assert lines[0] == "+------+"
        assert lines[-1] == "+------+"
        assert all(
            line.startswith("|") and line.endswith("|")
            for line in lines[1:-1]
        )

    def test_rectangular_matrix(self):
        coo = COOMatrix([0], [99], [1.0], (10, 100))
        lines = spy(coo, width=10, height=5).splitlines()
        assert lines[0][-1] != " "
