"""Tests for the baseline platform models."""

import numpy as np
import pytest

from repro.baselines import (
    CPUReference,
    CuSparseRTX3090Model,
    HiSparseModel,
    SERPENS_A16,
    SERPENS_A24,
    SpasmModel,
    matrix_stats,
)
from repro.matrix import COOMatrix
from repro.synth import generators as g
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def banded_coo():
    return g.banded(512, 3, fill=0.9, seed=0)


@pytest.fixture(scope="module")
def imbalanced_coo():
    return g.overlay(
        g.banded(512, 2, fill=0.8, seed=1),
        g.dense_rows(512, 4, row_fill=0.9, seed=2),
    )


ALL_MODELS = [
    HiSparseModel(),
    SERPENS_A16(),
    SERPENS_A24(),
    CuSparseRTX3090Model(),
]


class TestMatrixStats:
    def test_basic_fields(self, banded_coo):
        stats = matrix_stats(banded_coo)
        assert stats.nnz == banded_coo.nnz
        assert stats.nrows == 512
        assert 0 < stats.density < 1
        assert stats.avg_row_len > 1

    def test_row_cv_detects_imbalance(self, banded_coo, imbalanced_coo):
        assert (
            matrix_stats(imbalanced_coo).row_cv
            > matrix_stats(banded_coo).row_cv
        )

    def test_col_span_detects_scatter(self, banded_coo):
        scattered = g.random_uniform(512, 0.01, seed=3)
        assert (
            matrix_stats(scattered).col_span
            > matrix_stats(banded_coo).col_span
        )

    def test_empty_matrix(self):
        stats = matrix_stats(COOMatrix([], [], [], (4, 4)))
        assert stats.nnz == 0
        assert stats.row_cv == 0.0


class TestModelSanity:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_time_positive(self, model, banded_coo):
        assert model.time_s(banded_coo) > 0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_gflops_below_peak(self, model, banded_coo):
        assert 0 < model.gflops(banded_coo) <= model.peak_gflops

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_efficiency_bounded(self, model, banded_coo):
        assert 0 < model.efficiency(banded_coo) <= 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_utilizations_bounded(self, model, banded_coo):
        assert 0 < model.bandwidth_utilization(banded_coo) <= 1.0
        assert 0 < model.compute_utilization(banded_coo) <= 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_imbalance_slows_things_down(self, model, banded_coo,
                                         imbalanced_coo):
        assert model.efficiency(imbalanced_coo) < model.efficiency(
            banded_coo
        )

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_describe(self, model):
        assert model.name in model.describe()

    def test_launch_overhead_adds_time(self, banded_coo):
        fast = HiSparseModel()
        slow = HiSparseModel(launch_overhead_s=1.0)
        assert slow.time_s(banded_coo) > fast.time_s(banded_coo) + 0.5


class TestPlatformOrdering:
    """Directional expectations from Table III / Figure 12."""

    def test_serpens_a24_faster_than_a16(self, banded_coo):
        assert SERPENS_A24().gflops(banded_coo) > SERPENS_A16().gflops(
            banded_coo
        )

    def test_serpens_faster_than_hisparse(self, banded_coo):
        assert SERPENS_A16().gflops(banded_coo) > HiSparseModel().gflops(
            banded_coo
        )

    def test_gpu_fastest_baseline(self, banded_coo):
        gpu = CuSparseRTX3090Model().gflops(banded_coo)
        for model in (HiSparseModel(), SERPENS_A16(), SERPENS_A24()):
            assert gpu > model.gflops(banded_coo)


class TestCPUReference:
    def test_exact_spmv(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        x = rng.random(64)
        cpu = CPUReference(repeats=1)
        assert np.allclose(cpu.spmv(coo, x), coo.spmv(x))

    def test_measures_time(self, banded_coo):
        assert CPUReference(repeats=1).time_s(banded_coo) > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            CPUReference(repeats=0)


class TestSpasmModel:
    def test_compile_cached(self, rng):
        coo = random_structured_coo(rng, 64, "mixed")
        model = SpasmModel()
        assert model.compile(coo) is model.compile(coo)

    def test_gflops_positive(self, rng):
        coo = random_structured_coo(rng, 128, "mixed")
        model = SpasmModel()
        assert model.gflops(coo) > 0

    def test_per_matrix_platform_constants(self, rng):
        coo = random_structured_coo(rng, 128, "mixed")
        model = SpasmModel()
        assert model.bandwidth_of(coo) > 0
        assert model.peak_gflops_of(coo) > 0
        assert 0 < model.compute_utilization(coo) <= 1.0

    def test_fixed_knobs_forwarded(self, rng):
        from repro.core import candidate_portfolios
        from repro.hw import SPASM_4_1

        coo = random_structured_coo(rng, 64, "mixed")
        model = SpasmModel(
            fixed_portfolio=candidate_portfolios()[0],
            fixed_tile_size=32,
            fixed_hw_config=SPASM_4_1,
        )
        program = model.compile(coo)
        assert program.tile_size == 32
        assert program.hw_config is SPASM_4_1
