"""Tests for the 30-bit VALU opcodes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmask import coords_from_mask
from repro.core.templates import candidate_portfolios, template_universe
from repro.hw.opcode import (
    OPCODE_BITS,
    Opcode,
    OpcodeError,
    decode_opcode,
    encode_opcode,
    opcode_for_template,
    opcode_table,
)


def reference_routing(mask, values, x_segment):
    """Direct computation of what a template group must produce."""
    out = [0.0] * 4
    for lane, (r, c) in enumerate(coords_from_mask(mask, 4)):
        out[r] += values[lane] * x_segment[c]
    return out


class TestPackUnpack:
    @given(
        st.tuples(*[st.integers(0, 3)] * 4),
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.tuples(*[st.integers(0, 7)] * 4),
    )
    def test_roundtrip(self, mul_sel, a0_sel, a1_sel, out_sel):
        opcode = Opcode(mul_sel, a0_sel, a1_sel, out_sel)
        word = encode_opcode(opcode)
        assert 0 <= word < (1 << OPCODE_BITS)
        assert decode_opcode(word) == opcode

    def test_width_is_30_bits(self):
        opcode = Opcode((3, 3, 3, 3), (3, 3), (4, 4), (7, 7, 7, 7))
        assert encode_opcode(opcode) < (1 << 30)

    def test_pack_method(self):
        opcode = Opcode((0, 1, 2, 3), (0, 1), (2, 3), (1, 2, 3, 4))
        assert decode_opcode(opcode.pack()) == opcode

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(OpcodeError):
            encode_opcode(Opcode((4, 0, 0, 0), (0, 0), (0, 0), (0,) * 4))
        with pytest.raises(OpcodeError):
            encode_opcode(Opcode((0,) * 4, (4, 0), (0, 0), (0,) * 4))
        with pytest.raises(OpcodeError):
            encode_opcode(Opcode((0,) * 4, (0, 0), (5, 0), (0,) * 4))
        with pytest.raises(OpcodeError):
            encode_opcode(Opcode((0,) * 4, (0, 0), (0, 0), (8, 0, 0, 0)))

    def test_decode_rejects_wide_word(self):
        with pytest.raises(OpcodeError):
            decode_opcode(1 << 30)

    def test_decode_rejects_bad_a1_operand(self):
        # a1 operand select of 5 is outside {m0..m3, a0}.
        word = 5 << 12
        with pytest.raises(OpcodeError):
            decode_opcode(word)


class TestTemplateRouting:
    def test_mul_sel_is_cell_column(self):
        for portfolio in candidate_portfolios()[:3]:
            for mask in portfolio.masks:
                opcode = opcode_for_template(mask)
                cols = [c for __, c in coords_from_mask(mask, 4)]
                assert list(opcode.mul_sel) == cols

    def test_rejects_wrong_cell_count(self):
        with pytest.raises(OpcodeError):
            opcode_for_template(0b111)  # 3 cells

    def test_rejects_non_default_k(self):
        with pytest.raises(OpcodeError):
            opcode_for_template(0b11, k=2)

    def test_row_template_sums_to_one_lane(self):
        from repro.core.bitmask import row_mask
        from repro.hw.opcode import NODE_A2, NODE_ZERO

        opcode = opcode_for_template(row_mask(2, 4))
        assert opcode.out_sel[2] == NODE_A2
        assert all(
            opcode.out_sel[r] == NODE_ZERO for r in (0, 1, 3)
        )

    def test_column_template_uses_no_adders(self):
        from repro.core.bitmask import col_mask
        from repro.hw.opcode import NODE_M0

        opcode = opcode_for_template(col_mask(1, 4))
        assert list(opcode.out_sel) == [
            NODE_M0, NODE_M0 + 1, NODE_M0 + 2, NODE_M0 + 3,
        ]

    def test_block_template_uses_both_pair_adders(self):
        from repro.core.bitmask import block_mask
        from repro.hw.opcode import NODE_A0, NODE_A1, NODE_ZERO

        opcode = opcode_for_template(block_mask(0, 0, 2, 2, 4))
        assert opcode.out_sel[0] == NODE_A0
        assert opcode.out_sel[1] == NODE_A1
        assert opcode.out_sel[2] == NODE_ZERO


class TestOpcodeTable:
    def test_one_opcode_per_template(self):
        portfolio = candidate_portfolios()[0]
        table = opcode_table(portfolio)
        assert len(table) == len(portfolio)
        assert all(0 <= w < (1 << 30) for w in table)

    def test_whole_universe_routable(self):
        # Every one of the 1820 possible templates must be expressible
        # in 30 bits — the claim behind the flexible pattern portfolio.
        count = 0
        for mask in template_universe(4):
            opcode = opcode_for_template(mask)
            assert encode_opcode(opcode) < (1 << 30)
            count += 1
        assert count == 1820
