"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.matrix import COOMatrix, MatrixShapeError


class TestConstruction:
    def test_basic(self):
        m = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        assert m.shape == (2, 2)
        assert m.nnz == 2

    def test_shape_inferred(self):
        m = COOMatrix([0, 4], [1, 2], [1.0, 1.0])
        assert m.shape == (5, 3)

    def test_empty(self):
        m = COOMatrix([], [], [], (3, 3))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MatrixShapeError):
            COOMatrix([0, 1], [0], [1.0, 2.0], (2, 2))

    def test_rejects_negative_coords(self):
        with pytest.raises(MatrixShapeError):
            COOMatrix([-1], [0], [1.0], (2, 2))

    def test_rejects_out_of_shape(self):
        with pytest.raises(MatrixShapeError):
            COOMatrix([2], [0], [1.0], (2, 2))

    def test_rejects_bad_shape(self):
        with pytest.raises(MatrixShapeError):
            COOMatrix([0], [0], [1.0], (2, 2, 2))

    def test_duplicates_summed(self):
        m = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert m.nnz == 1
        assert m.vals[0] == 3.0

    def test_entries_sorted_row_major(self):
        m = COOMatrix([1, 0, 0], [0, 1, 0], [1.0, 2.0, 3.0], (2, 2))
        assert m.rows.tolist() == [0, 0, 1]
        assert m.cols.tolist() == [0, 1, 0]
        assert m.vals.tolist() == [3.0, 2.0, 1.0]


class TestDenseRoundtrip:
    def test_from_dense_roundtrip(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.array_equal(m.to_dense(), small_dense)

    def test_from_dense_drops_zeros(self):
        dense = np.array([[0.0, 1.0], [0.0, 0.0]])
        m = COOMatrix.from_dense(dense)
        assert m.nnz == 1

    def test_from_dense_rejects_1d(self):
        with pytest.raises(MatrixShapeError):
            COOMatrix.from_dense(np.ones(4))


class TestSpmv:
    def test_matches_dense(self, small_dense, rng):
        m = COOMatrix.from_dense(small_dense)
        x = rng.random(32)
        assert np.allclose(m.spmv(x), small_dense @ x)

    def test_accumulates_into_y(self, small_dense, rng):
        m = COOMatrix.from_dense(small_dense)
        x = rng.random(32)
        y0 = rng.random(32)
        assert np.allclose(m.spmv(x, y0), small_dense @ x + y0)

    def test_does_not_mutate_y(self, small_coo, rng):
        x = rng.random(32)
        y0 = np.ones(32)
        small_coo.spmv(x, y0)
        assert np.array_equal(y0, np.ones(32))

    def test_rejects_wrong_x(self, small_coo):
        with pytest.raises(MatrixShapeError):
            small_coo.spmv(np.ones(5))

    def test_rejects_wrong_y(self, small_coo):
        with pytest.raises(MatrixShapeError):
            small_coo.spmv(np.ones(32), np.ones(5))

    def test_rectangular(self, rng):
        dense = np.where(rng.random((8, 20)) < 0.3, 1.0, 0.0)
        m = COOMatrix.from_dense(dense)
        x = rng.random(20)
        assert np.allclose(m.spmv(x), dense @ x)


class TestOperations:
    def test_transpose(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.array_equal(m.transpose().to_dense(), small_dense.T)

    def test_scaled(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.allclose(m.scaled(2.5).to_dense(), 2.5 * small_dense)

    def test_prune(self):
        m = COOMatrix([0, 1], [0, 1], [0.0, 2.0], (2, 2), dedup=False)
        assert m.prune().nnz == 1

    def test_density(self):
        m = COOMatrix([0], [0], [1.0], (2, 2))
        assert m.density == 0.25

    def test_storage_bytes(self):
        m = COOMatrix([0, 1], [0, 1], [1.0, 2.0], (2, 2))
        assert m.storage_bytes() == 2 * 12

    def test_equality(self):
        a = COOMatrix([0], [0], [1.0], (2, 2))
        b = COOMatrix([0], [0], [1.0], (2, 2))
        c = COOMatrix([0], [1], [1.0], (2, 2))
        assert a == b
        assert a != c

    def test_repr(self, small_coo):
        assert "COOMatrix" in repr(small_coo)
        assert str(small_coo.nnz) in repr(small_coo)
