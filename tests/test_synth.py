"""Tests for the synthetic generators and the Table II workload suite."""

import numpy as np
import pytest

from repro.core import analyze_local_patterns
from repro.core.bitmask import antidiag_mask, diag_mask, full_mask
from repro.synth import (
    WORKLOAD_SUITE,
    load_suite,
    load_workload,
    workload_names,
)
from repro.synth import generators as g


class TestGenerators:
    def test_block_diagonal_full(self):
        coo = g.block_diagonal(4, 4, fill=1.0, seed=0)
        assert coo.shape == (16, 16)
        assert coo.nnz == 64
        hist = analyze_local_patterns(coo)
        assert hist.n_distinct == 1
        assert hist.patterns[0] == full_mask(4)

    def test_block_diagonal_dbb(self):
        coo = g.block_diagonal(10, 4, fill=0.5, seed=0)
        assert 0 < coo.nnz < 160
        # Every block retains at least one entry.
        dense = coo.to_dense()
        for b in range(0, 40, 4):
            assert dense[b : b + 4, b : b + 4].any()

    def test_banded_within_band(self):
        coo = g.banded(64, 3, fill=1.0, seed=0)
        assert np.all(np.abs(coo.rows - coo.cols) <= 3)

    def test_diagonal_stripes_offsets(self):
        coo = g.diagonal_stripes(32, (0, 5), fill=1.0, seed=0)
        offsets = set((coo.cols - coo.rows).tolist())
        assert offsets == {0, 5}

    def test_anti_diagonal_stripes(self):
        coo = g.anti_diagonal_stripes(64, (0,), fill=1.0, seed=0)
        assert np.all(coo.rows + coo.cols == 63)
        hist = analyze_local_patterns(coo)
        assert int(hist.patterns[0]) in {
            antidiag_mask(s, 4) for s in range(4)
        }

    def test_fem_mesh_diagonal_blocks_dense(self):
        coo = g.fem_mesh(16, dof=4, neighbors=4, block_fill=0.5, seed=0)
        dense = coo.to_dense()
        for node in range(16):
            block = dense[node * 4 : node * 4 + 4, node * 4 : node * 4 + 4]
            assert np.all(block != 0)

    def test_fem_mesh_shape(self):
        coo = g.fem_mesh(10, dof=3, neighbors=4, seed=0)
        assert coo.shape == (30, 30)

    def test_mycielskian_sizes(self):
        # M_k has 3 * 2^(k-2) - 1 vertices.
        for order, n in ((2, 2), (3, 5), (4, 11), (5, 23)):
            coo = g.mycielskian_graph(order)
            assert coo.shape == (n, n)

    def test_mycielskian_symmetric_no_selfloops(self):
        coo = g.mycielskian_graph(6)
        dense = coo.to_dense()
        assert np.allclose(dense != 0, (dense != 0).T)
        assert np.all(np.diag(dense) == 0)

    def test_mycielskian_triangle_free(self):
        # The Mycielskian of a triangle-free graph stays triangle-free.
        coo = g.mycielskian_graph(5)
        adj = (coo.to_dense() != 0).astype(int)
        assert np.trace(adj @ adj @ adj) == 0

    def test_mycielskian_rejects_bad_order(self):
        with pytest.raises(ValueError):
            g.mycielskian_graph(1)

    def test_rmat_shape_and_symmetry(self):
        coo = g.rmat_graph(7, avg_degree=6, seed=0)
        assert coo.shape == (128, 128)
        dense = coo.to_dense() != 0
        assert np.array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 0)

    def test_rmat_skewed_degrees(self):
        coo = g.rmat_graph(9, avg_degree=8, seed=1)
        degrees = np.bincount(coo.rows, minlength=512)
        nonzero = degrees[degrees > 0]
        # Scale-free skew: max degree far above the median.
        assert nonzero.max() > 4 * np.median(nonzero)

    def test_rmat_deterministic(self):
        assert g.rmat_graph(6, seed=3) == g.rmat_graph(6, seed=3)

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            g.rmat_graph(5, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_power_law_symmetric(self):
        coo = g.power_law_graph(128, avg_degree=6, seed=0)
        dense = coo.to_dense() != 0
        assert np.array_equal(dense, dense.T)

    def test_random_uniform_density(self):
        coo = g.random_uniform(256, 0.01, seed=0)
        assert coo.density == pytest.approx(0.01, rel=0.2)

    def test_random_uniform_rectangular(self):
        coo = g.random_uniform(16, 0.05, seed=0, ncols=64)
        assert coo.shape == (16, 64)

    def test_row_segments_contiguous(self):
        coo = g.row_segments(32, 1, 8, seed=0)
        # Every row has at least one run of 8 consecutive columns.
        dense = coo.to_dense() != 0
        for r in range(32):
            row = dense[r]
            runs = np.diff(
                np.concatenate(([0], row.astype(int), [0]))
            )
            lengths = (
                np.nonzero(runs == -1)[0] - np.nonzero(runs == 1)[0]
            )
            assert lengths.max() >= 8

    def test_staircase_shape(self):
        coo = g.staircase(5, 4, 4, coupling_cols=2, fill=1.0, seed=0)
        assert coo.shape == (20, 22)

    def test_dense_rows_at_bottom(self):
        coo = g.dense_rows(64, 3, row_fill=1.0, seed=0)
        assert set(coo.rows.tolist()) == {61, 62, 63}

    def test_overlay_merges(self):
        a = g.diagonal_stripes(16, (0,), fill=1.0, seed=0)
        b = g.diagonal_stripes(16, (3,), fill=1.0, seed=1)
        merged = g.overlay(a, b)
        assert merged.nnz == a.nnz + b.nnz

    def test_overlay_requires_input(self):
        with pytest.raises(ValueError):
            g.overlay()

    def test_determinism(self):
        a = g.banded(64, 2, fill=0.5, seed=42)
        b = g.banded(64, 2, fill=0.5, seed=42)
        assert a == b

    def test_seed_changes_output(self):
        a = g.banded(64, 2, fill=0.5, seed=1)
        b = g.banded(64, 2, fill=0.5, seed=2)
        assert a != b


class TestWorkloadSuite:
    def test_twenty_workloads(self):
        assert len(WORKLOAD_SUITE) == 20
        assert len(workload_names()) == 20

    def test_names_match_table_ii(self):
        expected = {
            "mycielskian14", "ex11", "raefsky3", "mip1", "rim", "3dtube",
            "bbmat", "Chebyshev4", "Goodwin_054", "x104", "cfd2",
            "ML_Laplace", "af_0_k101", "PFlow_742", "c-73", "af_shell10",
            "tmt_sym", "tmt_unsym", "t2em", "stormG2_1000",
        }
        assert set(workload_names()) == expected

    def test_ordered_by_paper_density(self):
        densities = [spec.paper_density for spec in WORKLOAD_SUITE]
        assert densities == sorted(densities, reverse=True)

    def test_load_by_name_deterministic(self):
        a = load_workload("tmt_sym")
        b = load_workload("tmt_sym")
        assert a == b

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_workload("not_a_matrix")

    def test_scale_grows_instances(self):
        small = load_workload("ML_Laplace", scale=0.5)
        big = load_workload("ML_Laplace", scale=1.0)
        assert big.nnz > small.nnz

    def test_load_suite_subset(self):
        pairs = list(load_suite(names=["raefsky3", "t2em"]))
        assert [spec.name for spec, __ in pairs] == ["raefsky3", "t2em"]

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_buildable(self, name):
        coo = load_workload(name, scale=0.25)
        assert coo.nnz > 0
        assert coo.shape[0] > 0

    def test_raefsky3_single_pattern(self):
        hist = analyze_local_patterns(load_workload("raefsky3", 0.5))
        assert hist.n_distinct == 1  # paper: 100% one local pattern

    def test_c73_antidiag_dominated(self):
        # The top patterns must all be (partial) anti-diagonal vectors:
        # submasks of a single cyclic anti-diagonal template.
        hist = analyze_local_patterns(load_workload("c-73", 0.5))
        adiag = [antidiag_mask(s, 4) for s in range(4)]
        for pattern in hist.top(3).patterns:
            assert any(int(pattern) & ~m == 0 for m in adiag)

    def test_t2em_diag_dominated(self):
        hist = analyze_local_patterns(load_workload("t2em", 0.5))
        diag = [diag_mask(s, 4) for s in range(4)]
        for pattern in hist.top(3).patterns:
            assert any(int(pattern) & ~m == 0 for m in diag)

    def test_mip1_imbalanced(self):
        from repro.baselines import matrix_stats

        stats = matrix_stats(load_workload("mip1", 0.5))
        assert stats.row_cv > 2.0
