"""Tests for the serving layer: deadlines, registry, admission,
degradation ladder, the server end to end, and chaos-under-load.

The correctness contract under test everywhere: an ``ok`` response is
bitwise-trustworthy (guarded plan path or verified naive rung), and a
request that cannot be answered in time is shed — never answered late,
never answered unverified.
"""

import threading

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.pipeline import ArtifactCache
from repro.resilience import (
    FaultInjector,
    IntegrityError,
    clone_spasm,
    run_chaos_campaign,
)
from repro.resilience.chaos import render_chaos_report
from repro.resilience.guard import ExecutionGuard, GuardConfig
from repro.serve import (
    LEVELS,
    AdmissionConfig,
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    PlanRegistry,
    RequestShed,
    SpmvServer,
    TenantSpec,
    UnknownMatrixError,
    make_probes,
    run_load,
    serve_matrices,
    tenant_probes,
)
from tests.conftest import random_structured_coo

#: Confront every in-place fault on the very next call: re-pin the
#: stream digest and re-validate the plan each acquire, so the stress
#: tests below are deterministic (ok implies bitwise-correct).
PARANOID_GUARD = GuardConfig(
    validate_plan=True,
    repin_interval=1,
    revalidate_interval=1,
    check_interval=1,
    check_rows=2,
    max_attempts=2,
    backoff_s=0.0,
    max_retry_wall_s=1.0,
)


def make_spasm(rng, n=96, kind="mixed"):
    coo = random_structured_coo(rng, n, kind)
    return encode_spasm(coo, candidate_portfolios()[0], 32)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == 2.0
        assert not deadline.expired
        clock.t = 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        clock.t = 2.5
        assert deadline.remaining() == 0.0
        assert deadline.expired
        assert deadline.elapsed() == pytest.approx(2.5)

    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.t = 1e9
        assert deadline.remaining() == np.inf
        assert not deadline.expired
        deadline.check()  # no raise
        assert "unbounded" in deadline.render()

    def test_check_raises_with_context(self):
        clock = FakeClock()
        deadline = Deadline(0.25, clock=clock)
        deadline.check("queue wait")
        clock.t = 0.5
        with pytest.raises(DeadlineExceeded, match="queue wait"):
            deadline.check("queue wait")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        assert deadline.budget_s == pytest.approx(0.25)
        assert Deadline.after_ms(None, clock=clock).budget_s is None

    def test_sleep_clipped_to_budget(self):
        # Real clock here: the clip must bound actual wall time.
        deadline = Deadline(0.01)
        slept = deadline.sleep(5.0)
        assert slept <= 0.01 + 1e-3
        assert deadline.sleep(5.0) <= deadline.budget_s
        exhausted = Deadline(0.0)
        assert exhausted.sleep(5.0) == 0.0


class TestGuardDeadline:
    """The retry ladder must respect per-request deadlines."""

    def failing_guard(self, rng, fail_times):
        spasm = make_spasm(rng)
        guard = ExecutionGuard(
            spasm,
            config=GuardConfig(max_attempts=3, backoff_s=0.001,
                               check_interval=0, validate_plan=False),
            seed=7,
        )
        state = {"left": fail_times}
        original = guard._checked_output

        def flaky(plan, x, jobs, attempt):
            if state["left"] > 0:
                state["left"] -= 1
                raise RuntimeError("injected kernel failure")
            return original(plan, x, jobs, attempt)

        guard._checked_output = flaky
        return spasm, guard

    def test_expired_deadline_short_circuits_retries(self, rng):
        spasm, guard = self.failing_guard(rng, fail_times=10)
        x = rng.standard_normal(spasm.shape[1])
        clock = FakeClock()
        y = guard.spmv(x, deadline=Deadline(0.0, clock=clock))
        # Recovery jumped straight to the (verified) naive fallback
        # instead of burning retries the request had no budget for.
        assert np.array_equal(y, spasm.spmv_naive(x))
        kinds = [e.kind for e in guard.log.events]
        assert "deadline" in kinds
        assert "fallback" in kinds

    def test_generous_deadline_allows_recovery(self, rng):
        spasm, guard = self.failing_guard(rng, fail_times=1)
        x = rng.standard_normal(spasm.shape[1])
        y = guard.spmv(x, deadline=Deadline(30.0))
        assert np.array_equal(y, spasm.spmv(x))
        kinds = [e.kind for e in guard.log.events]
        assert "deadline" not in kinds
        assert "fallback" not in [e.action for e in guard.log.events]


class TestPlanRegistry:
    def test_register_needs_exactly_one_source(self, rng):
        registry = PlanRegistry()
        with pytest.raises(ValueError):
            registry.register("x")
        with pytest.raises(ValueError):
            registry.register("x", coo=object(), spasm=object())

    def test_unknown_matrix(self):
        registry = PlanRegistry()
        with pytest.raises(UnknownMatrixError, match="not registered"):
            registry.acquire("ghost")

    def test_cold_registration_warms_on_acquire(self, rng):
        registry = PlanRegistry()
        entry = registry.register("a", spasm=make_spasm(rng),
                                  warm=False)
        assert not entry.hot and entry.guard is None
        lease = registry.acquire("a")
        assert entry.hot and lease.guard is not None
        assert entry.in_flight == 1
        registry.release(lease)
        assert entry.in_flight == 0

    def test_evict_refused_while_leased(self, rng):
        registry = PlanRegistry()
        registry.register("a", spasm=make_spasm(rng))
        lease = registry.acquire("a")
        assert registry.evict("a") is False
        registry.release(lease)
        assert registry.evict("a") is True
        assert not registry._entries["a"].hot
        # Re-acquire transparently re-warms.
        lease = registry.acquire("a")
        assert lease.entry.hot
        registry.release(lease)

    def test_byte_budget_evicts_lru(self, rng):
        registry = PlanRegistry()
        for name in ("a", "b", "c"):
            registry.register(name, spasm=make_spasm(rng))
        one_plan = registry._entries["a"].plan_nbytes
        # Budget fits roughly two plans: keeping all three hot must
        # evict the least recently used.
        registry.byte_budget = int(2.5 * one_plan)
        for name in ("a", "b", "c"):  # c most recent, a least
            registry.release(registry.acquire(name))
        assert registry.hot_bytes() <= registry.byte_budget
        assert registry.evicted_total > 0
        assert not registry._entries["a"].hot  # LRU victim
        assert registry._entries["c"].hot
        assert any(e.kind == "evict" for e in registry.log.events)

    def test_leased_entries_survive_budget_pressure(self, rng):
        registry = PlanRegistry()
        registry.register("a", spasm=make_spasm(rng))
        registry.register("b", spasm=make_spasm(rng))
        registry.byte_budget = 1  # nothing fits
        lease_a = registry.acquire("a")
        lease_b = registry.acquire("b")
        # Both over budget yet leased: eviction is deferred, logged.
        assert registry._entries["a"].hot
        assert registry._entries["b"].hot
        assert any(
            e.kind == "evict" and e.action == "none"
            for e in registry.log.events
        )
        registry.release(lease_a)
        registry.release(lease_b)

    def test_replace_swaps_stream_and_goes_cold(self, rng):
        registry = PlanRegistry()
        spasm = make_spasm(rng)
        registry.register("a", spasm=clone_spasm(spasm))
        x = rng.standard_normal(spasm.shape[1])
        lease = registry.acquire("a")
        before = lease.guard.spmv(x)
        registry.release(lease)
        registry.replace("a", clone_spasm(spasm))
        entry = registry._entries["a"]
        assert not entry.hot
        lease = registry.acquire("a")
        assert np.array_equal(lease.guard.spmv(x), before)
        registry.release(lease)

    def test_tuned_record_picked_up_from_cache(self, rng, tmp_path):
        from repro.pipeline.cache import matrix_digest
        from repro.tune import TunedConfig, store_tuned

        coo = random_structured_coo(rng, 96, "mixed")
        cache = ArtifactCache(tmp_path)
        store_tuned(cache, TunedConfig(
            matrix_digest=matrix_digest(coo), portfolio="default",
            tile_size=32, index="int64", precision="fp64",
            backend="csr", jobs=1, batch_block=8,
            structure_bitwise=False, spmv_ms=0.1,
            default_spmv_ms=0.2, batch_qps=10.0,
            default_batch_qps=5.0, model_cycles=100,
            candidates_total=4, candidates_measured=4,
        ))
        registry = PlanRegistry(cache=cache)
        entry = registry.register("a", coo=coo)
        assert entry.tuned is not None
        assert entry.tuned.backend == "csr"
        assert entry.guard.backend == "csr"
        # Cold registrations get their pin at warmup (one cache scan
        # covers every registered digest).
        other = PlanRegistry(cache=cache)
        cold = other.register("a", coo=coo, warm=False)
        assert cold.tuned is None
        summary = other.warmup()
        assert summary["tuned"] == ["a"]
        assert cold.tuned is not None
        assert cold.guard.backend == "csr"

    def test_evict_while_executing_race(self, rng):
        """Threaded stress: queries race the byte-budget evictor and a
        seeded fault injector; every ok result must stay bitwise-true
        and every fault must surface as IntegrityError."""
        pristine = {
            "a": make_spasm(rng, n=96, kind="blocks"),
            "b": make_spasm(rng, n=96, kind="scatter"),
        }
        registry = PlanRegistry(guard_config=PARANOID_GUARD, seed=3)
        for name, spasm in pristine.items():
            registry.register(name, spasm=clone_spasm(spasm))
        # Budget below two plans: every cross-matrix switch evicts.
        registry.byte_budget = max(
            e.plan_nbytes for e in registry._entries.values()
        )
        probes = {
            name: rng.standard_normal(spasm.shape[1])
            for name, spasm in pristine.items()
        }
        refs = {
            name: pristine[name].spmv_naive(probes[name])
            for name in pristine
        }
        errors = []
        integrity_hits = threading.Semaphore(0)

        def worker(widx):
            wrng = np.random.default_rng(100 + widx)
            for _ in range(25):
                name = ("a", "b")[int(wrng.integers(2))]
                lease = registry.acquire(name)
                try:
                    y = lease.guard.spmv(probes[name])
                    if not np.array_equal(y, refs[name]):
                        errors.append(f"wrong result for {name}")
                except IntegrityError:
                    integrity_hits.release()
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"{type(exc).__name__}: {exc}")
                finally:
                    registry.release(lease)

        def saboteur():
            injector = FaultInjector(seed=42)
            for round_idx in range(8):
                name = ("a", "b")[round_idx % 2]
                lease = registry.acquire(name)
                try:
                    injector.flip_value(lease.spasm)
                    # Hold the lease while queries hit the corrupt
                    # stream: in_flight pins the entry hot, so budget
                    # pressure can never evict it and re-warm a fresh
                    # guard that would pin the corrupted stream as
                    # ground truth.  Heal before releasing for the
                    # same reason.
                    for _ in range(20):
                        if integrity_hits.acquire(timeout=0.05):
                            break
                    registry.replace(
                        name, clone_spasm(pristine[name])
                    )
                finally:
                    registry.release(lease)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=saboteur)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert registry.evicted_total > 0  # the race was real
        for entry in registry._entries.values():
            assert entry.in_flight == 0


class Item:
    """Duck-typed admission item."""

    def __init__(self, plan, deadline=None):
        self.plan = plan
        self.deadline = deadline


class TestAdmission:
    def test_per_plan_queue_bound(self):
        ctl = AdmissionController(AdmissionConfig(
            max_queue_per_plan=2, max_total=100))
        ctl.submit(Item("a"))
        ctl.submit(Item("a"))
        with pytest.raises(RequestShed) as exc:
            ctl.submit(Item("a"))
        assert exc.value.reason == "queue_full"
        ctl.submit(Item("b"))  # other plans unaffected
        assert ctl.stats()["shed"] == {"queue_full": 1}

    def test_global_overload_bound(self):
        ctl = AdmissionController(AdmissionConfig(
            max_queue_per_plan=100, max_total=3))
        for i in range(3):
            ctl.submit(Item(f"p{i}"))
        with pytest.raises(RequestShed) as exc:
            ctl.submit(Item("p9"))
        assert exc.value.reason == "overload"
        assert ctl.pressure() == pytest.approx(1.0)

    def test_hopeless_deadline_shed_at_door(self):
        ctl = AdmissionController(AdmissionConfig(min_deadline_s=0.01))
        clock = FakeClock()
        fresh = Deadline(1.0, clock=clock)
        stale = Deadline(1.0, clock=clock)
        ctl.submit(Item("a", deadline=fresh))
        clock.t = 0.995  # 5ms left: below the admission floor
        with pytest.raises(RequestShed) as exc:
            ctl.submit(Item("a", deadline=stale))
        assert exc.value.reason == "deadline"

    def test_closed_sheds(self):
        ctl = AdmissionController()
        ctl.close()
        with pytest.raises(RequestShed) as exc:
            ctl.submit(Item("a"))
        assert exc.value.reason == "closed"
        assert ctl.take(timeout=0.01) is None

    def test_round_robin_across_plans(self):
        ctl = AdmissionController()
        for plan in ("a", "a", "a", "b", "c"):
            ctl.submit(Item(plan))
        order = [ctl.take(timeout=0.01).plan for _ in range(5)]
        # One hot plan cannot starve the others.
        assert order[:3] == ["a", "b", "c"]
        assert order[3:] == ["a", "a"]

    def test_drain_matching_feeds_batches(self):
        ctl = AdmissionController()
        for plan in ("a", "b", "a", "a"):
            ctl.submit(Item(plan))
        first = ctl.take(timeout=0.01)
        assert first.plan == "a"
        siblings = ctl.drain_matching("a", limit=8)
        assert [s.plan for s in siblings] == ["a", "a"]
        assert ctl.depth() == 1  # only b remains

    def test_take_timeout_returns_none(self):
        assert AdmissionController().take(timeout=0.01) is None


class TestDegradationLadder:
    def test_degrades_one_rung_per_observation(self):
        ladder = DegradationLadder()
        names = [ladder.observe(1.0).name for _ in range(5)]
        assert names == ["auto", "narrow", "naive", "naive", "naive"]
        assert ladder.transitions == 3

    def test_restore_needs_sustained_calm(self):
        ladder = DegradationLadder(hold=3)
        ladder.observe(1.0)
        assert ladder.level.name == "auto"
        ladder.observe(0.0)
        ladder.observe(0.0)
        assert ladder.level.name == "auto"  # hold not met yet
        ladder.observe(0.0)
        assert ladder.level.name == "tuned"

    def test_mid_band_resets_calm(self):
        ladder = DegradationLadder(hold=2, degrade_at=0.75,
                                   restore_at=0.25)
        ladder.observe(0.9)
        ladder.observe(0.1)
        ladder.observe(0.5)  # sawtooth back into the dead band
        ladder.observe(0.1)
        assert ladder.level.name == "auto"  # calm streak was broken
        ladder.observe(0.1)
        assert ladder.level.name == "tuned"

    def test_transitions_logged(self):
        ladder = DegradationLadder()
        ladder.observe(1.0)
        kinds = [e.kind for e in ladder.log.events]
        assert kinds == ["degrade"]

    def test_force_and_unknown_level(self):
        ladder = DegradationLadder()
        assert ladder.force("naive").naive
        assert ladder.force("tuned").name == "tuned"
        with pytest.raises(ValueError, match="unknown service level"):
            ladder.force("turbo")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DegradationLadder(degrade_at=0.2, restore_at=0.5)

    def test_ladder_shape(self):
        assert [lvl.name for lvl in LEVELS] == \
            ["tuned", "auto", "narrow", "naive"]
        assert LEVELS[0].use_tuned and not LEVELS[0].naive
        assert LEVELS[-1].naive and LEVELS[-1].batch_window == 1


@pytest.fixture
def small_server(rng):
    spasm = make_spasm(rng)
    registry = PlanRegistry(seed=5)
    registry.register("m", spasm=spasm)
    ladder = DegradationLadder(log=registry.log, hold=10_000)
    server = SpmvServer(registry, ladder=ladder, workers=1)
    with server:
        yield server, spasm


class TestSpmvServer:
    def test_ok_response_is_bitwise_plan_output(self, small_server, rng):
        server, spasm = small_server
        x = rng.standard_normal(spasm.shape[1])
        response = server.query("m", x, tenant="t")
        assert response.ok and response.status == "ok"
        assert np.array_equal(response.y, spasm.spmv(x))
        assert response.level == "tuned"
        assert response.latency_s >= 0

    def test_unknown_plan_fails_cleanly(self, small_server, rng):
        server, spasm = small_server
        response = server.query("ghost", np.ones(4))
        assert response.status == "failed"
        assert "not registered" in response.detail

    def test_expired_deadline_shed_at_submission(self, small_server,
                                                 rng):
        server, spasm = small_server
        x = rng.standard_normal(spasm.shape[1])
        response = server.query("m", x, deadline=Deadline(0.0))
        assert response.status == "shed"
        assert response.y is None
        assert "deadline" in response.detail

    def test_submit_after_stop_sheds_closed(self, rng):
        registry = PlanRegistry()
        registry.register("m", spasm=make_spasm(rng))
        server = SpmvServer(registry, workers=1)
        server.start()
        server.stop()
        response = server.submit("m", np.ones(4)).result()
        assert response.status == "shed"
        assert "closed" in response.detail

    def test_batch_coalescing_is_bitwise(self, rng):
        spasm = make_spasm(rng)
        registry = PlanRegistry(seed=5)
        registry.register("m", spasm=spasm)
        server = SpmvServer(registry, workers=1)
        xs = rng.standard_normal((6, spasm.shape[1]))
        # Queue everything before the worker exists, so the first
        # take() coalesces the whole backlog into one batch.
        futures = [server.submit("m", x) for x in xs]
        with server:
            responses = [f.result() for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.batched for r in responses) > 1
        for x, r in zip(xs, responses):
            assert np.array_equal(r.y, spasm.spmv(x))

    def test_naive_rung_matches_reference(self, small_server, rng):
        server, spasm = small_server
        server.ladder.force("naive")
        x = rng.standard_normal(spasm.shape[1])
        response = server.query("m", x)
        assert response.ok and response.level == "naive"
        assert np.array_equal(response.y, spasm.spmv_naive(x))

    def test_naive_rung_refuses_untrusted_stream(self, rng):
        spasm = make_spasm(rng)
        registry = PlanRegistry(seed=5)
        registry.register("m", spasm=clone_spasm(spasm))
        ladder = DegradationLadder(log=registry.log, hold=10_000)
        with SpmvServer(registry, ladder=ladder, workers=1) as server:
            server.ladder.force("naive")
            lease = registry.acquire("m")
            FaultInjector(seed=1).flip_value(lease.spasm)
            registry.release(lease)
            x = rng.standard_normal(spasm.shape[1])
            response = server.query("m", x)
            assert response.status == "failed"
            assert "integrity" in response.detail
            # Heal and the rung serves again.
            registry.replace("m", clone_spasm(spasm))
            healed = server.query("m", x)
            assert healed.ok
            assert np.array_equal(healed.y, spasm.spmv_naive(x))

    def test_stats_and_health(self, small_server, rng):
        server, spasm = small_server
        server.query("m", rng.standard_normal(spasm.shape[1]))
        stats = server.stats()
        assert stats["completed"]["ok"] >= 1
        assert stats["registry"]["entries"][0]["name"] == "m"
        assert "shed" in stats["admission"]
        health = server.health()
        assert health["status"] == "ok"
        assert health["level"] == "tuned"
        assert health["hot_bytes"] > 0

    def test_serve_matrices_one_call_setup(self, rng, tmp_path):
        coo = random_structured_coo(rng, 64, "mixed")
        server = serve_matrices(
            {"m": coo}, cache=ArtifactCache(tmp_path), workers=1,
        )
        with server:
            x = rng.standard_normal(coo.shape[1])
            response = server.query("m", x)
            assert response.ok
            entry = server.registry._entries["m"]
            assert np.array_equal(response.y, entry.spasm.spmv(x))


class TestLoadGeneration:
    def test_probe_pools_deterministic(self):
        a = make_probes(16, 3, seed=9)
        b = make_probes(16, 3, seed=9)
        assert np.array_equal(a, b)
        assert a.shape == (3, 16)
        tenants = [TenantSpec("t0", "m"), TenantSpec("t1", "m")]
        pools = tenant_probes(tenants, {"m": 16}, seed=9)
        assert set(pools) == {"t0", "t1"}
        assert not np.array_equal(pools["t0"], pools["t1"])

    def test_run_load_accounts_every_request(self, small_server):
        server, spasm = small_server
        tenants = [
            TenantSpec("fast", "m", weight=2.0, deadline_ms=5000.0,
                       n_probes=2),
            TenantSpec("slow", "m", weight=1.0, n_probes=2),
        ]
        probes = tenant_probes(
            tenants, {"m": int(spasm.shape[1])}, seed=3)
        report = run_load(server, tenants, probes, n_requests=20,
                          seed=3)
        assert len(report.records) == 20
        assert sum(report.counts().values()) == 20
        assert report.counts().get("ok", 0) > 0
        summary = report.summary()
        assert summary["requests"] == 20
        assert set(summary["latency_ms"]) == {"p50", "p95", "p99"}
        # Seeded: the same load replays the same tenant sequence.
        replay = run_load(server, tenants, probes, n_requests=20,
                          seed=3)
        assert [r.tenant for r in replay.records] == \
            [r.tenant for r in report.records]


class TestChaosSmoke:
    """A miniature chaos campaign as a tier-1 gate (the full smoke
    preset runs in benchmarks/bench_serve.py)."""

    SPEC = {
        "matrices": [("tmt_sym", 0.3)],
        "tenants": [("t0", 0, 1.0, None, 2)],
        "workers": 1,
        "max_queue_per_plan": 16,
        "max_total": 32,
        "clean_requests": 10,
        "burst_requests": 6,
        "waves_per_surface": 1,
        "surfaces": ["stream", "value", "plan", "cache"],
    }

    def test_zero_escapes(self, tmp_path):
        report = run_chaos_campaign(self.SPEC, seed=0,
                                    cache_dir=tmp_path)
        assert report["zero_escapes"]
        totals = report["chaos"]["totals"]
        assert totals["escaped"] == 0
        assert report["clean"]["audit"]["escaped"] == 0
        # Every burst request is accounted for, and the campaign
        # exercised each configured surface.
        waves = report["chaos"]["waves"]
        assert {w["surface"] for w in waves} == set(
            self.SPEC["surfaces"])
        assert totals["requests"] == sum(
            w["requests"] for w in waves)
        text = render_chaos_report(report)
        assert "PASS" in text

    def test_campaign_reproducible(self, tmp_path):
        first = run_chaos_campaign(self.SPEC, seed=7,
                                   cache_dir=tmp_path / "a")
        second = run_chaos_campaign(self.SPEC, seed=7,
                                    cache_dir=tmp_path / "b")
        strip = ["latency_ms", "qps", "wall_s"]

        def comparable(rep):
            waves = [
                {k: v for k, v in w.items() if k not in strip}
                for w in rep["chaos"]["waves"]
            ]
            return (rep["chaos"]["totals"], waves,
                    rep["clean"]["audit"])

        assert comparable(first) == comparable(second)

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            run_chaos_campaign("hurricane")
