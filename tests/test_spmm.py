"""Tests for the multi-vector (SpMM) extension."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.hw.configs import SPASM_4_1
from repro.hw.perf_model import (
    estimate_spmm_gflops,
    perf_breakdown,
    perf_breakdown_spmm,
)
from tests.conftest import random_structured_coo


@pytest.fixture(scope="module")
def portfolio():
    return candidate_portfolios()[0]


class TestSpmmSemantics:
    def test_matches_dense(self, rng, portfolio):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        x_block = rng.random((64, 5))
        assert np.allclose(
            spasm.spmm(x_block), coo.to_dense() @ x_block
        )

    def test_accumulates(self, rng, portfolio):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        x_block = rng.random((64, 3))
        y0 = rng.random((64, 3))
        assert np.allclose(
            spasm.spmm(x_block, y0), coo.to_dense() @ x_block + y0
        )

    def test_single_column_matches_spmv(self, rng, portfolio):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        x = rng.random(64)
        assert np.allclose(
            spasm.spmm(x[:, None])[:, 0], spasm.spmv(x)
        )

    def test_unaligned_shape(self, rng, portfolio):
        from repro.matrix import COOMatrix

        dense = np.where(rng.random((67, 67)) < 0.1, 1.0, 0.0)
        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, portfolio, 16)
        x_block = rng.random((67, 4))
        assert np.allclose(spasm.spmm(x_block), dense @ x_block)

    def test_rejects_bad_shapes(self, rng, portfolio):
        coo = random_structured_coo(rng, 32, "mixed")
        spasm = encode_spasm(coo, portfolio, 16)
        with pytest.raises(ValueError):
            spasm.spmm(np.ones(32))  # 1-D
        with pytest.raises(ValueError):
            spasm.spmm(np.ones((5, 2)))
        with pytest.raises(ValueError):
            spasm.spmm(np.ones((32, 2)), np.ones((32, 3)))


class TestAcceleratorSpmm:
    def test_run_spmm_exact(self, rng, portfolio):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        x_block = rng.random((64, 4))
        result = SpasmAccelerator(SPASM_4_1).run_spmm(spasm, x_block)
        assert np.allclose(result.y, coo.to_dense() @ x_block)

    def test_run_spmm_accounting(self, rng, portfolio):
        from repro.hw import SPASM_4_1, SpasmAccelerator

        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, portfolio, 32)
        x_block = rng.random((64, 4))
        acc = SpasmAccelerator(SPASM_4_1)
        multi = acc.run_spmm(spasm, x_block)
        single = acc.run(spasm, x_block[:, 0], engine="fast")
        # Per-PE work scales with the batch; cycles grow sublinearly
        # (A-stream amortization).
        assert multi.pe_groups_executed.sum() == 4 * spasm.n_groups
        assert multi.cycles < 4 * single.cycles
        assert multi.cycles >= single.cycles


class TestSpmmPerfModel:
    def make_gc(self, rng, portfolio):
        coo = random_structured_coo(rng, 256, "mixed")
        spasm = encode_spasm(coo, portfolio, 64)
        return coo, spasm.global_composition()

    def test_n1_equals_spmv_model(self, rng, portfolio):
        __, gc = self.make_gc(rng, portfolio)
        single = perf_breakdown(gc, SPASM_4_1)
        multi = perf_breakdown_spmm(gc, SPASM_4_1, 1)
        assert multi.total_cycles == single.total_cycles

    def test_a_stream_amortized(self, rng, portfolio):
        __, gc = self.make_gc(rng, portfolio)
        multi = perf_breakdown_spmm(gc, SPASM_4_1, 8)
        single = perf_breakdown(gc, SPASM_4_1)
        assert multi.value_stream_cycles == single.value_stream_cycles
        assert multi.compute_cycles == 8 * single.compute_cycles

    def test_throughput_grows_with_vectors(self, rng, portfolio):
        coo, gc = self.make_gc(rng, portfolio)
        g1 = estimate_spmm_gflops(
            gc, SPASM_4_1, coo.nnz, coo.shape[0], 1
        )
        g8 = estimate_spmm_gflops(
            gc, SPASM_4_1, coo.nnz, coo.shape[0], 8
        )
        assert g8 > g1

    def test_throughput_saturates_below_peak(self, rng, portfolio):
        coo, gc = self.make_gc(rng, portfolio)
        for n in (1, 4, 16, 64):
            gf = estimate_spmm_gflops(
                gc, SPASM_4_1, coo.nnz, coo.shape[0], n
            )
            assert gf <= SPASM_4_1.peak_gflops * 1.001

    def test_rejects_bad_vector_count(self, rng, portfolio):
        __, gc = self.make_gc(rng, portfolio)
        with pytest.raises(ValueError):
            perf_breakdown_spmm(gc, SPASM_4_1, 0)
