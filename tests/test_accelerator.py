"""End-to-end functional simulation tests (format + opcodes + datapath)."""

import numpy as np
import pytest

from repro.core import candidate_portfolios, encode_spasm
from repro.hw import DEFAULT_CONFIGS, SPASM_3_2, SPASM_4_1, SpasmAccelerator
from repro.synth import generators as g
from tests.conftest import random_structured_coo


class TestNumericalCorrectness:
    @pytest.mark.parametrize("kind", ["mixed", "blocks", "scatter"])
    def test_sim_matches_reference(self, rng, kind):
        coo = random_structured_coo(rng, 96, kind)
        portfolio = candidate_portfolios()[0]
        spasm = encode_spasm(coo, portfolio, 32)
        x = rng.random(96)
        result = SpasmAccelerator(SPASM_4_1).run(spasm, x)
        assert np.allclose(result.y, coo.spmv(x))

    @pytest.mark.parametrize("config", DEFAULT_CONFIGS,
                             ids=lambda c: c.name)
    def test_all_configs_agree(self, rng, config):
        coo = random_structured_coo(rng, 64, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[3], 16)
        x = rng.random(64)
        result = SpasmAccelerator(config).run(spasm, x)
        assert np.allclose(result.y, coo.spmv(x))

    def test_accumulates_into_y(self, rng):
        coo = random_structured_coo(rng, 64, "blocks")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        x = rng.random(64)
        y0 = rng.random(64)
        result = SpasmAccelerator(SPASM_3_2).run(spasm, x, y0)
        assert np.allclose(result.y, coo.spmv(x, y0))

    def test_structured_generators(self, rng):
        portfolio = candidate_portfolios()[4]
        for coo in (
            g.diagonal_stripes(64, (0, 5), fill=0.8, seed=1),
            g.anti_diagonal_stripes(64, (0, -9), fill=0.8, seed=2),
            g.banded(64, 2, fill=0.7, seed=3),
        ):
            spasm = encode_spasm(coo, portfolio, 16)
            x = rng.random(coo.shape[1])
            result = SpasmAccelerator(SPASM_4_1).run(spasm, x)
            assert np.allclose(result.y, coo.spmv(x))

    def test_non_square(self, rng):
        dense = np.where(rng.random((24, 60)) < 0.15, 1.0, 0.0)
        from repro.matrix import COOMatrix

        coo = COOMatrix.from_dense(dense)
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        x = rng.random(60)
        result = SpasmAccelerator(SPASM_3_2).run(spasm, x)
        assert np.allclose(result.y, dense @ x)

    def test_empty_matrix(self):
        from repro.matrix import COOMatrix

        spasm = encode_spasm(
            COOMatrix([], [], [], (16, 16)), candidate_portfolios()[0], 16
        )
        result = SpasmAccelerator(SPASM_4_1).run(spasm, np.ones(16))
        assert np.allclose(result.y, 0.0)


class TestSimAccounting:
    def test_group_conservation(self, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        result = SpasmAccelerator(SPASM_4_1).run(spasm, np.ones(96))
        assert result.pe_groups_executed.sum() == spasm.n_groups

    def test_cycles_positive_and_metrics(self, rng):
        coo = random_structured_coo(rng, 96, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
        result = SpasmAccelerator(SPASM_4_1).run(spasm, np.ones(96))
        assert result.cycles > 0
        assert result.time_s == pytest.approx(
            result.cycles / SPASM_4_1.frequency_hz
        )
        assert result.gflops > 0
        assert result.hbm_bytes > 0
        assert result.bottleneck in {
            "compute", "value-stream", "position-stream", "x-load", "y",
        }

    def test_rejects_bad_x(self, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        with pytest.raises(ValueError):
            SpasmAccelerator(SPASM_4_1).run(spasm, np.ones(5))

    def test_rejects_bad_y(self, rng):
        coo = random_structured_coo(rng, 32, "mixed")
        spasm = encode_spasm(coo, candidate_portfolios()[0], 16)
        with pytest.raises(ValueError):
            SpasmAccelerator(SPASM_4_1).run(
                spasm, np.ones(32), np.ones(5)
            )
