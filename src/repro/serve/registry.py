"""Hot-plan registry: many matrices resident, bounded bytes.

The serving layer keeps one :class:`PlanEntry` per registered matrix.
An entry is *hot* when its compiled :class:`~repro.exec.plan.ExecutionPlan`
and :class:`~repro.resilience.guard.ExecutionGuard` are resident, and
*cold* when only the encoded stream remains — warming a cold entry is
a cache load (the plan artifact and any
:class:`~repro.tune.TunedConfig` record persist in the
:class:`~repro.pipeline.cache.ArtifactCache`), not a recompile.

Hot bytes are bounded by ``byte_budget``: acquiring a plan that would
blow the budget evicts the least-recently-used hot entries first.
Eviction is safe while requests are executing — an entry with leases
outstanding (``in_flight > 0``) is never evicted, and a
:class:`Lease` snapshots the guard/tuned handles under the registry
lock so a concurrent evict-or-replace can never yank state mid-call.
Every eviction and warmup is logged as a structured
:class:`~repro.resilience.guard.ResilienceEvent` on the shared log.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, List, Optional

from repro.resilience.guard import (
    ExecutionGuard,
    GuardConfig,
    ResilienceEvent,
    ResilienceLog,
)

#: Guard knobs of the serving layer: plans are validated on (re)warm
#: and the sampled oracle runs frequently enough that a corrupted plan
#: is confronted within a handful of requests, while the clean path
#: stays cheap.  ``backoff_s`` is non-zero so retry ladders are real
#: (and therefore must be deadline-clipped).
SERVE_GUARD = GuardConfig(
    validate_plan=True,
    check_interval=4,
    check_rows=4,
    max_attempts=2,
    backoff_s=0.001,
    max_retry_wall_s=5.0,
)


class UnknownMatrixError(KeyError):
    """A query named a matrix nobody registered."""


class PlanEntry:
    """One registered matrix and its serving state.

    Mutable fields are guarded by the owning registry's lock; request
    workers never touch an entry directly — they hold a
    :class:`Lease`.
    """

    def __init__(self, name: str, spasm: Any,
                 digest: Optional[str] = None):
        self.name = name
        self.spasm = spasm
        #: COO content digest (tuned-record key); ``None`` when the
        #: entry was registered from a pre-encoded stream.
        self.digest = digest
        self.tuned: Any = None
        self.guard: Optional[ExecutionGuard] = None
        self.hot = False
        self.plan_nbytes = 0
        self.in_flight = 0
        self.last_tick = 0
        self.hits = 0
        self.warms = 0
        self.evictions = 0

    def describe(self) -> Dict[str, Any]:
        """JSON-ready snapshot for health/stats endpoints."""
        return {
            "name": self.name,
            "shape": list(self.spasm.shape),
            "nnz": int(self.spasm.source_nnz),
            "hot": self.hot,
            "plan_bytes": int(self.plan_nbytes),
            "tuned": self.tuned is not None,
            "in_flight": int(self.in_flight),
            "hits": int(self.hits),
            "warms": int(self.warms),
            "evictions": int(self.evictions),
        }


@dataclasses.dataclass(frozen=True)
class Lease:
    """A consistent snapshot of one entry's execution handles.

    Taken under the registry lock at :meth:`PlanRegistry.acquire`
    time; the holder executes through :attr:`guard` (or
    :attr:`spasm` for the naive ladder rung) and must
    :meth:`PlanRegistry.release` when done.  Because the snapshot is
    immutable, a concurrent evict/replace of the entry can never
    leave the holder with half-swapped state.
    """

    entry: PlanEntry
    spasm: Any
    guard: ExecutionGuard
    tuned: Any


class PlanRegistry:
    """LRU-bounded collection of hot execution plans.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.pipeline.cache.ArtifactCache`; plans
        persist into it on first build (so re-warming is a load) and
        :func:`~repro.tune.load_tuned` records found under a
        registered matrix's digest pin the tuned backend.
    byte_budget:
        Cap on the summed ``plan.nbytes`` of hot entries; ``None`` is
        unbounded.  The budget is enforced on every acquire; entries
        with leases outstanding are exempt, so the registry can run
        transiently over budget rather than evict an executing plan.
    guard_config:
        :class:`~repro.resilience.guard.GuardConfig` for per-entry
        guards (default :data:`SERVE_GUARD`).
    log:
        Shared :class:`~repro.resilience.guard.ResilienceLog`; evict/
        warm incidents and every guard incident land here.
    seed:
        Base seed; entry guards derive their oracle seeds from it.
    """

    def __init__(self, cache: Any = None,
                 byte_budget: Optional[int] = None,
                 guard_config: Optional[GuardConfig] = None,
                 log: Optional[ResilienceLog] = None,
                 seed: int = 0):
        self.cache = cache
        self.byte_budget = int(byte_budget) if byte_budget else None
        self.guard_config = guard_config or SERVE_GUARD
        self.log = log or ResilienceLog()
        self.seed = int(seed)
        self._lock = threading.RLock()
        self._entries: Dict[str, PlanEntry] = {}
        self._tick = 0
        self._guard_seq = 0
        self.evicted_total = 0

    # -- registration ---------------------------------------------------

    def register(self, name: str, coo: Any = None,
                 spasm: Any = None, warm: bool = True) -> PlanEntry:
        """Register a matrix under ``name`` (idempotent per name).

        Pass either a COO matrix (compiled through
        :class:`~repro.core.framework.SpasmCompiler`, pipeline stages
        cached) or a pre-encoded ``spasm`` stream.  ``warm=True``
        builds the plan and guard immediately; ``warm=False`` defers
        to the first acquire (cold registration).
        """
        if (coo is None) == (spasm is None):
            raise ValueError(
                "register() needs exactly one of coo= or spasm="
            )
        digest = None
        if coo is not None:
            from repro.core import SpasmCompiler
            from repro.pipeline.cache import matrix_digest

            digest = matrix_digest(coo)
            cache_dir = (
                self.cache.cache_dir if self.cache is not None
                else None
            )
            spasm = SpasmCompiler(cache_dir=cache_dir).compile(
                coo
            ).spasm
        with self._lock:
            entry = PlanEntry(name, spasm, digest=digest)
            self._entries[name] = entry
            if warm:
                self._warm(entry)
                self._enforce_budget()
        return entry

    def replace(self, name: str, spasm: Any) -> PlanEntry:
        """Swap the encoded stream behind ``name`` (heal/inject path).

        The chaos campaign uses this to both corrupt a live tenant
        (swap in a sacrificial clone) and heal it afterwards.
        Outstanding leases keep executing on their snapshot; new
        acquires see the new stream.
        """
        with self._lock:
            entry = self._entry(name)
            self._make_cold(entry, reason="stream replaced")
            entry.spasm = spasm
            return entry

    def names(self) -> List[str]:
        """Registered matrix names, registration order."""
        with self._lock:
            return list(self._entries)

    def warmup(self) -> Dict[str, Any]:
        """Warm every cold entry (plan + tuned record from the cache).

        Returns a summary: names warmed, tuned pins found, hot bytes.
        """
        warmed, tuned = [], []
        with self._lock:
            if self.cache is not None:
                # One directory scan instead of a per-entry cache
                # probe: pin every registered matrix whose digest was
                # ever tuned against this cache.
                from repro.tune import list_tuned

                records = list_tuned(self.cache)
                for entry in self._entries.values():
                    if (entry.tuned is None
                            and entry.digest in records):
                        entry.tuned = records[entry.digest]
            for entry in self._entries.values():
                if not entry.hot:
                    self._warm(entry)
                    warmed.append(entry.name)
                if entry.tuned is not None:
                    tuned.append(entry.name)
            self._enforce_budget()
            return {
                "warmed": warmed,
                "tuned": tuned,
                "hot_bytes": self.hot_bytes(),
            }

    # -- leases ---------------------------------------------------------

    def acquire(self, name: str) -> Lease:
        """A :class:`Lease` on a hot entry (warms it when cold).

        Raises :class:`UnknownMatrixError` for unregistered names.
        The lease pins the entry against eviction until
        :meth:`release`.
        """
        with self._lock:
            entry = self._entry(name)
            if not entry.hot:
                self._warm(entry)
            entry.in_flight += 1
            entry.hits += 1
            self._tick += 1
            entry.last_tick = self._tick
            self._enforce_budget()
            guard = entry.guard
            assert guard is not None  # _warm just ensured it
            return Lease(entry=entry, spasm=entry.spasm,
                         guard=guard, tuned=entry.tuned)

    def release(self, lease: Lease) -> None:
        """Return a lease; the entry becomes evictable again."""
        with self._lock:
            lease.entry.in_flight = max(0, lease.entry.in_flight - 1)

    # -- memory pressure ------------------------------------------------

    def hot_bytes(self) -> int:
        """Summed plan bytes of the currently hot entries."""
        with self._lock:
            return sum(
                e.plan_nbytes for e in self._entries.values() if e.hot
            )

    def evict(self, name: str) -> bool:
        """Explicitly evict one entry's plan; ``False`` when leased."""
        with self._lock:
            entry = self._entry(name)
            if entry.in_flight > 0:
                return False
            self._make_cold(entry, reason="explicit evict")
            return True

    def stats(self) -> Dict[str, Any]:
        """JSON-ready registry snapshot."""
        with self._lock:
            return {
                "entries": [
                    e.describe() for e in self._entries.values()
                ],
                "hot_bytes": self.hot_bytes(),
                "byte_budget": self.byte_budget,
                "evicted_total": int(self.evicted_total),
            }

    # -- internals ------------------------------------------------------

    def _entry(self, name: str) -> PlanEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownMatrixError(
                f"matrix {name!r} is not registered "
                f"(registered: {sorted(self._entries)})"
            ) from None

    def _warm(self, entry: PlanEntry) -> None:
        """Build/load the plan, tuned record and guard for an entry."""
        plan = entry.spasm.plan(cache=self.cache)
        entry.plan_nbytes = int(plan.nbytes)
        if (entry.tuned is None and self.cache is not None
                and entry.digest is not None):
            from repro.tune import load_tuned

            entry.tuned = load_tuned(self.cache, entry.digest)
        backend = (
            entry.tuned.backend if entry.tuned is not None else None
        )
        self._guard_seq += 1
        entry.guard = ExecutionGuard(
            entry.spasm, config=self.guard_config, cache=self.cache,
            log=self.log, seed=self.seed + self._guard_seq,
            backend=backend,
        )
        entry.hot = True
        entry.warms += 1

    def _make_cold(self, entry: PlanEntry, reason: str) -> None:
        """Drop an entry's resident execution state."""
        plan = entry.spasm.__dict__.get("_plan")
        if plan is not None:
            plan.release_scratch()
        entry.spasm._plan = None
        entry.guard = None
        entry.hot = False
        entry.plan_nbytes = 0

    def _enforce_budget(self) -> None:
        """Evict LRU hot entries until the byte budget holds.

        Entries with leases outstanding are skipped — the registry
        prefers running transiently over budget to evicting a plan
        mid-execution.  Caller holds the lock.
        """
        if self.byte_budget is None:
            return
        while True:
            hot = [
                e for e in self._entries.values() if e.hot
            ]
            total = sum(e.plan_nbytes for e in hot)
            if total <= self.byte_budget:
                return
            victims = sorted(
                (e for e in hot if e.in_flight == 0),
                key=lambda e: e.last_tick,
            )
            if not victims:
                self.log.record(ResilienceEvent(
                    kind="evict", surface="registry", action="none",
                    detail=(
                        f"over budget ({total} > {self.byte_budget} "
                        "bytes) but every hot plan is executing; "
                        "deferring eviction"
                    ),
                ))
                return
            victim = victims[0]
            self._make_cold(victim, reason="byte budget")
            victim.evictions += 1
            self.evicted_total += 1
            self.log.record(ResilienceEvent(
                kind="evict", surface="registry", action="evict",
                detail=(
                    f"evicted plan {victim.name!r} "
                    f"(LRU, budget {self.byte_budget} bytes)"
                ),
            ))
