"""Graceful degradation under pressure: a ladder, not a cliff.

When queues back up, the server steps down a ladder of service
levels, trading per-request optimality for throughput headroom, one
rung at a time:

1. ``tuned``  — tuned backend pin honoured, full batch window.
2. ``auto``   — tuned pin dropped; the engine's automatic backend
   choice avoids a mis-tuned pin amplifying an overload.
3. ``narrow`` — batch coalescing window shrunk so per-request latency
   (and deadline exposure) drops at the cost of peak throughput.
4. ``naive``  — the guarded plan path is bypassed for the naive
   reference kernel: slowest, but verified by construction and
   immune to plan/backend-state corruption — the rung of last resort
   during a fault storm.

Transitions are hysteretic: the ladder degrades the moment pressure
crosses ``degrade_at`` but climbs back only after ``hold`` consecutive
observations below ``restore_at``, so a sawtoothing queue does not
flap the service level.  Every transition is a structured
:class:`~repro.resilience.guard.ResilienceEvent` (kinds ``degrade`` /
``restore``).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Optional, Tuple

from repro.resilience.guard import ResilienceEvent, ResilienceLog


@dataclasses.dataclass(frozen=True)
class ServiceLevel:
    """One rung of the ladder."""

    name: str
    #: Honour a matrix's tuned backend pin.
    use_tuned: bool
    #: Execute through the naive reference kernel instead of the
    #: guarded plan path.
    naive: bool
    #: Cap on requests coalesced into one batched execution.
    batch_window: int


#: The ladder, best service first.
LEVELS: Tuple[ServiceLevel, ...] = (
    ServiceLevel("tuned", use_tuned=True, naive=False, batch_window=32),
    ServiceLevel("auto", use_tuned=False, naive=False, batch_window=32),
    ServiceLevel("narrow", use_tuned=False, naive=False, batch_window=4),
    ServiceLevel("naive", use_tuned=False, naive=True, batch_window=1),
)


class DegradationLadder:
    """Hysteretic service-level controller driven by queue pressure.

    ``observe(pressure)`` is called by workers between requests with
    :meth:`~repro.serve.admission.AdmissionController.pressure`; it
    moves at most one rung per call.  Thread-safe.
    """

    def __init__(self, log: Optional[ResilienceLog] = None,
                 degrade_at: float = 0.75, restore_at: float = 0.25,
                 hold: int = 8):
        if not 0.0 <= restore_at <= degrade_at:
            raise ValueError(
                f"need 0 <= restore_at <= degrade_at, got "
                f"restore_at={restore_at} degrade_at={degrade_at}"
            )
        self.log = log or ResilienceLog()
        self.degrade_at = float(degrade_at)
        self.restore_at = float(restore_at)
        self.hold = int(hold)
        self._lock = threading.Lock()
        self._level = 0
        self._calm = 0
        self.transitions = 0

    @property
    def level(self) -> ServiceLevel:
        """The current rung."""
        with self._lock:
            return LEVELS[self._level]

    def observe(self, pressure: float) -> ServiceLevel:
        """Feed one pressure sample; returns the (possibly new) rung."""
        with self._lock:
            if pressure >= self.degrade_at:
                self._calm = 0
                if self._level < len(LEVELS) - 1:
                    self._move(self._level + 1, pressure)
            elif pressure <= self.restore_at:
                self._calm += 1
                if self._level > 0 and self._calm >= self.hold:
                    self._calm = 0
                    self._move(self._level - 1, pressure)
            else:
                self._calm = 0
            return LEVELS[self._level]

    def force(self, name: str) -> ServiceLevel:
        """Jump directly to the named rung (operator override)."""
        for idx, lvl in enumerate(LEVELS):
            if lvl.name == name:
                with self._lock:
                    if idx != self._level:
                        self._move(idx, pressure=-1.0)
                    return LEVELS[self._level]
        raise ValueError(
            f"unknown service level {name!r} "
            f"(levels: {[lvl.name for lvl in LEVELS]})"
        )

    def _move(self, new: int, pressure: float) -> None:
        old_idx, self._level = self._level, new
        self.transitions += 1
        kind = "degrade" if new > old_idx else "restore"
        self.log.record(ResilienceEvent(
            kind=kind, surface="serve", action=LEVELS[new].name,
            detail=(
                f"service level {LEVELS[old_idx].name!r} -> "
                f"{LEVELS[new].name!r} at pressure {pressure:.2f}"
            ),
        ))

    def stats(self) -> Dict[str, Any]:
        """JSON-ready ladder snapshot."""
        with self._lock:
            lvl = LEVELS[self._level]
            return {
                "level": lvl.name,
                "level_index": self._level,
                "batch_window": lvl.batch_window,
                "use_tuned": lvl.use_tuned,
                "naive": lvl.naive,
                "transitions": int(self.transitions),
                "degrade_at": self.degrade_at,
                "restore_at": self.restore_at,
            }
