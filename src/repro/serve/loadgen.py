"""Seeded mixed-tenant load generation against a live server.

Tenants are weighted traffic classes: each names a registered matrix,
a deadline class and a small pool of seeded probe vectors.  Because
probes are deterministic per ``(seed, tenant)``, a caller can
precompute naive-reference answers for every probe and verify each
``ok`` response bitwise after the fact — the chaos campaign's
escape detector is exactly that check.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.deadline import Deadline
from repro.serve.server import STATUS_OK, ServeResponse, SpmvServer


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One traffic class."""

    name: str
    #: Registry name of the matrix this tenant queries.
    plan: str
    #: Relative share of generated traffic.
    weight: float = 1.0
    #: Per-request deadline; ``None`` = unbounded.
    deadline_ms: Optional[float] = None
    #: Distinct probe vectors in this tenant's pool.
    n_probes: int = 4


def make_probes(ncols: int, n_probes: int, seed: int) -> np.ndarray:
    """The deterministic ``(n_probes, ncols)`` probe pool."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_probes, ncols))


def tenant_probes(tenants: List[TenantSpec], ncols_of: Dict[str, int],
                  seed: int) -> Dict[str, np.ndarray]:
    """Probe pools for every tenant, keyed by tenant name.

    ``ncols_of`` maps plan names to their matrix's column count.  The
    per-tenant seed is derived from ``seed`` and the tenant's position
    so pools are independent but fully reproducible.
    """
    pools: Dict[str, np.ndarray] = {}
    for idx, tenant in enumerate(tenants):
        pools[tenant.name] = make_probes(
            ncols_of[tenant.plan], tenant.n_probes,
            seed + 1000 * (idx + 1),
        )
    return pools


@dataclasses.dataclass(frozen=True)
class LoadRecord:
    """One request's identity and outcome."""

    tenant: str
    plan: str
    probe: int
    response: ServeResponse


@dataclasses.dataclass
class LoadReport:
    """Everything one load run produced."""

    records: List[LoadRecord]
    wall_s: float

    def counts(self) -> Dict[str, int]:
        """Response tally by status."""
        out: Dict[str, int] = {}
        for record in self.records:
            status = record.response.status
            out[status] = out.get(status, 0) + 1
        return out

    def latencies_ms(self, status: str = STATUS_OK) -> np.ndarray:
        """Sorted latencies (ms) of responses with ``status``."""
        vals = [r.response.latency_s * 1e3 for r in self.records
                if r.response.status == status]
        return np.sort(np.asarray(vals, dtype=np.float64))

    def percentiles_ms(self) -> Dict[str, float]:
        """p50/p95/p99 of ``ok`` latencies in milliseconds."""
        lat = self.latencies_ms()
        if lat.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": float(np.percentile(lat, 50)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
        }

    def qps(self) -> float:
        """Sustained ``ok`` responses per second over the run."""
        done = sum(1 for r in self.records
                   if r.response.status == STATUS_OK)
        return done / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest of the run."""
        return {
            "requests": len(self.records),
            "counts": self.counts(),
            "qps": self.qps(),
            "latency_ms": self.percentiles_ms(),
            "wall_s": self.wall_s,
        }


def run_load(server: SpmvServer, tenants: List[TenantSpec],
             probes: Dict[str, np.ndarray], n_requests: int,
             seed: int = 0, pace_s: float = 0.0) -> LoadReport:
    """Fire ``n_requests`` of weighted mixed-tenant traffic.

    Requests are submitted open-loop (optionally paced) and all
    futures are then awaited, so queue pressure — and therefore
    admission shedding and ladder movement — is real.  Fully seeded:
    the tenant sequence and probe choices reproduce bit-for-bit.
    """
    if not tenants:
        raise ValueError("run_load needs at least one tenant")
    rng = np.random.default_rng(seed)
    weights = np.asarray([t.weight for t in tenants], dtype=np.float64)
    weights = weights / weights.sum()
    pending: List[Any] = []
    t0 = time.monotonic()
    for _ in range(int(n_requests)):
        tenant = tenants[int(rng.choice(len(tenants), p=weights))]
        pool = probes[tenant.name]
        probe = int(rng.integers(pool.shape[0]))
        deadline = (Deadline.after_ms(tenant.deadline_ms)
                    if tenant.deadline_ms is not None else None)
        future = server.submit(tenant.plan, pool[probe],
                               deadline=deadline, tenant=tenant.name)
        pending.append((tenant, probe, future))
        if pace_s > 0:
            time.sleep(pace_s)
    records = [
        LoadRecord(tenant=tenant.name, plan=tenant.plan, probe=probe,
                   response=future.result())
        for tenant, probe, future in pending
    ]
    return LoadReport(records=records, wall_s=time.monotonic() - t0)
