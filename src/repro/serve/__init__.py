"""SpMV-as-a-service: the robust long-lived query engine.

This package turns the batch pipeline into a serving layer for many
matrices and many tenants, built so that overload and injected faults
degrade service predictably instead of corrupting it:

* :class:`Deadline` — a monotonic per-request time budget, threaded
  through guard retry/backoff so recovery never blows the caller's
  budget;
* :class:`PlanRegistry` — hot compiled/tuned plans under an LRU byte
  budget, warmed from the :class:`~repro.pipeline.cache.ArtifactCache`
  and :mod:`repro.tune` records, safe to evict or heal while requests
  execute;
* :class:`AdmissionController` — bounded per-plan queues with load
  shedding (structured ``queue_full`` / ``overload`` / ``deadline``
  reasons) and round-robin fairness;
* :class:`DegradationLadder` — tuned → auto → narrow-batch → naive,
  hysteretic, every transition a structured
  :class:`~repro.resilience.guard.ResilienceEvent`;
* :class:`SpmvServer` — worker threads executing coalesced batches
  through each matrix's guard; never returns an unverified result;
* :func:`run_load` — seeded mixed-tenant traffic with verifiable
  probe vectors (the substrate of the chaos-under-load campaign in
  :mod:`repro.resilience.chaos`).

See ``docs/SERVE.md``.
"""

from repro.serve.admission import (
    SHED_CLOSED,
    SHED_DEADLINE,
    SHED_OVERLOAD,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    RequestShed,
)
from repro.serve.deadline import Deadline, DeadlineExceeded
from repro.serve.degrade import LEVELS, DegradationLadder, ServiceLevel
from repro.serve.loadgen import (
    LoadRecord,
    LoadReport,
    TenantSpec,
    make_probes,
    run_load,
    tenant_probes,
)
from repro.serve.registry import (
    SERVE_GUARD,
    Lease,
    PlanEntry,
    PlanRegistry,
    UnknownMatrixError,
)
from repro.serve.server import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    ServeRequest,
    ServeResponse,
    SpmvServer,
    serve_matrices,
)

__all__ = [
    "LEVELS",
    "SERVE_GUARD",
    "SHED_CLOSED",
    "SHED_DEADLINE",
    "SHED_OVERLOAD",
    "SHED_QUEUE_FULL",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "AdmissionConfig",
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "Lease",
    "LoadRecord",
    "LoadReport",
    "PlanEntry",
    "PlanRegistry",
    "RequestShed",
    "ServeRequest",
    "ServeResponse",
    "ServiceLevel",
    "SpmvServer",
    "TenantSpec",
    "UnknownMatrixError",
    "make_probes",
    "run_load",
    "serve_matrices",
    "tenant_probes",
]
