"""Per-request time budgets for the serving layer.

A :class:`Deadline` is created once at request admission and then
threaded through every layer that could spend wall time on the
request's behalf — queue wait, guard retry backoff, batch coalescing.
Each layer asks the *same* object how much budget is left, so the sum
of all sleeps and retries can never exceed the request's budget: the
failure mode the raw ``backoff_s *= 2`` loop had (each retry slept
unconditionally, oblivious to how much time the request had already
burned in the queue).

The clock is injectable so tests drive expiry deterministically; the
default is :func:`time.monotonic` (wall-clock adjustments must never
extend or shrink a request budget).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional


class DeadlineExceeded(RuntimeError):
    """A request's time budget ran out before a trusted answer existed.

    Raised by :meth:`Deadline.check`; the serving layer catches it and
    classifies the request as *shed* — the caller gets a refusal, never
    a rushed or unverified result.
    """


class Deadline:
    """One request's monotonic time budget.

    Parameters
    ----------
    budget_s:
        Seconds from construction until expiry; ``None`` never expires
        (an unbounded deadline still supports :meth:`remaining` —
        it returns ``inf`` — so callers need no special case).
    clock:
        Monotonic clock; injectable for deterministic tests.
    """

    __slots__ = ("budget_s", "_clock", "_start")

    def __init__(self, budget_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if budget_s is not None and budget_s < 0:
            raise ValueError(f"negative deadline budget {budget_s!r}")
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    @classmethod
    def after_ms(cls, ms: Optional[float],
                 clock: Callable[[], float] = time.monotonic,
                 ) -> "Deadline":
        """A deadline ``ms`` milliseconds out (``None`` = unbounded)."""
        return cls(None if ms is None else ms / 1e3, clock=clock)

    def elapsed(self) -> float:
        """Seconds spent since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds of budget left (``inf`` when unbounded, floored at 0)."""
        if self.budget_s is None:
            return math.inf
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() <= 0.0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget ran out."""
        if self.expired:
            where = f" during {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded{where} "
                f"({self.elapsed():.3f}s elapsed)"
            )

    def sleep(self, seconds: float) -> float:
        """Sleep at most ``seconds``, clipped to the remaining budget.

        Returns the time actually slept — a retry loop that sleeps
        through this method can never blow the request budget.
        """
        nap = min(float(seconds), self.remaining())
        if nap <= 0 or not math.isfinite(nap):
            return 0.0
        time.sleep(nap)
        return nap

    def render(self) -> str:
        """One-line summary for logs and responses."""
        if self.budget_s is None:
            return "deadline[unbounded]"
        return (f"deadline[{self.budget_s * 1e3:.1f}ms, "
                f"{self.remaining() * 1e3:.1f}ms left]")
