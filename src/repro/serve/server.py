"""The long-lived SpMV query engine.

:class:`SpmvServer` composes the serving stack: a
:class:`~repro.serve.registry.PlanRegistry` of hot plans, an
:class:`~repro.serve.admission.AdmissionController` at the door, a
:class:`~repro.serve.degrade.DegradationLadder` reacting to queue
pressure, and a pool of plain worker threads executing through each
matrix's :class:`~repro.resilience.guard.ExecutionGuard`.

Correctness contract
--------------------
Every result returned with status ``ok`` went through the guarded
engine (plan validation, sampled oracle, verified naive fallback) or
the naive reference kernel itself — the server never returns an
unverified result.  A request whose deadline expires before its
result is ready is **shed** (status ``shed``, reason ``deadline``),
never answered late with data the caller can no longer trust the
provenance of; a fault the guard cannot recover from within the
deadline surfaces as status ``failed`` with the detection detail.

Batching
--------
Workers coalesce queued same-plan requests up to the current service
level's batch window and execute them as one
:meth:`~repro.resilience.guard.ExecutionGuard.spmv_batch` call, which
is bitwise identical to per-request execution — batching is a
throughput knob, not a semantics knob.  Per-entry execution is
serialized (kernels parallelize internally across shards); worker
concurrency comes from running *different* plans side by side.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.resilience.guard import IntegrityError
from repro.serve.admission import (
    SHED_DEADLINE,
    AdmissionConfig,
    AdmissionController,
    RequestShed,
)
from repro.serve.deadline import Deadline
from repro.serve.degrade import DegradationLadder, ServiceLevel
from repro.serve.registry import PlanRegistry, UnknownMatrixError

from concurrent.futures import Future

STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"


@dataclasses.dataclass
class ServeRequest:
    """One admitted (or about-to-be-admitted) query."""

    rid: int
    plan: str
    x: np.ndarray
    deadline: Optional[Deadline]
    tenant: str
    future: Any
    t_submit: float


@dataclasses.dataclass(frozen=True)
class ServeResponse:
    """The outcome of one query."""

    rid: int
    plan: str
    tenant: str
    #: ``ok`` / ``shed`` / ``failed``.
    status: str
    y: Optional[np.ndarray]
    #: Shed reason or failure detail; empty on ``ok``.
    detail: str
    #: Service-level name the request executed under.
    level: str
    #: Number of requests coalesced into the executing batch.
    batched: int
    latency_s: float

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class SpmvServer:
    """Admission → ladder → registry → guarded execution.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.PlanRegistry` to serve from
        (matrices are registered on it, before or after start).
    admission:
        :class:`~repro.serve.admission.AdmissionConfig` bounds.
    ladder:
        A :class:`~repro.serve.degrade.DegradationLadder`; defaults to
        one sharing the registry's resilience log.
    workers:
        Worker thread count.  Per-plan execution is serialized, so
        more workers than concurrently-queried matrices buys nothing.
    """

    def __init__(self, registry: PlanRegistry,
                 admission: Optional[AdmissionConfig] = None,
                 ladder: Optional[DegradationLadder] = None,
                 workers: int = 2):
        self.registry = registry
        self.log = registry.log
        self.admission = AdmissionController(admission)
        self.ladder = ladder or DegradationLadder(log=self.log)
        self.n_workers = max(1, int(workers))
        self._threads: List[threading.Thread] = []
        self._running = False
        self._lock = threading.Lock()
        self._rid = 0
        self._exec_locks: Dict[str, threading.Lock] = {}
        self.completed: Dict[str, int] = {
            STATUS_OK: 0, STATUS_SHED: 0, STATUS_FAILED: 0,
        }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SpmvServer":
        """Warm the registry and spawn the worker pool."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        self.registry.warmup()
        for idx in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"spmv-serve-{idx}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop admitting, drain the queue, join the workers."""
        with self._lock:
            self._running = False
        self.admission.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "SpmvServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- client surface -------------------------------------------------

    def submit(self, plan: str, x: np.ndarray,
               deadline: Optional[Deadline] = None,
               tenant: str = "") -> Any:
        """Enqueue one query; returns a ``Future[ServeResponse]``.

        A request refused admission resolves its future immediately
        with a ``shed`` response — ``submit`` itself never raises for
        load reasons.
        """
        with self._lock:
            self._rid += 1
            rid = self._rid
        request = ServeRequest(
            rid=rid, plan=str(plan), x=np.asarray(x),
            deadline=deadline, tenant=str(tenant),
            future=Future(), t_submit=time.monotonic(),
        )
        try:
            self.admission.submit(request)
        except RequestShed as shed:
            self._resolve(request, STATUS_SHED, None,
                          detail=f"{shed.reason}: {shed.detail}",
                          level=self.ladder.level.name, batched=0)
        return request.future

    def query(self, plan: str, x: np.ndarray,
              deadline: Optional[Deadline] = None,
              tenant: str = "") -> ServeResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(plan, x, deadline=deadline,
                           tenant=tenant).result()

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot across the whole serving stack."""
        with self._lock:
            completed = dict(self.completed)
        return {
            "running": self._running,
            "workers": self.n_workers,
            "completed": completed,
            "registry": self.registry.stats(),
            "admission": self.admission.stats(),
            "ladder": self.ladder.stats(),
            "resilience": self.log.counts(),
        }

    def health(self) -> Dict[str, Any]:
        """Terse liveness view: status, rung, queue depth."""
        level = self.ladder.level
        return {
            "status": "ok" if level.name == "tuned" else "degraded",
            "running": self._running,
            "level": level.name,
            "queued": self.admission.depth(),
            "pressure": round(self.admission.pressure(), 4),
            "hot_bytes": self.registry.hot_bytes(),
        }

    # -- worker side ----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self.admission.take(timeout=0.05)
            if request is None:
                if not self._running:
                    return
                continue
            level = self.ladder.observe(self.admission.pressure())
            batch = [request]
            if level.batch_window > 1:
                batch += self.admission.drain_matching(
                    request.plan, level.batch_window - 1
                )
            try:
                self._execute_batch(batch, level)
            except Exception as exc:  # noqa: BLE001 - worker firewall
                # A worker must never die with futures pending; an
                # unanticipated error fails the batch explicitly.
                for req in batch:
                    if not req.future.done():
                        self._resolve(
                            req, STATUS_FAILED, None,
                            detail=f"worker error: "
                                   f"{type(exc).__name__}: {exc}",
                            level=level.name, batched=len(batch),
                        )

    def _execute_batch(self, batch: List[ServeRequest],
                       level: ServiceLevel) -> None:
        live = self._drop_expired(batch, level)
        if not live:
            return
        name = live[0].plan
        try:
            lease = self.registry.acquire(name)
        except (UnknownMatrixError, IntegrityError) as exc:
            for req in live:
                self._resolve(req, STATUS_FAILED, None,
                              detail=str(exc), level=level.name,
                              batched=len(live))
            return
        try:
            self._run_lease(lease, live, level)
        finally:
            self.registry.release(lease)

    def _run_lease(self, lease: Any, live: List[ServeRequest],
                   level: ServiceLevel) -> None:
        deadline = self._tightest_deadline(live)
        exec_lock = self._exec_lock(live[0].plan)
        try:
            with exec_lock:
                if level.naive:
                    ys = self._run_naive(lease, live)
                else:
                    ys = self._run_guarded(lease, live, level, deadline)
        except IntegrityError as exc:
            for req in live:
                self._resolve(req, STATUS_FAILED, None,
                              detail=f"integrity: {exc}",
                              level=level.name, batched=len(live))
            return
        # Results are verified, but a request whose deadline lapsed
        # during execution is shed rather than answered late.
        for req, y in zip(live, ys):
            if req.deadline is not None and req.deadline.expired:
                self._resolve(req, STATUS_SHED, None,
                              detail=f"{SHED_DEADLINE}: result ready "
                                     "after deadline",
                              level=level.name, batched=len(live))
            else:
                self._resolve(req, STATUS_OK, y, detail="",
                              level=level.name, batched=len(live))

    @staticmethod
    def _run_naive(lease: Any,
                   live: List[ServeRequest]) -> List[np.ndarray]:
        """The ladder's last rung: the naive reference kernel.

        Naive execution bypasses the guard, so the one thing it cannot
        survive silently is a corrupted stream — re-pin the digest
        against the guard's trusted pin first and refuse to answer on
        a mismatch.  (The digest walk costs the same order as the
        naive kernel itself, so this rung stays verified without
        changing its complexity.)
        """
        from repro.exec.plan import stream_digest

        if stream_digest(lease.spasm) != lease.guard.expected_digest:
            raise IntegrityError(
                "stream digest changed since the guard pinned it; "
                "refusing to serve naive results from an untrusted "
                "stream"
            )
        return [lease.spasm.spmv_naive(req.x) for req in live]

    def _run_guarded(self, lease: Any, live: List[ServeRequest],
                     level: ServiceLevel,
                     deadline: Optional[Deadline]) -> List[np.ndarray]:
        """Dispatch through the guard at the requested service level.

        The tuned backend pin is honoured only on the ``tuned`` rung;
        the pin toggle is safe because the caller holds the plan's
        execution lock.
        """
        guard = lease.guard
        tuned = lease.tuned if level.use_tuned else None
        jobs = tuned.jobs if tuned is not None else None
        pinned = guard.backend
        guard.backend = tuned.backend if tuned is not None else None
        try:
            if len(live) == 1:
                return [guard.spmv(live[0].x, jobs=jobs,
                                   deadline=deadline)]
            xs = np.stack([req.x for req in live])
            ys = guard.spmv_batch(xs, jobs=jobs, deadline=deadline)
            return [ys[i] for i in range(len(live))]
        finally:
            guard.backend = pinned

    # -- helpers --------------------------------------------------------

    def _drop_expired(self, batch: List[ServeRequest],
                      level: ServiceLevel) -> List[ServeRequest]:
        live = []
        for req in batch:
            if req.deadline is not None and req.deadline.expired:
                self.admission.shed[SHED_DEADLINE] += 1
                self._resolve(req, STATUS_SHED, None,
                              detail=f"{SHED_DEADLINE}: expired while "
                                     "queued",
                              level=level.name, batched=0)
            else:
                live.append(req)
        return live

    @staticmethod
    def _tightest_deadline(live: List[ServeRequest]
                           ) -> Optional[Deadline]:
        tightest: Optional[Deadline] = None
        for req in live:
            if req.deadline is None:
                continue
            if (tightest is None
                    or req.deadline.remaining() < tightest.remaining()):
                tightest = req.deadline
        return tightest

    def _exec_lock(self, name: str) -> threading.Lock:
        with self._lock:
            lock = self._exec_locks.get(name)
            if lock is None:
                lock = self._exec_locks[name] = threading.Lock()
            return lock

    def _resolve(self, request: ServeRequest, status: str,
                 y: Optional[np.ndarray], detail: str, level: str,
                 batched: int) -> None:
        response = ServeResponse(
            rid=request.rid, plan=request.plan, tenant=request.tenant,
            status=status, y=y, detail=detail, level=level,
            batched=batched,
            latency_s=time.monotonic() - request.t_submit,
        )
        with self._lock:
            self.completed[status] = self.completed.get(status, 0) + 1
        request.future.set_result(response)


def serve_matrices(matrices: Dict[str, Any], cache: Any = None,
                   byte_budget: Optional[int] = None,
                   admission: Optional[AdmissionConfig] = None,
                   workers: int = 2, seed: int = 0,
                   start: bool = True) -> SpmvServer:
    """Build a server over named COO matrices (the one-call setup).

    ``matrices`` maps registry names to
    :class:`~repro.core.io.COOMatrix` instances; each is compiled
    through the cached pipeline, tuned records are picked up from
    ``cache`` when present, and the server is started unless
    ``start=False``.
    """
    registry = PlanRegistry(cache=cache, byte_budget=byte_budget,
                            seed=seed)
    for name, coo in matrices.items():
        registry.register(name, coo=coo)
    server = SpmvServer(registry, admission=admission, workers=workers)
    return server.start() if start else server
