"""Admission control: bounded queues, load shedding, fair dequeue.

The server never buffers unbounded work.  Each registered plan gets a
bounded FIFO; a global bound caps total queued requests across plans.
When either bound is hit — or a request arrives with its deadline
already spent — the request is *shed*: rejected at the door with a
structured reason, instead of being accepted and then timing out
deep inside the engine.  Workers dequeue round-robin across plans so
one hot tenant cannot starve the rest, and can drain additional
same-plan requests in one go to feed batched execution.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from typing import Any, Deque, Dict, List, Optional

#: Shed reasons, also the keys of the per-reason shed counters.
SHED_QUEUE_FULL = "queue_full"
SHED_OVERLOAD = "overload"
SHED_DEADLINE = "deadline"
SHED_CLOSED = "closed"


class RequestShed(RuntimeError):
    """A request was refused admission (or dropped before execution).

    ``reason`` is one of the ``SHED_*`` constants; the server maps it
    into the response status so callers can distinguish "try later"
    (overload) from "your deadline was hopeless" (deadline).
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Bounds of the admission layer."""

    #: Per-plan queue depth; the oldest bound to trip under a single
    #: hot tenant.
    max_queue_per_plan: int = 64
    #: Total queued requests across all plans; the overload bound.
    max_total: int = 256
    #: Refuse requests whose remaining deadline is below this floor —
    #: they cannot finish anyway, so shedding at the door is cheaper
    #: than cancelling mid-execution.
    min_deadline_s: float = 0.0


class AdmissionController:
    """Bounded multi-queue with round-robin dequeue.

    Queued items are duck-typed: they carry ``.plan`` (the registry
    name) and ``.deadline`` (a :class:`~repro.serve.deadline.Deadline`
    or ``None``).  Thread-safe; ``submit`` is called from caller
    threads, ``take``/``drain_matching`` from worker threads.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[Any]] = {}
        self._rr: Deque[str] = collections.deque()
        self._closed = False
        self.submitted = 0
        self.admitted = 0
        self.shed: Dict[str, int] = collections.Counter()

    # -- producer side --------------------------------------------------

    def submit(self, item: Any) -> None:
        """Admit ``item`` or raise :class:`RequestShed`."""
        with self._lock:
            self.submitted += 1
            if self._closed:
                self._shed_locked(SHED_CLOSED, "server is shutting down")
            deadline = getattr(item, "deadline", None)
            if deadline is not None:
                left = float(deadline.remaining())
                if left <= self.config.min_deadline_s:
                    self._shed_locked(
                        SHED_DEADLINE,
                        f"deadline leaves {left:.4f}s, below the "
                        f"{self.config.min_deadline_s:.4f}s admission "
                        "floor",
                    )
            total = sum(len(q) for q in self._queues.values())
            if total >= self.config.max_total:
                self._shed_locked(
                    SHED_OVERLOAD,
                    f"{total} requests queued across plans "
                    f"(max_total={self.config.max_total})",
                )
            queue = self._queues.get(item.plan)
            if queue is None:
                queue = self._queues[item.plan] = collections.deque()
            if len(queue) >= self.config.max_queue_per_plan:
                self._shed_locked(
                    SHED_QUEUE_FULL,
                    f"plan {item.plan!r} queue at "
                    f"{len(queue)} (max_queue_per_plan="
                    f"{self.config.max_queue_per_plan})",
                )
            queue.append(item)
            if item.plan not in self._rr:
                self._rr.append(item.plan)
            self.admitted += 1
            self._ready.notify()

    def _shed_locked(self, reason: str, detail: str) -> None:
        self.shed[reason] += 1
        raise RequestShed(reason, detail)

    # -- consumer side --------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next request, round-robin across plans.

        Blocks up to ``timeout`` seconds; returns ``None`` on timeout
        or once the controller is closed and drained.
        """
        with self._lock:
            while True:
                item = self._pop_locked()
                if item is not None:
                    return item
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None

    def drain_matching(self, plan: str, limit: int) -> List[Any]:
        """Up to ``limit`` more queued requests for ``plan``.

        Feeds batch coalescing: a worker that just took a request for
        ``plan`` grabs its queued siblings so they execute as one
        :meth:`~repro.resilience.guard.ExecutionGuard.spmv_batch`
        call.
        """
        out: List[Any] = []
        with self._lock:
            queue = self._queues.get(plan)
            while queue and len(out) < limit:
                out.append(queue.popleft())
        return out

    def _pop_locked(self) -> Optional[Any]:
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(name)
            if queue:
                return queue.popleft()
        return None

    # -- lifecycle / observability --------------------------------------

    def close(self) -> None:
        """Stop admitting; wake blocked workers."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def depth(self) -> int:
        """Total queued requests right now."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def pressure(self) -> float:
        """Queue occupancy in ``[0, 1+]`` against the global bound.

        The degradation ladder keys off this: 0 when idle, 1.0 when
        the overload bound is about to shed.
        """
        if self.config.max_total <= 0:
            return 0.0
        return self.depth() / float(self.config.max_total)

    def stats(self) -> Dict[str, Any]:
        """JSON-ready admission counters."""
        with self._lock:
            return {
                "submitted": int(self.submitted),
                "admitted": int(self.admitted),
                "queued": sum(len(q) for q in self._queues.values()),
                "shed": {k: int(v) for k, v in sorted(self.shed.items())},
                "max_queue_per_plan": self.config.max_queue_per_plan,
                "max_total": self.config.max_total,
            }
