"""Power and energy-efficiency models (paper Table VII).

The paper measures average board power with ``xbutil`` (FPGAs) and
``nvidia-smi`` (GPU); we substitute the reported averages plus, for
SPASM, a channel-proportional term — HBM channel activity dominates the
dynamic power differences between bitstreams, and the model lands on the
reported 58 W average across the three evaluated versions.
"""

from __future__ import annotations

#: Reported average board power (W), Table VII.
PLATFORM_POWER = {
    "RTX 3090": 333.0,
    "HiSparse": 45.0,
    "Serpens": 48.0,
    "Serpens_a16": 48.0,
    "Serpens_a24": 48.0,
}

#: SPASM power model: static + per-active-HBM-channel dynamic term.
SPASM_STATIC_W = 20.0
SPASM_PER_CHANNEL_W = 1.3


def spasm_power(config) -> float:
    """Board power of one SPASM configuration."""
    return SPASM_STATIC_W + SPASM_PER_CHANNEL_W * config.hbm_channels


def platform_power(name: str, config=None) -> float:
    """Average board power of a platform.

    ``name="SPASM"`` uses the channel model (needs ``config``); other
    names use the reported Table VII constants.
    """
    if name.startswith("SPASM"):
        if config is None:
            raise ValueError("SPASM power needs the hardware config")
        return spasm_power(config)
    try:
        return PLATFORM_POWER[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; choose from "
            f"{sorted(PLATFORM_POWER)} or SPASM"
        ) from None


def energy_efficiency(gflops: float, power_w: float) -> float:
    """Table VII metric: throughput per watt, (GFLOP/s)/W."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    return gflops / power_w
