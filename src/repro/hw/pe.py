"""Functional model of one SPASM PE (paper Section IV-D2).

A PE couples a double-buffered input (x) vector buffer, a partial-sum (y)
buffer, an opcode decoder LUT and a VALU.  Per cycle it consumes one
template group: the position word selects the opcode (t_idx), the packed
x segment (c_idx) and the partial-sum slot (r_idx); CE/RE drive the
buffer switches.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.encoding import unpack_position
from repro.hw.valu import VALU, VALUOp

#: Extra cycles charged per tile switch (pipeline drain + buffer swap).
TILE_SWITCH_CYCLES = 8


@dataclasses.dataclass
class PEStats:
    """Event counters of one PE."""

    groups: int = 0
    tiles: int = 0
    flushes: int = 0
    x_bytes: int = 0
    value_bytes: int = 0
    position_bytes: int = 0
    psum_bytes: int = 0

    @property
    def compute_cycles(self) -> int:
        """VALU issue cycles plus tile-switch overhead."""
        return self.groups + TILE_SWITCH_CYCLES * self.tiles


class PE:
    """One processing element.

    Parameters
    ----------
    pe_id:
        Identifier within the accelerator.
    opcode_lut:
        Packed 30-bit opcodes indexed by t_idx (from
        :func:`repro.hw.opcode.opcode_table`); loaded at initialization
        and swappable to retarget the PE to a new portfolio.
    tile_size:
        Tile edge length; sizes the x and partial-sum buffers.
    k:
        Values per template group (VALU width).
    """

    def __init__(self, pe_id: int, opcode_lut, tile_size: int, k: int = 4):
        self.pe_id = pe_id
        self.opcode_lut = list(opcode_lut)
        self.tile_size = tile_size
        self.k = k
        self.valu = VALU()
        self.stats = PEStats()
        # Double-buffered x: [0] is active, [1] is being prefetched.
        self._x_buffers = [
            np.zeros(tile_size, dtype=np.float64),
            np.zeros(tile_size, dtype=np.float64),
        ]
        self.psum = np.zeros(tile_size, dtype=np.float64)

    @property
    def x_buffer(self) -> np.ndarray:
        """The active input vector buffer."""
        return self._x_buffers[0]

    def prefetch_x(self, segment: np.ndarray) -> None:
        """Fill the shadow x buffer (overlaps with compute)."""
        segment = np.asarray(segment, dtype=np.float64)
        if segment.size > self.tile_size:
            raise ValueError(
                f"x segment of {segment.size} exceeds tile size "
                f"{self.tile_size}"
            )
        self._x_buffers[1][:] = 0.0
        self._x_buffers[1][: segment.size] = segment
        self.stats.x_bytes += segment.size * 4

    def switch_x(self) -> None:
        """Swap the double buffers (the CE control signal)."""
        self._x_buffers.reverse()

    def process_group(self, word: int, values: np.ndarray) -> None:
        """Execute one template group against the active x buffer."""
        pos = unpack_position(word)
        opcode = self.opcode_lut[pos.t_idx]
        x_segment = self.x_buffer[pos.c_idx * self.k : (pos.c_idx + 1) * self.k]
        if x_segment.size < self.k:
            padded = np.zeros(self.k, dtype=np.float64)
            padded[: x_segment.size] = x_segment
            x_segment = padded
        out = self.valu.execute(VALUOp(opcode, values, x_segment))
        base = pos.r_idx * self.k
        self.psum[base : base + self.k] += out
        self.stats.groups += 1
        self.stats.value_bytes += self.k * 4
        self.stats.position_bytes += 4

    def process_tile(self, tile, x_segment: np.ndarray) -> None:
        """Process all groups of one tile with a pre-loaded x segment."""
        self.prefetch_x(x_segment)
        self.switch_x()
        for word, values in zip(tile.words, tile.values):
            self.process_group(int(word), values)
        self.stats.tiles += 1

    def flush_psum(self, y: np.ndarray, row_base: int) -> None:
        """Flush the partial-sum buffer into y (the RE control signal)."""
        span = min(self.tile_size, y.size - row_base)
        if span > 0:
            y[row_base : row_base + span] += self.psum[:span]
        self.stats.flushes += 1
        self.stats.psum_bytes += max(span, 0) * 8  # read-modify-write
        self.psum[:] = 0.0
