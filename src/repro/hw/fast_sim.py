"""Vectorized fast path for the functional simulator.

The event-level simulator in :mod:`repro.hw.accelerator` walks every
template group through the opcode-decoded VALU datapath — ideal for
verification, but Python-loop bound.  This module computes the *same*
:class:`~repro.hw.accelerator.SimResult` with whole-array numpy
operations: identical numeric output, identical tile schedule, identical
per-PE group counts and identical HBM byte accounting.

The numeric shortcut is justified by the test suite: the VALU datapath
is proven equivalent to the template semantics for every one of the
1820 possible templates (``tests/test_valu.py``), so expanding template
cells directly is exact.  Equivalence of the two engines is itself
asserted in ``tests/test_fast_sim.py``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.format import SpasmMatrix
from repro.hw.configs import HwConfig, PES_PER_GROUP
from repro.hw.perf_model import assign_tiles, perf_breakdown


def fast_run(spasm: SpasmMatrix, config: HwConfig, x: np.ndarray,
             y: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             guard: Optional[Any] = None,
             backend: Optional[str] = None):
    """Vectorized equivalent of :meth:`SpasmAccelerator.run`.

    The numeric result runs through the matrix's compiled
    :class:`~repro.exec.plan.ExecutionPlan` (built lazily, cached on
    the matrix, ``jobs`` shards on a thread pool, ``backend`` naming
    the kernel engine); repeated simulations of the same matrix never
    re-expand the stream.  ``guard=True`` routes the call through a
    one-shot :func:`~repro.resilience.guard.guarded_spmv` (integrity
    validation, sampled divergence checks, automatic fallback); a
    prebuilt :class:`~repro.resilience.guard.ExecutionGuard` for this
    matrix amortizes that machinery across calls.  The clean path
    stays bitwise identical in every mode.
    """
    from repro.hw.accelerator import SimResult

    x = np.asarray(x, dtype=np.float64)
    if x.shape != (spasm.shape[1],):
        raise ValueError(
            f"x of shape {x.shape} incompatible with {spasm.shape}"
        )
    if y is None:
        y_out = None
    else:
        y_out = np.array(y, dtype=np.float64)
        if y_out.shape != (spasm.shape[0],):
            raise ValueError(
                f"y of shape {y_out.shape} incompatible with {spasm.shape}"
            )

    # Numeric result: compiled execution of the format (exact).
    if guard is True:
        from repro.resilience.guard import guarded_spmv

        y_out = guarded_spmv(spasm, x, y_out, jobs=jobs,
                             backend=backend)
    elif guard is not None:
        if guard.spasm is not spasm:
            raise ValueError(
                "guard was built for a different matrix instance"
            )
        y_out = guard.spmv(x, y_out, jobs=jobs)
    else:
        y_out = spasm.plan().spmv(x, y_out, jobs=jobs,
                                  backend=backend)

    # Schedule and per-PE accounting, mirroring the event simulator.
    groups_per_tile = spasm.groups_per_tile()
    owner = assign_tiles(groups_per_tile, config.num_pes)
    pe_groups = np.bincount(
        owner, weights=groups_per_tile, minlength=config.num_pes
    ).astype(np.int64)

    hbm_bytes = _hbm_bytes(spasm, config, owner, pe_groups)

    breakdown = perf_breakdown(
        spasm.global_composition(), config, spasm.tile_size
    )
    cycles = breakdown.total_cycles
    time_s = cycles / config.frequency_hz
    flops = 2 * spasm.source_nnz + spasm.shape[0]
    return SimResult(
        y=y_out,
        cycles=cycles,
        time_s=time_s,
        gflops=flops / time_s / 1e9 if time_s else 0.0,
        hbm_bytes=hbm_bytes,
        pe_groups_executed=pe_groups,
        bottleneck=breakdown.bottleneck,
    )


def fast_run_batch(spasm: SpasmMatrix, config: HwConfig,
                   xs: np.ndarray, jobs: Optional[int] = None,
                   guard: Optional[Any] = None,
                   backend: Optional[str] = None):
    """Vectorized batched simulation: one query per row of ``xs``.

    The numeric result runs through the plan's blocked SpMM engine
    (:meth:`~repro.exec.plan.ExecutionPlan.spmv_batch`) on the chosen
    ``backend``, bitwise equal to ``n_queries`` independent
    :func:`fast_run` calls; with ``guard`` (a prebuilt
    :class:`~repro.resilience.guard.ExecutionGuard`, or ``True`` for a
    transient one) it goes through
    :meth:`~repro.resilience.guard.ExecutionGuard.spmv_batch` instead.
    Cycle and HBM accounting amortize the A-stream read over the batch
    the way :meth:`SpasmAccelerator.run_spmm` does — the returned
    :class:`~repro.hw.accelerator.SimResult` carries the
    ``(n_queries, nrows)`` output block as ``y``.
    """
    from repro.hw.accelerator import SimResult
    from repro.hw.perf_model import perf_breakdown_spmm

    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[1] != spasm.shape[1]:
        raise ValueError(
            f"xs of shape {xs.shape} incompatible with {spasm.shape};"
            f" expected (n_queries, {spasm.shape[1]})"
        )
    if guard is True:
        from repro.resilience.guard import ExecutionGuard

        ys = ExecutionGuard(
            spasm, backend=backend
        ).spmv_batch(xs, jobs=jobs)
    elif guard is not None:
        if guard.spasm is not spasm:
            raise ValueError(
                "guard was built for a different matrix instance"
            )
        ys = guard.spmv_batch(xs, jobs=jobs)
    else:
        ys = spasm.spmv_batch(xs, jobs=jobs, backend=backend)

    n_queries = int(xs.shape[0])
    groups_per_tile = spasm.groups_per_tile()
    owner = assign_tiles(groups_per_tile, config.num_pes)
    pe_groups = np.bincount(
        owner, weights=groups_per_tile, minlength=config.num_pes
    ).astype(np.int64) * max(n_queries, 1)

    breakdown = perf_breakdown_spmm(
        spasm.global_composition(), config, max(n_queries, 1),
        spasm.tile_size,
    )
    cycles = breakdown.total_cycles
    time_s = cycles / config.frequency_hz
    flops = (2 * spasm.source_nnz + spasm.shape[0]) * n_queries
    a_bytes = spasm.n_groups * (spasm.k + 1) * 4
    xy_bytes = (
        spasm.n_tiles * spasm.tile_size * 4
        + spasm.shape[0] * 8
    ) * n_queries
    return SimResult(
        y=ys,
        cycles=cycles,
        time_s=time_s,
        gflops=flops / time_s / 1e9 if time_s else 0.0,
        hbm_bytes=a_bytes + xy_bytes,
        pe_groups_executed=pe_groups,
        bottleneck=breakdown.bottleneck,
    )


def _hbm_bytes(spasm: SpasmMatrix, config: HwConfig, owner: np.ndarray,
               pe_groups: np.ndarray) -> int:
    """Total channel traffic, matching the event simulator's counters.

    The event path charges per PE: ``k*4`` value bytes and 4 position
    bytes per group, the (edge-clipped) x segment per tile, and an
    edge-clipped read-modify-write per (PE, tile-row) flush; the integer
    division when spreading group totals over position/x channels is
    reproduced exactly.
    """
    k = spasm.k
    tile_size = spasm.tile_size
    nrows, ncols = spasm.shape

    # Per-tile x segment size (clipped at the matrix edge).
    x_lo = spasm.tile_cols * tile_size
    seg = np.minimum(tile_size, np.maximum(ncols - x_lo, 0))

    # Per-(PE, tile row) flush span (clipped at the matrix edge).
    row_base = spasm.tile_rows * tile_size
    span = np.minimum(tile_size, np.maximum(nrows - row_base, 0))

    total = 0
    for g in range(config.num_pe_groups):
        lo, hi = g * PES_PER_GROUP, (g + 1) * PES_PER_GROUP
        group_pe_groups = pe_groups[lo:hi]
        # Value channels: exact per-PE sum (4 PEs per channel).
        total += int(group_pe_groups.sum()) * k * 4
        # Position channels: group total split over 2 channels with the
        # same floor division the event path applies.
        pos_total = int(group_pe_groups.sum()) * 4
        total += (pos_total // 2) * 2
        # x channels: per-tile prefetches of the group's PEs.
        in_group = (owner >= lo) & (owner < hi)
        x_total = int(seg[in_group].sum()) * 4
        total += (x_total // config.num_xvec_ch) * config.num_xvec_ch

    # y channel: one flush per (PE, tile row) pair.
    pairs = owner * np.int64(2 ** 32) + spasm.tile_rows
    __, first = np.unique(pairs, return_index=True)
    total += int(span[first].sum()) * 8
    return total
