"""Functional model of the VALU datapath (paper Figure 8).

The VALU is 4 multipliers, 3 adders and a mux network.  Per cycle it
consumes one template group — 4 values from the A stream and a 4-wide
packed segment of the x buffer — and produces a 4-wide output vector
routed to the rows of the current 4-by-4 submatrix.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hw.opcode import (
    A1_OPERAND_A0,
    NODE_A0,
    NODE_A1,
    NODE_A2,
    NODE_M0,
    NODE_ZERO,
    Opcode,
    decode_opcode,
)


@dataclasses.dataclass(frozen=True)
class VALUOp:
    """One VALU issue: a packed opcode plus its operands."""

    opcode: int
    values: np.ndarray  # 4 A-stream values (zero padded)
    x_segment: np.ndarray  # 4-wide packed x segment


class VALU:
    """Executes VALU operations and counts issued cycles.

    The model mirrors the hardware structure exactly: the four products,
    the three adder nodes and the four output muxes are all materialized,
    so a routing bug in :mod:`repro.hw.opcode` shows up as a wrong
    result rather than being silently absorbed.
    """

    def __init__(self):
        self.cycles = 0
        self.mul_ops = 0

    def execute(self, op: VALUOp) -> np.ndarray:
        """Run one cycle; returns the 4-wide output vector."""
        opcode = decode_opcode(op.opcode)
        return self._execute_decoded(opcode, op.values, op.x_segment)

    def _execute_decoded(self, opcode: Opcode, values,
                         x_segment) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        x_segment = np.asarray(x_segment, dtype=np.float64)
        if values.shape != (4,) or x_segment.shape != (4,):
            raise ValueError("VALU operands must be 4-wide")

        # Stage 1: the four multipliers.
        m = np.array(
            [values[i] * x_segment[opcode.mul_sel[i]] for i in range(4)]
        )

        # Stage 2: the three adders.
        a0 = m[opcode.a0_sel[0]] + m[opcode.a0_sel[1]]

        def a1_operand(sel: int) -> float:
            return a0 if sel == A1_OPERAND_A0 else m[sel]

        a1 = a1_operand(opcode.a1_sel[0]) + a1_operand(opcode.a1_sel[1])
        a2 = a0 + a1

        # Stage 3: the four 8-to-1 output muxes.
        nodes = {
            NODE_ZERO: 0.0,
            NODE_M0: m[0],
            NODE_M0 + 1: m[1],
            NODE_M0 + 2: m[2],
            NODE_M0 + 3: m[3],
            NODE_A0: a0,
            NODE_A1: a1,
            NODE_A2: a2,
        }
        out = np.array([nodes[sel] for sel in opcode.out_sel])

        self.cycles += 1
        self.mul_ops += 4
        return out
