"""SPASM hardware model (paper Section IV-D).

The paper implements SPASM on a Xilinx Alveo U280; this package replaces
the FPGA with a faithful Python model at two levels:

* a **functional** simulator (:mod:`repro.hw.accelerator`) that executes
  SPASM-encoded matrices through the VALU/PE/PE-group datapath, bit-for-
  bit reproducing the template routing via the 30-bit opcodes, and
* an **analytic performance model** (:mod:`repro.hw.perf_model`) that
  estimates execution cycles from the global composition — this is the
  ``PERF_MODEL`` that Algorithm 4's schedule exploration queries.
"""

from repro.hw.configs import (
    HwConfig,
    SPASM_4_1,
    SPASM_3_4,
    SPASM_3_2,
    DEFAULT_CONFIGS,
    U280_TOTAL_BANDWIDTH,
    U280_NUM_CHANNELS,
    CHANNEL_BANDWIDTH,
)
from repro.hw.opcode import (
    OpcodeError,
    encode_opcode,
    decode_opcode,
    opcode_for_template,
    opcode_table,
)
from repro.hw.valu import VALU, VALUOp
from repro.hw.hbm import HBMChannel, HBMSystem
from repro.hw.pe import PE, PEStats
from repro.hw.pe_group import PEGroup
from repro.hw.accelerator import SpasmAccelerator, SimResult
from repro.hw.perf_model import (
    perf_model,
    PerfBreakdown,
    perf_breakdown,
    perf_breakdown_spmm,
    assign_tiles,
)
from repro.hw.power import platform_power, energy_efficiency
from repro.hw.fast_sim import fast_run, fast_run_batch
from repro.hw.hazards import (
    count_stall_cycles,
    hazard_aware_reorder,
    hazard_report,
    perf_with_hazards,
)
from repro.hw.memory_image import MemoryImage, pack_images, unpack_images

__all__ = [
    "HwConfig",
    "SPASM_4_1",
    "SPASM_3_4",
    "SPASM_3_2",
    "DEFAULT_CONFIGS",
    "U280_TOTAL_BANDWIDTH",
    "U280_NUM_CHANNELS",
    "CHANNEL_BANDWIDTH",
    "OpcodeError",
    "encode_opcode",
    "decode_opcode",
    "opcode_for_template",
    "opcode_table",
    "VALU",
    "VALUOp",
    "HBMChannel",
    "HBMSystem",
    "PE",
    "PEStats",
    "PEGroup",
    "SpasmAccelerator",
    "SimResult",
    "perf_model",
    "PerfBreakdown",
    "perf_breakdown",
    "perf_breakdown_spmm",
    "assign_tiles",
    "platform_power",
    "energy_efficiency",
    "fast_run",
    "fast_run_batch",
    "count_stall_cycles",
    "hazard_aware_reorder",
    "hazard_report",
    "perf_with_hazards",
    "MemoryImage",
    "pack_images",
    "unpack_images",
]
