"""PE groups: 16 PEs sharing a slice of the HBM channel budget.

Within a group, every 4 PEs share one A-value channel, all 16 share the
position channels, and ``NUM_XVEC_CH`` channels feed the input vector
load unit (paper Section IV-D3).
"""

from __future__ import annotations

from repro.hw.configs import PES_PER_GROUP, PES_PER_VALUE_CHANNEL
from repro.hw.pe import PE


class PEGroup:
    """One group of 16 PEs.

    Parameters
    ----------
    group_id:
        Group index within the accelerator.
    opcode_lut:
        Shared opcode LUT (all PEs run the same portfolio).
    tile_size:
        Tile edge length.
    k:
        Values per template group.
    """

    def __init__(self, group_id: int, opcode_lut, tile_size: int,
                 k: int = 4):
        self.group_id = group_id
        self.pes = [
            PE(group_id * PES_PER_GROUP + i, opcode_lut, tile_size, k)
            for i in range(PES_PER_GROUP)
        ]

    def __len__(self) -> int:
        return len(self.pes)

    def __iter__(self):
        return iter(self.pes)

    def charge_channels(self, hbm, config) -> None:
        """Post a run's PE traffic onto the group's HBM channels."""
        g = self.group_id
        for i, pe in enumerate(self.pes):
            value_ch = hbm[f"g{g}.value{i // PES_PER_VALUE_CHANNEL}"]
            value_ch.transfer(pe.stats.value_bytes)
        total_pos = sum(pe.stats.position_bytes for pe in self.pes)
        for p in range(2):
            hbm[f"g{g}.pos{p}"].transfer(total_pos // 2)
        total_x = sum(pe.stats.x_bytes for pe in self.pes)
        for x in range(config.num_xvec_ch):
            hbm[f"g{g}.xvec{x}"].transfer(total_x // config.num_xvec_ch)

    @property
    def total_groups(self) -> int:
        """Template groups executed across the group's PEs."""
        return sum(pe.stats.groups for pe in self.pes)

    @property
    def compute_cycles(self) -> int:
        """Cycle bound of the slowest PE in the group."""
        return max(pe.stats.compute_cycles for pe in self.pes)
