"""Partial-sum accumulator hazards (microarchitecture refinement).

The PE accumulates each VALU result into the partial-sum buffer at
``r_idx``.  A pipelined floating-point adder takes several cycles, so
two groups hitting the same ``r_idx`` closer together than the adder
latency stall the pipeline — the classic SpMV accumulation hazard that
designs like Serpens spend most of their architecture on.

This module quantifies the effect for SPASM streams and removes most of
it in software: because groups within a tile commute (they accumulate
into disjoint-or-associative psum slots), the encoder may reorder them
freely, and interleaving by ``r_idx`` spaces out repeat visits.

Stalls are modeled first-order: each group pays
``max(0, latency - distance_to_previous_same_r_idx)`` cycles, with
distances confined to the tile (the psum buffer is flushed/reused
across tiles anyway).  Cascading of stalls is ignored, the standard
analytic simplification.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.encoding import unpack_position_array
from repro.core.format import SpasmMatrix

#: A representative pipelined FP32 adder latency on FPGA fabric.
DEFAULT_ADDER_LATENCY = 8


def _group_fields(spasm: SpasmMatrix):
    fields = unpack_position_array(spasm.words)
    tile_of_group = np.repeat(
        np.arange(spasm.n_tiles), spasm.groups_per_tile()
    )
    return fields, tile_of_group


def count_stall_cycles(spasm: SpasmMatrix,
                       latency: int = DEFAULT_ADDER_LATENCY) -> int:
    """Total first-order accumulator stall cycles of a stream.

    For every group, the distance (in groups) to the previous group of
    the same tile writing the same ``r_idx`` is computed; distances
    shorter than ``latency`` stall for the difference.
    """
    if latency < 0:
        raise ValueError("latency must be non-negative")
    if latency == 0 or spasm.n_groups == 0:
        return 0
    fields, tile_of_group = _group_fields(spasm)
    position = np.arange(spasm.n_groups, dtype=np.int64)
    # Group the stream positions by (tile, r_idx); gaps between
    # consecutive positions of a group are the reuse distances.
    key = tile_of_group * np.int64(1 << 16) + fields["r_idx"]
    order = np.lexsort((position, key))
    key_sorted = key[order]
    pos_sorted = position[order]
    same = key_sorted[1:] == key_sorted[:-1]
    distances = (pos_sorted[1:] - pos_sorted[:-1])[same]
    stalls = np.maximum(0, latency - distances)
    return int(stalls.sum())


@dataclasses.dataclass(frozen=True)
class HazardReport:
    """Stall accounting before/after hazard-aware reordering."""

    latency: int
    stalls_before: int
    stalls_after: int

    @property
    def reduction(self) -> float:
        """Fraction of stall cycles removed."""
        if self.stalls_before == 0:
            return 0.0
        return 1.0 - self.stalls_after / self.stalls_before


def hazard_aware_reorder(spasm: SpasmMatrix) -> SpasmMatrix:
    """Reorder each tile's groups to space out same-``r_idx`` visits.

    Within a tile the groups commute (pure accumulation), so any order
    computes the same result.  Sorting by (visit number within the
    group's ``r_idx``, ``r_idx``) round-robins across rows: consecutive
    stream slots touch different psum entries whenever the tile has
    more than one active row.  CE/RE flags are recomputed for the new
    order.
    """
    from repro.core.encoding import pack_position_array

    if spasm.n_groups == 0:
        return spasm
    fields, tile_of_group = _group_fields(spasm)
    r_idx = fields["r_idx"]

    # Visit number of each group within its (tile, r_idx) set.
    key = tile_of_group * np.int64(1 << 16) + r_idx
    order_by_key = np.lexsort(
        (np.arange(spasm.n_groups), key)
    )
    key_sorted = key[order_by_key]
    visit_sorted = np.arange(spasm.n_groups) - np.maximum.accumulate(
        np.where(
            np.concatenate(([True], key_sorted[1:] != key_sorted[:-1])),
            np.arange(spasm.n_groups),
            0,
        )
    )
    visit = np.empty(spasm.n_groups, dtype=np.int64)
    visit[order_by_key] = visit_sorted

    # New order: tile-major, then visit round-robin, then r_idx.
    new_order = np.lexsort((fields["c_idx"], r_idx, visit, tile_of_group))

    new_tile = tile_of_group[new_order]
    is_tile_last = np.empty(spasm.n_groups, dtype=bool)
    is_tile_last[:-1] = new_tile[1:] != new_tile[:-1]
    is_tile_last[-1] = True
    new_rows = spasm.tile_rows[new_tile]
    is_row_last = np.empty(spasm.n_groups, dtype=bool)
    is_row_last[:-1] = new_rows[1:] != new_rows[:-1]
    is_row_last[-1] = True

    words = pack_position_array(
        c_idx=fields["c_idx"][new_order],
        r_idx=r_idx[new_order],
        ce=is_tile_last,
        re=is_row_last,
        t_idx=fields["t_idx"][new_order],
    )
    return SpasmMatrix(
        shape=spasm.shape,
        k=spasm.k,
        tile_size=spasm.tile_size,
        portfolio=spasm.portfolio,
        tile_rows=spasm.tile_rows.copy(),
        tile_cols=spasm.tile_cols.copy(),
        tile_ptr=spasm.tile_ptr.copy(),
        words=words,
        values=spasm.values[new_order],
        source_nnz=spasm.source_nnz,
    )


def stall_cycles_per_tile(spasm: SpasmMatrix,
                          latency: int = DEFAULT_ADDER_LATENCY
                          ) -> np.ndarray:
    """First-order stall cycles of each tile's group stream."""
    if latency < 0:
        raise ValueError("latency must be non-negative")
    out = np.zeros(spasm.n_tiles, dtype=np.int64)
    if latency == 0 or spasm.n_groups == 0:
        return out
    fields, tile_of_group = _group_fields(spasm)
    position = np.arange(spasm.n_groups, dtype=np.int64)
    key = tile_of_group * np.int64(1 << 16) + fields["r_idx"]
    order = np.lexsort((position, key))
    key_sorted = key[order]
    pos_sorted = position[order]
    same = key_sorted[1:] == key_sorted[:-1]
    distances = (pos_sorted[1:] - pos_sorted[:-1])[same]
    stalls = np.maximum(0, latency - distances)
    tiles = tile_of_group[order][1:][same]
    np.add.at(out, tiles, stalls)
    return out


def perf_with_hazards(spasm: SpasmMatrix, config,
                      latency: int = DEFAULT_ADDER_LATENCY,
                      policy: str = "greedy") -> float:
    """Estimated cycles including accumulator stalls.

    Same resource model as :func:`repro.hw.perf_model.perf_breakdown`
    but with each PE's compute term inflated by the stall cycles of its
    assigned tiles.
    """
    from repro.hw.pe import TILE_SWITCH_CYCLES
    from repro.hw.perf_model import (
        PIPELINE_FILL_CYCLES,
        assign_tiles,
        perf_breakdown,
    )

    composition = spasm.global_composition()
    breakdown = perf_breakdown(
        composition, config, spasm.tile_size, policy
    )
    groups_per_tile = composition.groups_per_tile
    owner = assign_tiles(groups_per_tile, config.num_pes, policy)
    stalls = stall_cycles_per_tile(spasm, latency)
    pe_cycles = (
        np.bincount(
            owner,
            weights=groups_per_tile + stalls,
            minlength=config.num_pes,
        )
        + TILE_SWITCH_CYCLES * np.bincount(owner, minlength=config.num_pes)
    )
    compute = float(pe_cycles.max()) if owner.size else 0.0
    return (
        max(
            compute,
            breakdown.value_stream_cycles,
            breakdown.position_stream_cycles,
            breakdown.x_load_cycles,
            breakdown.y_cycles,
        )
        + PIPELINE_FILL_CYCLES
    )


def hazard_report(spasm: SpasmMatrix,
                  latency: int = DEFAULT_ADDER_LATENCY) -> HazardReport:
    """Stalls of the stock stream vs the hazard-aware reordering."""
    return HazardReport(
        latency=latency,
        stalls_before=count_stall_cycles(spasm, latency),
        stalls_after=count_stall_cycles(
            hazard_aware_reorder(spasm), latency
        ),
    )
