"""30-bit VALU opcodes (paper Section IV-D1).

The VALU multiplies a 4-value template group against the packed x buffer
and routes the products/sums to 4 output lanes (the rows of the 4-by-4
submatrix the group touches).  The datapath is 4 multipliers, 3 adders
and a mux network; one 30-bit opcode fully configures the routing:

=============  ====  ====================================================
field          bits  meaning
=============  ====  ====================================================
``mul_sel``    4x2   x-buffer lane feeding each multiplier (the column of
                     the template cell, selected by a 4-to-1 mux)
``a0_sel``     2+2   adder a0 operands, each from {m0..m3}
``a1_sel``     3+3   adder a1 operands, each from {m0..m3, a0}
(``a2``)       0     hardwired ``a2 = a0 + a1``
``out_sel``    4x3   per output lane, one of
                     {zero, m0..m3, a0, a1, a2}
=============  ====  ====================================================

Because a template's cells are stored in row-major order, cells sharing a
row occupy *contiguous* multiplier lanes, and every possible row grouping
of 4 lanes (4 / 3+1 / 2+2 / 2+1+1 / ... / 1+1+1+1) is routable with this
adder arrangement — that is why 30 bits suffice for arbitrary templates.
"""

from __future__ import annotations

import dataclasses

from repro.core.bitmask import DEFAULT_K, coords_from_mask, popcount
from repro.core.templates import Portfolio

#: Output mux node ids.
NODE_ZERO = 0
NODE_M0 = 1  # m_i = NODE_M0 + i
NODE_A0 = 5
NODE_A1 = 6
NODE_A2 = 7

#: a1 operand mux node ids ({m0..m3, a0}).
A1_OPERAND_A0 = 4

_MUL_SHIFT = 0  # 4 lanes x 2 bits -> bits 0..7
_A0_SHIFT = 8  # 2 ops x 2 bits   -> bits 8..11
_A1_SHIFT = 12  # 2 ops x 3 bits   -> bits 12..17
_OUT_SHIFT = 18  # 4 lanes x 3 bits -> bits 18..29
OPCODE_BITS = 30


class OpcodeError(ValueError):
    """Raised for unroutable templates or malformed opcodes."""


@dataclasses.dataclass(frozen=True)
class Opcode:
    """Decoded view of a 30-bit VALU opcode."""

    mul_sel: tuple  # 4 x 2-bit x-lane selects
    a0_sel: tuple  # 2 x 2-bit operand selects over {m0..m3}
    a1_sel: tuple  # 2 x 3-bit operand selects over {m0..m3, a0}
    out_sel: tuple  # 4 x 3-bit output node selects

    def pack(self) -> int:
        """Pack back into the 30-bit integer form."""
        return encode_opcode(self)


def encode_opcode(opcode: Opcode) -> int:
    """Pack an :class:`Opcode` into its 30-bit integer form."""
    word = 0
    for lane, sel in enumerate(opcode.mul_sel):
        if not 0 <= sel < 4:
            raise OpcodeError(f"mul_sel[{lane}]={sel} exceeds 2 bits")
        word |= sel << (_MUL_SHIFT + 2 * lane)
    for i, sel in enumerate(opcode.a0_sel):
        if not 0 <= sel < 4:
            raise OpcodeError(f"a0_sel[{i}]={sel} exceeds 2 bits")
        word |= sel << (_A0_SHIFT + 2 * i)
    for i, sel in enumerate(opcode.a1_sel):
        if not 0 <= sel < 5:
            raise OpcodeError(f"a1_sel[{i}]={sel} out of {{m0..m3, a0}}")
        word |= sel << (_A1_SHIFT + 3 * i)
    for lane, sel in enumerate(opcode.out_sel):
        if not 0 <= sel < 8:
            raise OpcodeError(f"out_sel[{lane}]={sel} exceeds 3 bits")
        word |= sel << (_OUT_SHIFT + 3 * lane)
    return word


def decode_opcode(word: int) -> Opcode:
    """Unpack a 30-bit opcode word."""
    word = int(word)
    if not 0 <= word < (1 << OPCODE_BITS):
        raise OpcodeError(f"opcode {word:#x} is not {OPCODE_BITS}-bit")
    mul_sel = tuple(word >> (_MUL_SHIFT + 2 * i) & 3 for i in range(4))
    a0_sel = tuple(word >> (_A0_SHIFT + 2 * i) & 3 for i in range(2))
    a1_sel = tuple(word >> (_A1_SHIFT + 3 * i) & 7 for i in range(2))
    out_sel = tuple(word >> (_OUT_SHIFT + 3 * i) & 7 for i in range(4))
    for sel in a1_sel:
        if sel > A1_OPERAND_A0:
            raise OpcodeError(f"a1 operand select {sel} out of range")
    return Opcode(mul_sel, a0_sel, a1_sel, out_sel)


def opcode_for_template(mask: int, k: int = DEFAULT_K) -> Opcode:
    """Derive the VALU routing for one template pattern.

    The template's cells (row-major bit order) define the multiplier
    lanes; lanes sharing a submatrix row are summed and routed to that
    row's output lane.
    """
    if k != DEFAULT_K:
        raise OpcodeError(
            f"the VALU datapath is 4 lanes wide; k={k} is unsupported"
        )
    if popcount(mask) != k:
        raise OpcodeError(
            f"template {mask:#06x} has {popcount(mask)} cells, expected {k}"
        )
    cells = coords_from_mask(mask, k)
    mul_sel = tuple(c for __, c in cells)

    # Contiguous runs of lanes sharing a row.
    runs = []  # (row, first_lane, length)
    for lane, (r, __) in enumerate(cells):
        if runs and runs[-1][0] == r:
            runs[-1][2] += 1
        else:
            runs.append([r, lane, 1])

    a0_sel = [0, 0]
    a1_sel = [0, 0]
    out_sel = [NODE_ZERO] * k
    a0_used = False
    for row, start, length in runs:
        if length == 1:
            node = NODE_M0 + start
        elif length == 2:
            if not a0_used:
                a0_sel = [start, start + 1]
                a0_used = True
                node = NODE_A0
            else:
                a1_sel = [start, start + 1]
                node = NODE_A1
        elif length == 3:
            a0_sel = [start, start + 1]
            a0_used = True
            a1_sel = [A1_OPERAND_A0, start + 2]
            node = NODE_A1
        else:  # length == 4
            a0_sel = [0, 1]
            a1_sel = [2, 3]
            a0_used = True
            node = NODE_A2
        out_sel[row] = node
    return Opcode(mul_sel, tuple(a0_sel), tuple(a1_sel), tuple(out_sel))


def opcode_table(portfolio: Portfolio) -> list:
    """The PE's opcode look-up table: one packed opcode per t_idx.

    Loaded at initialization (paper Section IV-D2); swapping this table
    is what lets one bitstream serve different pattern portfolios.
    """
    return [
        encode_opcode(opcode_for_template(mask, portfolio.k))
        for mask in portfolio.masks
    ]
