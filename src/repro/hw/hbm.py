"""HBM channel accounting.

The functional simulator and the performance model share this byte-level
accounting: each channel records the bytes it served, and its cycle cost
is ``bytes / bytes_per_cycle`` at the core clock.  Channels are the unit
the paper allocates (4 PEs per A-value channel, 2 position channels and
``NUM_XVEC_CH`` x channels per PE group, one global y channel).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class HBMChannel:
    """One HBM pseudo-channel.

    Attributes
    ----------
    name:
        Role label, e.g. ``"g0.value0"`` or ``"y"``.
    bytes_served:
        Total bytes read or written through the channel.
    """

    name: str
    bytes_served: int = 0

    def transfer(self, nbytes: int) -> None:
        """Record a transfer of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        self.bytes_served += int(nbytes)

    def cycles(self, bytes_per_cycle: float) -> float:
        """Cycles the channel is busy at the given service rate."""
        return self.bytes_served / bytes_per_cycle


class HBMSystem:
    """The set of channels allocated to one SPASM configuration."""

    def __init__(self, config):
        self.config = config
        self.channels = {}
        for g in range(config.num_pe_groups):
            for v in range(4):
                self._add(f"g{g}.value{v}")
            for p in range(2):
                self._add(f"g{g}.pos{p}")
            for x in range(config.num_xvec_ch):
                self._add(f"g{g}.xvec{x}")
        self._add("y")

    def _add(self, name: str) -> None:
        self.channels[name] = HBMChannel(name)

    def __getitem__(self, name: str) -> HBMChannel:
        return self.channels[name]

    def __len__(self) -> int:
        return len(self.channels)

    @property
    def total_bytes(self) -> int:
        """Bytes served across all channels."""
        return sum(ch.bytes_served for ch in self.channels.values())

    def busiest(self, bytes_per_cycle: float) -> tuple:
        """(name, cycles) of the most loaded channel."""
        name = max(
            self.channels, key=lambda n: self.channels[n].bytes_served
        )
        return name, self.channels[name].cycles(bytes_per_cycle)

    def cycles(self, bytes_per_cycle: float) -> float:
        """Cycle cost of the most loaded channel (channels run in
        parallel, so the slowest one bounds the memory system)."""
        return self.busiest(bytes_per_cycle)[1]
