"""SPASM hardware configurations (paper Sections IV-D3 and V-A3).

The accelerator is parameterized by ``NUM_PE_GROUP`` (PE groups of 16 PEs
each) and ``NUM_XVEC_CH`` (HBM channels loading the x vector per group).
The HBM channel budget is ``1 + NUM_PE_GROUP * (NUM_XVEC_CH + 6)``: one
global channel for y, and per group four value channels (one per 4 PEs),
two position-encoding channels and the x channels.

On the U280 (32 channels x 14.375 GB/s = 460 GB/s) the three evaluated
bitstreams reproduce Table IV:

============  =========  ==========  ===========
version       frequency  bandwidth   peak perf.
============  =========  ==========  ===========
SPASM_4_1     252 MHz    417 GB/s    129 GFLOP/s
SPASM_3_4     265 MHz    446 GB/s    102 GFLOP/s
SPASM_3_2     251 MHz    360 GB/s    96.4 GFLOP/s
============  =========  ==========  ===========
"""

from __future__ import annotations

import dataclasses

#: Alveo U280 HBM: total bandwidth and channel count.
U280_TOTAL_BANDWIDTH = 460e9  # bytes/s
U280_NUM_CHANNELS = 32
#: Bandwidth of one HBM (pseudo-)channel.
CHANNEL_BANDWIDTH = U280_TOTAL_BANDWIDTH / U280_NUM_CHANNELS  # 14.375 GB/s
#: On-chip RAM budget of the U280 (paper Section V-A3: ~34 MB).
U280_ONCHIP_RAM = 34 * 1024 * 1024

#: PEs per PE group and scalar lanes per PE (the VALU width).
PES_PER_GROUP = 16
LANES_PER_PE = 4
#: PEs sharing one A-value HBM channel.
PES_PER_VALUE_CHANNEL = 4
#: Position-encoding channels per PE group.
POSITION_CHANNELS_PER_GROUP = 2


class ConfigError(ValueError):
    """Raised when a configuration exceeds the platform budget."""


@dataclasses.dataclass(frozen=True)
class HwConfig:
    """One synthesizable SPASM hardware version.

    Attributes
    ----------
    name:
        Bitstream label, ``SPASM_{NUM_PE_GROUP}_{NUM_XVEC_CH}``.
    num_pe_groups:
        Number of PE groups (16 PEs each).
    num_xvec_ch:
        HBM channels dedicated to x-vector loading per PE group.
    frequency_hz:
        Achieved post-route clock (paper Table IV).
    """

    name: str
    num_pe_groups: int
    num_xvec_ch: int
    frequency_hz: float

    def __post_init__(self):
        if self.num_pe_groups <= 0 or self.num_xvec_ch <= 0:
            raise ConfigError("PE groups and x channels must be positive")
        if self.hbm_channels > U280_NUM_CHANNELS:
            raise ConfigError(
                f"{self.name} needs {self.hbm_channels} HBM channels; the "
                f"U280 provides {U280_NUM_CHANNELS}"
            )

    @property
    def num_pes(self) -> int:
        """Total PEs (16 per group)."""
        return self.num_pe_groups * PES_PER_GROUP

    @property
    def parallelism(self) -> int:
        """Total scalar multiply lanes (4 per PE)."""
        return self.num_pes * LANES_PER_PE

    @property
    def hbm_channels(self) -> int:
        """Paper formula: 1 + NUM_PE_GROUP * (NUM_XVEC_CH + 6)."""
        return 1 + self.num_pe_groups * (self.num_xvec_ch + 6)

    @property
    def bandwidth(self) -> float:
        """Aggregate HBM bandwidth in bytes/s."""
        return self.hbm_channels * CHANNEL_BANDWIDTH

    @property
    def peak_gflops(self) -> float:
        """Peak throughput: lanes x 2 FLOP (mul+add) x clock."""
        return self.parallelism * 2 * self.frequency_hz / 1e9

    @property
    def bytes_per_cycle_per_channel(self) -> float:
        """HBM channel service rate at the core clock."""
        return CHANNEL_BANDWIDTH / self.frequency_hz

    def onchip_ram_bytes(self, tile_size: int) -> int:
        """On-chip buffer footprint at a tile size.

        Per PE: a double-buffered x buffer (2 x tile_size x 4 B) and a
        partial-sum buffer (tile_size x 4 B).
        """
        return self.num_pes * tile_size * 12

    def fits_onchip(self, tile_size: int,
                    budget: int = U280_ONCHIP_RAM) -> bool:
        """Whether the buffers of a tile size fit the platform RAM.

        The schedule exploration uses this to prune (tile size, config)
        points no bitstream could implement.
        """
        return self.onchip_ram_bytes(tile_size) <= budget

    def channel_inventory(self) -> dict:
        """Names of the A-value and position channels this config packs.

        The canonical per-group naming (``g{g}.value{v}`` /
        ``g{g}.pos{p}``) shared by :func:`repro.hw.memory_image.pack_images`
        and the ``mem.*`` verification rules.
        """
        value = [
            f"g{g}.value{v}"
            for g in range(self.num_pe_groups)
            for v in range(PES_PER_GROUP // PES_PER_VALUE_CHANNEL)
        ]
        position = [
            f"g{g}.pos{p}"
            for g in range(self.num_pe_groups)
            for p in range(POSITION_CHANNELS_PER_GROUP)
        ]
        return {"value": value, "position": position}

    def describe(self) -> str:
        """Table IV style one-liner."""
        return (
            f"{self.name}: {self.frequency_hz / 1e6:.0f} MHz, "
            f"{self.bandwidth / 1e9:.0f} GB/s "
            f"({self.hbm_channels} channels), "
            f"{self.peak_gflops:.1f} GFLOP/s peak"
        )


#: The three bitstreams evaluated in the paper (Table IV).
SPASM_4_1 = HwConfig("SPASM_4_1", 4, 1, 252e6)
SPASM_3_4 = HwConfig("SPASM_3_4", 3, 4, 265e6)
SPASM_3_2 = HwConfig("SPASM_3_2", 3, 2, 251e6)

DEFAULT_CONFIGS = (SPASM_4_1, SPASM_3_4, SPASM_3_2)


def make_config(num_pe_groups: int, num_xvec_ch: int,
                frequency_hz: float = 250e6) -> HwConfig:
    """Build a custom ``SPASM_{groups}_{xch}`` configuration."""
    return HwConfig(
        f"SPASM_{num_pe_groups}_{num_xvec_ch}",
        num_pe_groups,
        num_xvec_ch,
        frequency_hz,
    )
