"""Byte-level HBM memory images of a scheduled SPASM workload.

The simulator models channels by byte counts; this module goes one step
further and materializes the *actual* images a host would write into
each HBM channel before launching the accelerator:

* one **value image** per A-value channel — 16-byte group payloads
  (4 x float32) of the 4 PEs sharing the channel, interleaved per the
  schedule;
* one **position image** per position channel — the 32-bit position
  words of the group's 16 PEs, round-robined over the 2 channels;
* a per-PE **descriptor table** (tile coordinates + group counts) that
  the load units walk.

``unpack_images`` reconstructs every PE's (word, values) stream from the
images, proving the layout is lossless; tests additionally re-execute
the unpacked stream and compare against ``A @ x``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.format import SpasmMatrix
from repro.hw.configs import (
    HwConfig,
    PES_PER_GROUP,
    PES_PER_VALUE_CHANNEL,
    POSITION_CHANNELS_PER_GROUP,
)
from repro.hw.perf_model import assign_tiles


@dataclasses.dataclass(frozen=True)
class MemoryImage:
    """The packed images of one scheduled workload.

    Attributes
    ----------
    value_images:
        ``{channel_name: bytes}`` for every A-value channel.
    position_images:
        ``{channel_name: bytes}`` for every position channel.
    descriptors:
        Per PE, the ordered list of ``(tile_row, tile_col, n_groups)``.
    config:
        The hardware configuration the schedule targeted.
    """

    value_images: dict
    position_images: dict
    descriptors: list
    config: HwConfig

    @property
    def total_bytes(self) -> int:
        """Bytes across all images."""
        return sum(
            len(img) for img in self.value_images.values()
        ) + sum(len(img) for img in self.position_images.values())


def _per_pe_streams(spasm: SpasmMatrix, config: HwConfig):
    """Split the encoded stream into per-PE (descriptors, words, values)."""
    owner = assign_tiles(spasm.groups_per_tile(), config.num_pes)
    descriptors = [[] for __ in range(config.num_pes)]
    words = [[] for __ in range(config.num_pes)]
    values = [[] for __ in range(config.num_pes)]
    for t, tile in enumerate(spasm.tiles()):
        pe = int(owner[t])
        descriptors[pe].append(
            (tile.tile_row, tile.tile_col, tile.n_groups)
        )
        words[pe].append(tile.words)
        values[pe].append(tile.values)
    words = [
        np.concatenate(w) if w else np.zeros(0, dtype=np.uint32)
        for w in words
    ]
    values = [
        np.concatenate(v)
        if v
        else np.zeros((0, spasm.k), dtype=np.float64)
        for v in values
    ]
    return descriptors, words, values


def pack_images(spasm: SpasmMatrix, config: HwConfig,
                verify: bool = False) -> MemoryImage:
    """Materialize the per-channel byte images of a scheduled workload.

    ``verify=True`` statically checks the packed images against the
    encoding afterwards (descriptor schedule, channel byte budgets,
    lossless round-trip) and raises
    :class:`~repro.verify.diagnostics.VerificationError` listing every
    violation.
    """
    descriptors, pe_words, pe_values = _per_pe_streams(spasm, config)

    value_images = {}
    position_images = {}
    for g in range(config.num_pe_groups):
        base = g * PES_PER_GROUP
        # Value channels: the 4 sharing PEs' group payloads interleaved
        # round-robin (the channel serves them in turn).
        for v in range(PES_PER_GROUP // PES_PER_VALUE_CHANNEL):
            pes = [
                base + v * PES_PER_VALUE_CHANNEL + i
                for i in range(PES_PER_VALUE_CHANNEL)
            ]
            chunks = []
            counts = [pe_values[pe].shape[0] for pe in pes]
            for slot in range(max(counts, default=0)):
                for pe in pes:
                    if slot < pe_values[pe].shape[0]:
                        chunks.append(
                            pe_values[pe][slot]
                            .astype(np.float32)
                            .tobytes()
                        )
            value_images[f"g{g}.value{v}"] = b"".join(chunks)
        # Position channels: all 16 PEs' words, round-robined over the
        # group's 2 channels by word index.
        group_words = []
        for pe in range(base, base + PES_PER_GROUP):
            for i, word in enumerate(pe_words[pe]):
                group_words.append((pe, i, np.uint32(word)))
        for p in range(POSITION_CHANNELS_PER_GROUP):
            chunk = [
                np.uint32(word).tobytes()
                for idx, (__, __, word) in enumerate(group_words)
                if idx % POSITION_CHANNELS_PER_GROUP == p
            ]
            position_images[f"g{g}.pos{p}"] = b"".join(chunk)

    image = MemoryImage(
        value_images=value_images,
        position_images=position_images,
        descriptors=descriptors,
        config=config,
    )
    inventory = config.channel_inventory()
    assert sorted(value_images) == sorted(inventory["value"])
    assert sorted(position_images) == sorted(inventory["position"])
    if verify:
        from repro.verify.runner import verify_memory_image

        verify_memory_image(image, spasm=spasm).raise_if_errors()
    return image


def unpack_images(image: MemoryImage, k: int = 4):
    """Rebuild every PE's (words, values) stream from the images.

    Returns ``(pe_words, pe_values)`` lists indexed by PE id; values are
    ``float32``-rounded, exactly as the hardware would see them.
    """
    config = image.config
    n_groups_per_pe = [
        sum(n for __, __, n in descriptor)
        for descriptor in image.descriptors
    ]

    pe_values = [
        np.zeros((n, k), dtype=np.float32) for n in n_groups_per_pe
    ]
    for g in range(config.num_pe_groups):
        base = g * PES_PER_GROUP
        for v in range(PES_PER_GROUP // PES_PER_VALUE_CHANNEL):
            pes = [
                base + v * PES_PER_VALUE_CHANNEL + i
                for i in range(PES_PER_VALUE_CHANNEL)
            ]
            payload = np.frombuffer(
                image.value_images[f"g{g}.value{v}"], dtype=np.float32
            ).reshape(-1, k)
            cursor = 0
            counts = [n_groups_per_pe[pe] for pe in pes]
            for slot in range(max(counts, default=0)):
                for pe, count in zip(pes, counts):
                    if slot < count:
                        pe_values[pe][slot] = payload[cursor]
                        cursor += 1

    pe_words = [
        np.zeros(n, dtype=np.uint32) for n in n_groups_per_pe
    ]
    for g in range(config.num_pe_groups):
        base = g * PES_PER_GROUP
        slots = [
            (pe, i)
            for pe in range(base, base + PES_PER_GROUP)
            for i in range(n_groups_per_pe[pe])
        ]
        streams = [
            np.frombuffer(
                image.position_images[f"g{g}.pos{p}"], dtype=np.uint32
            )
            for p in range(POSITION_CHANNELS_PER_GROUP)
        ]
        cursors = [0] * POSITION_CHANNELS_PER_GROUP
        for idx, (pe, i) in enumerate(slots):
            p = idx % POSITION_CHANNELS_PER_GROUP
            pe_words[pe][i] = streams[p][cursors[p]]
            cursors[p] += 1

    return pe_words, pe_values
