"""Functional simulator of the whole SPASM accelerator (paper Figure 7).

Executes a SPASM-encoded matrix through the real datapath model — tile
scheduling, per-PE VALU execution via the 30-bit opcode LUT, double
buffers, partial-sum flushes and the HBM channel accounting — and
returns both the numeric result and the cycle estimate.  Agreement of
the numeric result with ``A @ x + y`` is the end-to-end correctness
check of the format + opcode + datapath stack.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

import numpy as np

from repro.core.format import SpasmMatrix
from repro.hw.configs import HwConfig
from repro.hw.hbm import HBMSystem
from repro.hw.opcode import opcode_table
from repro.hw.pe_group import PEGroup
from repro.hw.perf_model import assign_tiles, perf_breakdown


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated SpMV run.

    Attributes
    ----------
    y:
        The computed output vector (``A @ x + y0``).
    cycles:
        Estimated execution cycles (perf-model bound over the actual
        per-PE workload).
    time_s:
        ``cycles / frequency``.
    gflops:
        Paper metric ``(2*nnz + nrows) / time``.
    hbm_bytes:
        Total bytes moved across all channels.
    pe_groups_executed:
        Template groups executed per PE (load picture).
    bottleneck:
        Name of the binding resource.
    """

    y: np.ndarray
    cycles: float
    time_s: float
    gflops: float
    hbm_bytes: int
    pe_groups_executed: np.ndarray
    bottleneck: str


class SpasmAccelerator:
    """A configured SPASM accelerator instance.

    Parameters
    ----------
    config:
        The hardware version (bitstream) to simulate.
    """

    def __init__(self, config: HwConfig):
        self.config = config

    def run(self, spasm: SpasmMatrix, x: np.ndarray,
            y: Optional[np.ndarray] = None,
            engine: str = "event", verify: bool = False,
            jobs: Optional[int] = None,
            guard: Optional[Any] = None,
            backend: Optional[str] = None) -> SimResult:
        """Simulate ``y = A @ x + y`` for a SPASM-encoded matrix.

        ``engine="event"`` walks every group through the opcode-decoded
        VALU datapath (the verification path); ``engine="fast"`` uses
        the vectorized :mod:`repro.hw.fast_sim` equivalent — identical
        results and accounting, orders of magnitude faster on large
        matrices, with ``jobs`` sharding the numeric execution plan
        over a thread pool.  ``verify=True`` statically checks the
        stream and its opcode LUT first, raising
        :class:`~repro.verify.diagnostics.VerificationError` listing
        every violation before any cycle is simulated.  ``guard`` (an
        :class:`~repro.resilience.guard.ExecutionGuard` for this
        matrix) routes the fast engine's numeric execution through the
        guarded layer; it requires ``engine="fast"``.  ``backend``
        names the kernel engine the fast path dispatches on (``None``
        negotiates; see :mod:`repro.exec.backends`) and likewise
        requires ``engine="fast"``.
        """
        if verify:
            self._verify(spasm)
        if engine == "fast":
            from repro.hw.fast_sim import fast_run

            return fast_run(spasm, self.config, x, y, jobs=jobs,
                            guard=guard, backend=backend)
        if guard is not None:
            raise ValueError(
                "guarded execution requires engine='fast'"
            )
        if backend is not None:
            raise ValueError(
                "backend selection requires engine='fast' (the event "
                "engine is the VALU datapath, not a kernel backend)"
            )
        if engine != "event":
            raise ValueError(
                f"unknown engine {engine!r}; choose 'event' or 'fast'"
            )
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (spasm.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {spasm.shape}"
            )
        if y is None:
            y_out = np.zeros(spasm.shape[0], dtype=np.float64)
        else:
            y_out = np.array(y, dtype=np.float64)
            if y_out.shape != (spasm.shape[0],):
                raise ValueError(
                    f"y of shape {y_out.shape} incompatible with "
                    f"{spasm.shape}"
                )

        lut = opcode_table(spasm.portfolio)
        groups = [
            PEGroup(g, lut, spasm.tile_size, spasm.k)
            for g in range(self.config.num_pe_groups)
        ]
        pes = [pe for grp in groups for pe in grp]

        # Same scheduling policy as the performance model.
        owner = assign_tiles(spasm.groups_per_tile(), self.config.num_pes)

        tiles = list(spasm.tiles())
        per_pe_tiles = [[] for __ in pes]
        for t, pe_id in enumerate(owner):
            per_pe_tiles[pe_id].append(tiles[t])

        tile_size = spasm.tile_size
        for pe, pe_tiles in zip(pes, per_pe_tiles):
            current_row = None
            for tile in pe_tiles:
                if current_row is not None and tile.tile_row != current_row:
                    pe.flush_psum(y_out, current_row * tile_size)
                current_row = tile.tile_row
                x_lo = tile.tile_col * tile_size
                x_hi = min(x_lo + tile_size, x.size)
                pe.process_tile(tile, x[x_lo:x_hi])
            if current_row is not None:
                pe.flush_psum(y_out, current_row * tile_size)

        hbm = HBMSystem(self.config)
        for grp in groups:
            grp.charge_channels(hbm, self.config)
        total_flush_bytes = sum(pe.stats.psum_bytes for pe in pes)
        hbm["y"].transfer(total_flush_bytes)

        breakdown = perf_breakdown(
            spasm.global_composition(), self.config, tile_size
        )
        cycles = breakdown.total_cycles
        time_s = cycles / self.config.frequency_hz
        flops = 2 * spasm.source_nnz + spasm.shape[0]
        return SimResult(
            y=y_out,
            cycles=cycles,
            time_s=time_s,
            gflops=flops / time_s / 1e9 if time_s else 0.0,
            hbm_bytes=hbm.total_bytes,
            pe_groups_executed=np.array(
                [pe.stats.groups for pe in pes], dtype=np.int64
            ),
            bottleneck=breakdown.bottleneck,
        )

    def _verify(self, spasm: SpasmMatrix) -> None:
        """Statically verify a stream before simulating it."""
        from repro.verify.runner import verify_spasm

        report = verify_spasm(spasm, config=self.config)
        report.raise_if_errors()

    def run_spmm(self, spasm: SpasmMatrix, x_block: np.ndarray,
                 y_block: Optional[np.ndarray] = None,
                 verify: bool = False, jobs: Optional[int] = None,
                 guard: Optional[Any] = None,
                 backend: Optional[str] = None) -> SimResult:
        """Simulate a multi-vector run ``Y = A @ X + Y`` (extension).

        Numeric output comes from the format's exact SpMM semantics
        (through the compiled plan, one gather per vector block);
        cycles from :func:`repro.hw.perf_model.perf_breakdown_spmm`
        (the A stream read once, compute/x/y scaled by the batch).
        ``verify=True`` behaves as in :meth:`run`; ``guard`` routes
        the numeric execution through the guarded layer as in
        :meth:`run`.
        """
        if verify:
            self._verify(spasm)
        from repro.hw.perf_model import perf_breakdown_spmm

        if guard is not None:
            if guard.spasm is not spasm:
                raise ValueError(
                    "guard was built for a different matrix instance"
                )
            y_out = guard.spmm(x_block, y_block, jobs=jobs)
        else:
            y_out = spasm.spmm(x_block, y_block, jobs=jobs,
                               backend=backend)
        n_vectors = y_out.shape[1]
        breakdown = perf_breakdown_spmm(
            spasm.global_composition(), self.config, n_vectors,
            spasm.tile_size,
        )
        cycles = breakdown.total_cycles
        time_s = cycles / self.config.frequency_hz
        flops = (2 * spasm.source_nnz + spasm.shape[0]) * n_vectors
        owner = assign_tiles(spasm.groups_per_tile(), self.config.num_pes)
        pe_groups = np.bincount(
            owner,
            weights=spasm.groups_per_tile(),
            minlength=self.config.num_pes,
        ).astype(np.int64) * n_vectors
        a_bytes = spasm.n_groups * (spasm.k + 1) * 4
        xy_bytes = (
            spasm.n_tiles * spasm.tile_size * 4
            + spasm.shape[0] * 8
        ) * n_vectors
        return SimResult(
            y=y_out,
            cycles=cycles,
            time_s=time_s,
            gflops=flops / time_s / 1e9 if time_s else 0.0,
            hbm_bytes=a_bytes + xy_bytes,
            pe_groups_executed=pe_groups,
            bottleneck=breakdown.bottleneck,
        )

    def run_batch(self, spasm: SpasmMatrix, xs: np.ndarray,
                  verify: bool = False, jobs: Optional[int] = None,
                  guard: Optional[Any] = None,
                  backend: Optional[str] = None) -> SimResult:
        """Simulate a batch of independent queries, one per row of
        ``xs``.

        Numeric output comes from the plan's blocked SpMM engine
        (bitwise equal to ``n_queries`` :meth:`run` calls with
        ``engine="fast"``); cycles and HBM traffic amortize the A
        stream over the batch as in :meth:`run_spmm`.  The result's
        ``y`` is the ``(n_queries, nrows)`` output block.
        """
        if verify:
            self._verify(spasm)
        from repro.hw.fast_sim import fast_run_batch

        return fast_run_batch(spasm, self.config, xs, jobs=jobs,
                              guard=guard, backend=backend)
