"""Analytic performance model — Algorithm 4's ``PERF_MODEL``.

Estimates the execution cycles of a SPASM run from the matrix's global
composition and a hardware configuration.  The accelerator is a set of
pipelines that overlap thanks to double buffering, so total cycles are
the *maximum* of the competing resource bounds, not their sum:

* **compute** — each PE issues one template group per cycle plus a small
  tile-switch overhead; the slowest PE bounds the machine (this is the
  load-imbalance term the schedule exploration attacks);
* **A-value stream** — 4 PEs share one HBM channel carrying ``k * 4``
  bytes per group;
* **position stream** — 16 PEs share 2 channels carrying 4 bytes/group;
* **x load** — each tile a PE processes pulls a ``tile_size * 4`` byte
  x segment through the group's ``NUM_XVEC_CH`` channels (overlapped via
  the double buffer);
* **y traffic** — each partial-sum flush is a ``tile_size``-wide
  read-modify-write through the single y channel.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.core.tiling import GlobalComposition
from repro.hw.configs import (
    HwConfig,
    PES_PER_GROUP,
    PES_PER_VALUE_CHANNEL,
    POSITION_CHANNELS_PER_GROUP,
)
from repro.hw.pe import TILE_SWITCH_CYCLES

#: Fixed pipeline fill/drain cost per run.
PIPELINE_FILL_CYCLES = 64


def assign_tiles(groups_per_tile: np.ndarray, n_pes: int,
                 policy: str = "greedy") -> np.ndarray:
    """Deterministic tile -> PE assignment.

    Both the performance model and the functional simulator use this
    routine, so their load pictures agree.  Policies:

    * ``"greedy"`` (default) — stream order, least-loaded PE first;
      what the SPASM scheduler deploys.
    * ``"round-robin"`` — tile ``i`` to PE ``i % n_pes``; the naive
      baseline the ablation bench compares against.
    * ``"lpt"`` — Longest Processing Time: tiles sorted by descending
      load, then least-loaded-first.  The classic makespan heuristic;
      needs all tiles up front, so it is an offline upper bound for the
      streaming greedy.

    Returns
    -------
    np.ndarray
        PE id of each tile (original stream order).
    """
    groups_per_tile = np.asarray(groups_per_tile, dtype=np.int64)
    n_tiles = groups_per_tile.size
    if policy == "round-robin":
        return np.arange(n_tiles, dtype=np.int64) % n_pes
    if policy == "lpt":
        order = np.argsort(-groups_per_tile, kind="stable")
    elif policy == "greedy":
        order = np.arange(n_tiles)
    else:
        raise ValueError(
            f"unknown policy {policy!r}; choose greedy, round-robin "
            "or lpt"
        )
    heap = [(0, pe) for pe in range(n_pes)]
    heapq.heapify(heap)
    owner = np.empty(n_tiles, dtype=np.int64)
    for t in order:
        current, pe = heapq.heappop(heap)
        owner[t] = pe
        heapq.heappush(heap, (current + int(groups_per_tile[t]), pe))
    return owner


@dataclasses.dataclass(frozen=True)
class PerfBreakdown:
    """Per-resource cycle bounds of one estimated run."""

    compute_cycles: float
    value_stream_cycles: float
    position_stream_cycles: float
    x_load_cycles: float
    y_cycles: float

    @property
    def total_cycles(self) -> float:
        """Overall bound: the slowest overlapped resource plus fill."""
        return (
            max(
                self.compute_cycles,
                self.value_stream_cycles,
                self.position_stream_cycles,
                self.x_load_cycles,
                self.y_cycles,
            )
            + PIPELINE_FILL_CYCLES
        )

    @property
    def bottleneck(self) -> str:
        """Name of the binding resource."""
        bounds = {
            "compute": self.compute_cycles,
            "value-stream": self.value_stream_cycles,
            "position-stream": self.position_stream_cycles,
            "x-load": self.x_load_cycles,
            "y": self.y_cycles,
        }
        return max(bounds, key=lambda name: bounds[name])


def perf_breakdown(composition: GlobalComposition, config: HwConfig,
                   tile_size: int = None,
                   policy: str = "greedy") -> PerfBreakdown:
    """Estimate the per-resource cycle bounds of one run.

    ``policy`` selects the tile -> PE assignment (see
    :func:`assign_tiles`); the scheduling ablation sweeps it.
    """
    if tile_size is None:
        tile_size = composition.tile_size
    k = composition.k
    bpc = config.bytes_per_cycle_per_channel
    n_pes = config.num_pes

    groups_per_tile = composition.groups_per_tile
    owner = assign_tiles(groups_per_tile, n_pes, policy)

    # Compute bound: slowest PE.
    pe_groups = np.bincount(
        owner, weights=groups_per_tile, minlength=n_pes
    ).astype(np.int64)
    pe_tiles = np.bincount(owner, minlength=n_pes)
    compute = (
        (pe_groups + TILE_SWITCH_CYCLES * pe_tiles).max()
        if owner.size
        else 0
    )

    # A-value stream: 4 consecutive PEs share one channel (k*4 B/group).
    n_value_ch = n_pes // PES_PER_VALUE_CHANNEL
    ch_of_pe = np.arange(n_pes) // PES_PER_VALUE_CHANNEL
    value_bytes = np.bincount(
        ch_of_pe, weights=pe_groups * (k * 4), minlength=n_value_ch
    )
    value_cycles = value_bytes.max() / bpc if value_bytes.size else 0.0

    # Position stream: 16 PEs share 2 channels (4 B/group).
    group_of_pe = np.arange(n_pes) // PES_PER_GROUP
    pos_bytes = np.bincount(
        group_of_pe, weights=pe_groups * 4, minlength=config.num_pe_groups
    )
    pos_cycles = (
        pos_bytes.max() / (POSITION_CHANNELS_PER_GROUP * bpc)
        if pos_bytes.size
        else 0.0
    )

    # x load: every tile pulls one tile_size x-segment through the
    # group's x channels.
    x_bytes = np.bincount(
        group_of_pe,
        weights=pe_tiles * tile_size * 4,
        minlength=config.num_pe_groups,
    )
    x_cycles = (
        x_bytes.max() / (config.num_xvec_ch * bpc) if x_bytes.size else 0.0
    )

    # y: per-PE partial sums merge on chip in the partial-sum merge unit,
    # so the single y channel sees one read-modify-write per non-empty
    # tile row.
    n_rows_present = np.unique(composition.tile_rows).size
    y_cycles = n_rows_present * tile_size * 8 / bpc

    return PerfBreakdown(
        compute_cycles=float(compute),
        value_stream_cycles=float(value_cycles),
        position_stream_cycles=float(pos_cycles),
        x_load_cycles=float(x_cycles),
        y_cycles=float(y_cycles),
    )


def perf_model(composition: GlobalComposition, config: HwConfig,
               tile_size: int = None) -> float:
    """Algorithm 4's PERF_MODEL: estimated cycles of one run.

    Infeasible points — tile buffers exceeding the platform's on-chip
    RAM — cost infinity, so the schedule exploration prunes them.
    """
    if tile_size is None:
        tile_size = composition.tile_size
    if not config.fits_onchip(tile_size):
        return float("inf")
    return perf_breakdown(composition, config, tile_size).total_cycles


def perf_breakdown_spmm(composition: GlobalComposition, config: HwConfig,
                        n_vectors: int, tile_size: int = None,
                        policy: str = "greedy") -> PerfBreakdown:
    """Cycle bounds of a multi-vector run (``Y = A @ X``, extension).

    The A stream (values + position words) is read **once** while each
    group issues ``n_vectors`` VALU operations and the x/y traffic
    scales with ``n_vectors`` — so compute and vector traffic grow
    linearly but the dominant A-stream term is amortized, raising
    arithmetic intensity.  For SPASM's typically stream- or
    compute-bound matrices this converts directly into utilization.
    """
    if n_vectors < 1:
        raise ValueError(f"n_vectors must be >= 1, got {n_vectors}")
    single = perf_breakdown(composition, config, tile_size, policy)
    return PerfBreakdown(
        compute_cycles=single.compute_cycles * n_vectors,
        value_stream_cycles=single.value_stream_cycles,
        position_stream_cycles=single.position_stream_cycles,
        x_load_cycles=single.x_load_cycles * n_vectors,
        y_cycles=single.y_cycles * n_vectors,
    )


def estimate_spmm_gflops(composition: GlobalComposition, config: HwConfig,
                         nnz: int, nrows: int, n_vectors: int) -> float:
    """Paper-style throughput of a multi-vector run."""
    cycles = perf_breakdown_spmm(
        composition, config, n_vectors
    ).total_cycles
    time_s = cycles / config.frequency_hz
    flops = (2 * nnz + nrows) * n_vectors
    return flops / time_s / 1e9 if time_s else 0.0


def estimate_time_s(composition: GlobalComposition,
                    config: HwConfig) -> float:
    """Estimated wall-clock execution time of one SpMV."""
    return perf_model(composition, config) / config.frequency_hz


def estimate_gflops(composition: GlobalComposition, config: HwConfig,
                    nnz: int, nrows: int) -> float:
    """Paper throughput metric: ``(2*nnz + nrows) / exe_time`` in GFLOP/s."""
    time_s = estimate_time_s(composition, config)
    if time_s == 0.0:
        return 0.0
    return (2 * nnz + nrows) / time_s / 1e9
