"""Terminal bar and line charts for the figure benchmarks.

The paper's figures are bar charts and CDF curves; these helpers render
the same series as text so the benchmark output reads like the figure,
not just its data table.
"""

from __future__ import annotations

import math


def bar_chart(labels, values, width: int = 50, title: str = "",
              unit: str = "", log: bool = False) -> str:
    """Horizontal bar chart.

    Parameters
    ----------
    labels, values:
        Parallel sequences; values must be non-negative (and positive
        when ``log``).
    width:
        Maximum bar width in characters.
    log:
        Scale bars by log10 (for series spanning decades).
    """
    labels = [str(label) for label in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    if not values:
        return title
    if log and any(v <= 0 for v in values):
        raise ValueError("log scale needs positive values")
    if any(v < 0 for v in values):
        raise ValueError("bar chart needs non-negative values")

    def scale(v):
        return math.log10(v) if log else v

    top = max(scale(v) for v in values)
    bottom = min(scale(v) for v in values) if log else 0.0
    span = top - bottom or 1.0
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        frac = (scale(value) - bottom) / span
        bar = "#" * max(int(round(frac * width)), 1 if value > 0 else 0)
        lines.append(
            f"{label:>{label_w}} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(categories, series, width: int = 40,
                      title: str = "", log: bool = False) -> str:
    """Grouped bars: one block per category, one bar per series.

    ``series`` is ``{name: [value per category]}`` — the Figure 12
    layout (matrices x platforms).
    """
    series = {str(k): [float(v) for v in vals]
              for k, vals in series.items()}
    for name, vals in series.items():
        if len(vals) != len(categories):
            raise ValueError(
                f"series {name!r} length does not match categories"
            )
    lines = [title] if title else []
    name_w = max(len(name) for name in series)
    all_values = [v for vals in series.values() for v in vals]
    if log and any(v <= 0 for v in all_values):
        raise ValueError("log scale needs positive values")

    def scale(v):
        return math.log10(v) if log else v

    top = max(scale(v) for v in all_values)
    bottom = min(scale(v) for v in all_values) if log else 0.0
    span = top - bottom or 1.0
    for i, category in enumerate(categories):
        lines.append(f"{category}:")
        for name, vals in series.items():
            frac = (scale(vals[i]) - bottom) / span
            bar = "#" * max(int(round(frac * width)), 1)
            lines.append(f"  {name:>{name_w}} | {bar} {vals[i]:.2f}")
    return "\n".join(lines)


def line_chart(series, width: int = 60, height: int = 12,
               title: str = "", x_labels=None) -> str:
    """Multi-series line (scatter) chart on a character grid.

    ``series`` is ``{name: [y values]}``; all series share the x axis
    (their indices).  Each series plots with its own glyph.
    """
    glyphs = "*o+x@%"
    series = {str(k): [float(v) for v in vals]
              for k, vals in series.items()}
    if not series:
        return title
    n = max(len(vals) for vals in series.values())
    if n < 2:
        raise ValueError("line chart needs at least two points")
    all_values = [v for vals in series.values() for v in vals]
    top, bottom = max(all_values), min(all_values)
    span = top - bottom or 1.0

    grid = [[" "] * width for __ in range(height)]
    for s_idx, (name, vals) in enumerate(series.items()):
        glyph = glyphs[s_idx % len(glyphs)]
        for i, v in enumerate(vals):
            x = int(round(i * (width - 1) / (n - 1)))
            y = int(round((top - v) / span * (height - 1)))
            grid[y][x] = glyph

    lines = [title] if title else []
    lines.append(f"{top:10.2f} ┐")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{bottom:10.2f} ┘")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    if x_labels is not None:
        lines.append(" " * 12 + " .. ".join(str(v) for v in x_labels))
    return "\n".join(lines)
