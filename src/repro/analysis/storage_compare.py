"""Storage cost comparison machinery (Figures 9-11, Table VI)."""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.core.patterns import analyze_local_patterns
from repro.core.selection import select_portfolio, storage_bytes_estimate
from repro.core.templates import candidate_portfolios
from repro.matrix.storage import storage_report


def spasm_storage_bytes(coo, portfolio=None, coverage: float = 0.95) -> int:
    """SPASM storage cost with a dynamically selected portfolio.

    When ``portfolio`` is given it is used directly (the fixed-portfolio
    series of Figure 10); otherwise Algorithm 3 picks the best candidate
    for the matrix.
    """
    histogram = analyze_local_patterns(coo)
    if portfolio is None:
        selection = select_portfolio(histogram, coverage=coverage)
        portfolio = selection.portfolio
    return storage_bytes_estimate(histogram, portfolio)


def suite_storage_reports(matrices, coverage: float = 0.95):
    """Figure 11 data: per-matrix storage reports including SPASM."""
    reports = []
    for name, coo in matrices:
        spasm_bytes = spasm_storage_bytes(coo, coverage=coverage)
        reports.append(storage_report(coo, name, spasm_bytes=spasm_bytes))
    return reports


def storage_summary(reports) -> dict:
    """Table VI: min/max/geomean COO-normalized improvement per format."""
    formats = [f for f in reports[0].formats if f != "COO"]
    summary = {}
    for fmt in formats:
        improvements = [r.improvement(fmt) for r in reports]
        summary[fmt] = {
            "min": min(improvements),
            "max": max(improvements),
            "geomean": geomean(improvements),
        }
    return summary


def render_storage_comparison(reports) -> str:
    """Human-readable Figure 11 + Table VI output."""
    formats = reports[0].formats
    headers = ["matrix"] + list(formats)
    rows = [
        [r.name] + [r.improvement(fmt) for fmt in formats]
        for r in reports
    ]
    table = format_table(
        headers, rows,
        title="Storage improvement over COO (higher is better)",
    )
    summary = storage_summary(reports)
    lines = [table, "", "Table VI (min / geomean / max):"]
    for fmt, s in summary.items():
        lines.append(
            f"  {fmt:<20s} {s['min']:.2f}x / {s['geomean']:.2f}x / "
            f"{s['max']:.2f}x"
        )
    return "\n".join(lines)


def pattern_size_sweep(matrices, ks=(2, 3, 4)) -> dict:
    """Figure 9 data: SPASM bytes/nnz under different pattern sizes.

    For each pattern size the best vector-family portfolio is selected
    per matrix (Algorithm 3), mirroring the paper's sweep.
    """
    results = {}
    for name, coo in matrices:
        per_k = {}
        for k in ks:
            histogram = analyze_local_patterns(coo, k)
            selection = select_portfolio(
                histogram, candidates=candidate_portfolios(k)
            )
            bytes_total = storage_bytes_estimate(
                histogram, selection.portfolio
            )
            per_k[k] = bytes_total / max(coo.nnz, 1)
        results[name] = per_k
    return results


def template_selection_sweep(matrices, coverage: float = 0.95) -> dict:
    """Figure 10 data: SPASM bytes/nnz per fixed portfolio + dynamic.

    Returns ``{matrix: {portfolio_name: bytes_per_nnz, ...,
    "dynamic": bytes_per_nnz}}``; uncoverable (portfolio, matrix) pairs
    are reported as ``float("inf")``.
    """
    candidates = candidate_portfolios()
    results = {}
    for name, coo in matrices:
        histogram = analyze_local_patterns(coo)
        row = {}
        for portfolio in candidates:
            try:
                row[portfolio.name] = (
                    storage_bytes_estimate(histogram, portfolio)
                    / max(coo.nnz, 1)
                )
            except Exception:
                row[portfolio.name] = float("inf")
        row["dynamic"] = min(row.values())
        results[name] = row
    return results
