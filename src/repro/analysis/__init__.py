"""Analysis and reporting: the metric and table machinery behind every
reproduced figure and table of the paper's evaluation section."""

from repro.analysis.metrics import (
    geomean,
    speedup_summary,
    throughput_table,
    utilization_table,
    energy_table,
)
from repro.analysis.frequency import pattern_cdf_table, top_pattern_report
from repro.analysis.storage_compare import (
    suite_storage_reports,
    storage_summary,
)
from repro.analysis.report import format_table
from repro.analysis.charts import bar_chart, grouped_bar_chart, line_chart
from repro.analysis.spy import spy, spy_with_border

__all__ = [
    "geomean",
    "speedup_summary",
    "throughput_table",
    "utilization_table",
    "energy_table",
    "pattern_cdf_table",
    "top_pattern_report",
    "suite_storage_reports",
    "storage_summary",
    "format_table",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "spy",
    "spy_with_border",
]
