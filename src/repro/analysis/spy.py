"""ASCII spy plots — the global-composition sketches of Table II.

Maps a sparse matrix onto a small character grid where each glyph
encodes the non-zero density of its region, giving a terminal rendition
of the "GC" column in the paper's workload table.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.coo import COOMatrix

#: Density ramp from empty to dense.
DEFAULT_RAMP = " .:+*#@"


def spy(coo: COOMatrix, width: int = 48, height: int = 24,
        ramp: str = DEFAULT_RAMP) -> str:
    """Render a density spy plot of a matrix.

    Parameters
    ----------
    coo:
        The matrix to render.
    width, height:
        Character-grid dimensions.
    ramp:
        Characters from empty to dense; the non-empty cells are scaled
        so the densest region maps to the last glyph.
    """
    if width <= 0 or height <= 0:
        raise ValueError("spy grid dimensions must be positive")
    if len(ramp) < 2:
        raise ValueError("ramp needs at least 2 glyphs")
    grid = np.zeros((height, width), dtype=np.int64)
    if coo.nnz:
        r = (coo.rows * height // max(coo.shape[0], 1)).clip(0, height - 1)
        c = (coo.cols * width // max(coo.shape[1], 1)).clip(0, width - 1)
        np.add.at(grid, (r, c), 1)

    peak = grid.max()
    lines = []
    levels = len(ramp) - 1
    for row in grid:
        if peak == 0:
            lines.append(ramp[0] * width)
            continue
        # Non-empty regions always render at least the faintest glyph.
        scaled = np.where(
            row == 0,
            0,
            1 + (row - 1) * (levels - 1) // max(peak, 1),
        )
        lines.append("".join(ramp[level] for level in scaled))
    return "\n".join(lines)


def spy_with_border(coo: COOMatrix, width: int = 48, height: int = 24,
                    ramp: str = DEFAULT_RAMP) -> str:
    """Spy plot framed in a box, for report output."""
    body = spy(coo, width, height, ramp).splitlines()
    top = "+" + "-" * width + "+"
    framed = [top] + [f"|{line}|" for line in body] + [top]
    return "\n".join(framed)
