"""Pattern frequency analyses behind Figures 2 and 3."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.patterns import PatternHistogram, analyze_local_patterns


def top_pattern_report(name: str, histogram: PatternHistogram,
                       n: int = 8) -> str:
    """Figure 2 style report: the top-n patterns with ASCII art."""
    header = (
        f"{name}: {histogram.total} non-empty submatrices, "
        f"{histogram.n_distinct} distinct patterns, "
        f"top-{n} covers {histogram.coverage_of_top(n) * 100:.2f}%"
    )
    return header + "\n" + histogram.describe_top(n)


def pattern_cdf_table(matrices, top_ns=(1, 2, 4, 8, 16, 32, 64),
                      k: int = 4) -> str:
    """Figure 3 data: CDF of top-n pattern coverage per matrix.

    Parameters
    ----------
    matrices:
        Iterable of ``(name, COOMatrix)``.
    top_ns:
        The n values to tabulate.
    """
    headers = ["matrix"] + [f"top-{n}" for n in top_ns]
    rows = []
    for name, coo in matrices:
        histogram = analyze_local_patterns(coo, k)
        rows.append(
            [name]
            + [histogram.coverage_of_top(n) * 100.0 for n in top_ns]
        )
    return format_table(
        headers, rows, title="CDF of top-n local patterns (%)", precision=1
    )


def cdf_series(histogram: PatternHistogram,
               max_n: int = None) -> np.ndarray:
    """The raw Figure 3 series: cumulative share of the top-n patterns."""
    cdf = histogram.cdf()
    if max_n is not None:
        cdf = cdf[:max_n]
    return cdf
