"""Plain-text table rendering for benchmark output."""

from __future__ import annotations


def format_table(headers, rows, title: str = "", precision: int = 2) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; floats are formatted to ``precision``.
    title:
        Optional heading line.
    """
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
