"""Throughput, speedup, utilization and energy metrics (Figures 12-13,
Table VII)."""

from __future__ import annotations

import math

from repro.analysis.report import format_table
from repro.hw.power import energy_efficiency, platform_power, spasm_power


def geomean(values) -> float:
    """Geometric mean (the paper's average for speedups)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_summary(speedups) -> dict:
    """Min / max / geomean of a speedup series (Table VI style)."""
    speedups = [float(s) for s in speedups]
    return {
        "min": min(speedups),
        "max": max(speedups),
        "geomean": geomean(speedups),
    }


def throughput_table(matrices, spasm_model, baseline_models) -> dict:
    """Figure 12 data: per-matrix GFLOP/s and speedups vs each baseline.

    Parameters
    ----------
    matrices:
        Iterable of ``(name, COOMatrix)``.
    spasm_model:
        :class:`repro.baselines.spasm.SpasmModel`.
    baseline_models:
        List of :class:`AcceleratorModel` baselines.

    Returns
    -------
    dict with ``rows`` (per-matrix records), ``speedups`` (per baseline
    name, the per-matrix speedup list) and ``summary`` (per baseline,
    min/max/geomean).
    """
    rows = []
    speedups = {model.name: [] for model in baseline_models}
    for name, coo in matrices:
        spasm_gflops = spasm_model.gflops(coo)
        record = {"name": name, "SPASM": spasm_gflops}
        for model in baseline_models:
            base_gflops = model.gflops(coo)
            record[model.name] = base_gflops
            speedups[model.name].append(spasm_gflops / base_gflops)
        rows.append(record)
    summary = {
        name: speedup_summary(values) for name, values in speedups.items()
    }
    return {"rows": rows, "speedups": speedups, "summary": summary}


def bandwidth_efficiency_table(matrices, spasm_model,
                               baseline_models) -> dict:
    """Figure 12 (bottom) data: (GFLOP/s)/(GB/s) and improvement ratios."""
    rows = []
    ratios = {model.name: [] for model in baseline_models}
    for name, coo in matrices:
        spasm_be = spasm_model.bandwidth_efficiency(coo)
        record = {"name": name, "SPASM": spasm_be}
        for model in baseline_models:
            base_be = model.bandwidth_efficiency(coo)
            record[model.name] = base_be
            ratios[model.name].append(spasm_be / base_be)
        rows.append(record)
    summary = {
        name: speedup_summary(values) for name, values in ratios.items()
    }
    return {"rows": rows, "ratios": ratios, "summary": summary}


def utilization_table(matrices, spasm_model, baseline_models) -> list:
    """Figure 13 data: % of peak bandwidth and compute per platform."""
    rows = []
    for name, coo in matrices:
        record = {
            "name": name,
            "SPASM": {
                "bandwidth": spasm_model.bandwidth_utilization(coo),
                "compute": spasm_model.compute_utilization(coo),
            },
        }
        for model in baseline_models:
            record[model.name] = {
                "bandwidth": model.bandwidth_utilization(coo),
                "compute": model.compute_utilization(coo),
            }
        rows.append(record)
    return rows


def energy_table(matrices, spasm_model, baseline_models) -> list:
    """Table VII data: average power and energy efficiency per platform.

    Throughput is averaged (geomean) over the suite; power comes from
    the Table VII model.
    """
    platforms = []
    spasm_gflops = geomean(
        [spasm_model.gflops(coo) for __, coo in matrices]
    )
    spasm_watts = geomean(
        [
            spasm_power(spasm_model.program(coo).hw_config)
            for __, coo in matrices
        ]
    )
    for model in baseline_models:
        gflops = geomean([model.gflops(coo) for __, coo in matrices])
        watts = platform_power(model.name)
        platforms.append(
            {
                "name": model.name,
                "power_w": watts,
                "gflops": gflops,
                "efficiency": energy_efficiency(gflops, watts),
            }
        )
    platforms.append(
        {
            "name": "SPASM",
            "power_w": spasm_watts,
            "gflops": spasm_gflops,
            "efficiency": energy_efficiency(spasm_gflops, spasm_watts),
        }
    )
    return platforms


def render_throughput(result: dict, baseline_names) -> str:
    """Human-readable Figure 12 table."""
    headers = ["matrix", "SPASM"] + list(baseline_names)
    rows = [
        [r["name"]] + [r[h] for h in headers[1:]] for r in result["rows"]
    ]
    table = format_table(headers, rows, title="Throughput (GFLOP/s)")
    lines = [table, "", "Speedup of SPASM (min / geomean / max):"]
    for name, s in result["summary"].items():
        lines.append(
            f"  vs {name:<12s} {s['min']:.2f}x / {s['geomean']:.2f}x / "
            f"{s['max']:.2f}x"
        )
    return "\n".join(lines)
