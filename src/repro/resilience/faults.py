"""Seeded, deterministic fault injection for SPASM's fast paths.

Every injector draws from one ``numpy`` generator seeded at
construction, so a campaign (or a failing test) is reproducible from
its seed alone.  Faults come in two flavors:

* **data faults** mutate an artifact *in place* — a bit flipped in the
  position-word stream, the value payload or a compiled plan array, a
  truncated/zeroed/garbage-filled artifact-cache file, a flipped bit in
  a packed HBM channel image.  In-place mutation matters: it models
  corruption happening *after* the guard pinned its trust anchors, the
  scenario integrity machinery exists for.
* **worker faults** hook the shard dispatch inside
  :meth:`repro.exec.plan.ExecutionPlan.spmv` and kill, stall or delay a
  chosen shard invocation (:func:`worker_fault`).

Each injection returns a :class:`FaultRecord` describing exactly what
was done, so campaign reports can attribute every outcome.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.exec.plan import set_shard_fault_hook


class InjectedFault(RuntimeError):
    """Base class of all deliberately injected failures."""


class InjectedWorkerFault(InjectedFault):
    """Raised inside a shard worker by :func:`worker_fault`."""


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """What one injection actually did.

    Attributes
    ----------
    surface:
        Which layer was hit: ``stream``, ``value``, ``plan``,
        ``backend`` (a kernel backend's prepared scratch), ``cache``,
        ``image`` or ``worker``.
    mode:
        The corruption applied (``bitflip``, ``truncate``, ``zero``,
        ``garbage``, ``kill``, ``stall``, ``delay``).
    location:
        Human-readable coordinates of the hit.
    details:
        Machine-readable payload (indices, bits, byte offsets).
    """

    surface: str
    mode: str
    location: str
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "surface": self.surface,
            "mode": self.mode,
            "location": self.location,
            "details": dict(self.details),
        }


def clone_spasm(spasm: Any) -> Any:
    """A deep copy of an encoded matrix safe to corrupt.

    All stored arrays are copied (so in-place faults never touch the
    pristine original) and no lazily cached plan is carried over.
    """
    return dataclasses.replace(
        spasm,
        tile_rows=spasm.tile_rows.copy(),
        tile_cols=spasm.tile_cols.copy(),
        tile_ptr=spasm.tile_ptr.copy(),
        words=spasm.words.copy(),
        values=spasm.values.copy(),
    )


class FaultInjector:
    """Deterministic fault source; one seed reproduces a whole campaign.

    All ``flip_*`` methods mutate their target **in place** and return
    a :class:`FaultRecord`; use :func:`clone_spasm` (or array copies)
    first when the pristine artifact must survive.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)

    # -- stream faults -------------------------------------------------

    def flip_stream_word(self, spasm: Any) -> FaultRecord:
        """Flip one bit of one 32-bit position word."""
        group = int(self.rng.integers(0, max(spasm.words.size, 1)))
        bit = int(self.rng.integers(0, 32))
        spasm.words[group] ^= np.uint32(1) << np.uint32(bit)
        return FaultRecord(
            surface="stream", mode="bitflip",
            location=f"words[{group}] bit {bit}",
            details={"group": group, "bit": bit},
        )

    def flip_value(self, spasm: Any) -> FaultRecord:
        """Flip one bit of one stored float64 slot value."""
        flat = spasm.values.reshape(-1).view(np.uint64)
        slot = int(self.rng.integers(0, max(flat.size, 1)))
        bit = int(self.rng.integers(0, 64))
        flat[slot] ^= np.uint64(1) << np.uint64(bit)
        return FaultRecord(
            surface="value", mode="bitflip",
            location=f"values.flat[{slot}] bit {bit}",
            details={"slot": slot, "bit": bit},
        )

    # -- plan faults ---------------------------------------------------

    def flip_plan_array(self, plan: Any) -> FaultRecord:
        """Flip one bit in one of the plan's executable arrays.

        Itemsize-aware: the array is viewed as raw bytes, so every bit
        of a compact v2 layout (int32 indices, float32 values) is as
        reachable as an int64/float64 word — no dtype is excluded from
        the fault surface.
        """
        candidates = [
            name for name in ("cols", "vals", "seg_starts", "seg_rows")
            if getattr(plan, name).size
        ]
        name = candidates[int(self.rng.integers(0, len(candidates)))]
        arr = getattr(plan, name)
        flat = arr.reshape(-1).view(np.uint8)
        byte = int(self.rng.integers(0, flat.size))
        bit = int(self.rng.integers(0, 8))
        flat[byte] ^= np.uint8(1 << bit)
        return FaultRecord(
            surface="plan", mode="bitflip",
            location=f"{name} byte {byte} bit {bit} "
                     f"({arr.dtype.name})",
            details={"array": name, "byte": byte, "bit": bit,
                     "dtype": arr.dtype.name},
        )

    # -- backend-state faults ------------------------------------------

    def flip_backend_state(self, plan: Any, backend: str,
                           float_only: bool = False,
                           ) -> Optional[FaultRecord]:
        """Flip one bit in a backend's *prepared* scratch arrays.

        Backends upload per-plan device state at
        :meth:`~repro.exec.backends.base.ExecutionBackend.prepare`
        time (the CSR backend's dense row pointer, the gather
        backend's widened index copies); this hits that prepared
        surface rather than the plan's own arrays, modeling corruption
        of scratch the guard's checksum never covers.  The prepared
        state is materialized through the plan's memo
        (so the flip lands in exactly the arrays a later dispatch
        consumes) and cleared by ``plan._scratch.clear()``.  Returns
        ``None`` when the backend exposes no byte-addressable state.

        ``float_only=True`` restricts the flip to floating-point
        scratch (skipping index arrays).  A flipped index inside a
        compiled kernel's scratch is not a *silent* fault — it writes
        out of bounds and crashes the host process, which a campaign
        running in-process cannot survive to classify; the chaos
        campaign therefore injects only the silently-wrong flavor and
        leaves crash containment to process supervision.
        """
        from repro.exec.backends import resolve_backend

        engine = resolve_backend(backend, plan=plan, op="spmv")
        arrays = engine.prepared_arrays(
            plan._backend_state(engine)
        )
        candidates = sorted(
            name for name, arr in arrays.items()
            if arr.size and (not float_only
                             or np.issubdtype(arr.dtype, np.floating))
        )
        if not candidates:
            return None
        name = candidates[int(self.rng.integers(0, len(candidates)))]
        arr = arrays[name]
        flat = arr.reshape(-1).view(np.uint8)
        byte = int(self.rng.integers(0, flat.size))
        bit = int(self.rng.integers(0, 8))
        flat[byte] ^= np.uint8(1 << bit)
        return FaultRecord(
            surface="backend", mode="bitflip",
            location=f"{engine.name}:{name} byte {byte} bit {bit} "
                     f"({arr.dtype.name})",
            details={"backend": engine.name, "array": name,
                     "byte": byte, "bit": bit,
                     "dtype": arr.dtype.name},
        )

    # -- cache faults --------------------------------------------------

    def corrupt_cache_entry(self, cache: Any,
                            mode: Optional[str] = None,
                            ) -> Optional[FaultRecord]:
        """Truncate, zero or garbage one on-disk ``.npz`` cache entry.

        Returns ``None`` when the cache holds no entries.
        """
        entries = cache.entries()
        if not entries:
            return None
        name = entries[int(self.rng.integers(0, len(entries)))]
        path = os.path.join(cache.cache_dir, name)
        if mode is None:
            mode = ("truncate", "zero", "garbage")[
                int(self.rng.integers(0, 3))
            ]
        blob = bytearray(open(path, "rb").read())
        size = len(blob)
        if mode == "truncate":
            keep = int(self.rng.integers(0, max(size, 1)))
            blob = blob[:keep]
            detail: Dict[str, Any] = {"kept_bytes": keep,
                                      "orig_bytes": size}
        elif mode == "zero":
            lo = int(self.rng.integers(0, max(size, 1)))
            hi = min(size, lo + int(self.rng.integers(1, 64)))
            blob[lo:hi] = bytes(hi - lo)
            detail = {"zeroed": [lo, hi]}
        else:  # garbage
            lo = int(self.rng.integers(0, max(size, 1)))
            hi = min(size, lo + int(self.rng.integers(1, 64)))
            blob[lo:hi] = self.rng.bytes(hi - lo)
            detail = {"garbled": [lo, hi]}
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        detail["entry"] = name
        return FaultRecord(
            surface="cache", mode=mode, location=name, details=detail,
        )

    # -- memory-image faults -------------------------------------------

    def flip_image_bit(self, image: Any) -> Tuple[Any, FaultRecord]:
        """Flip one bit in one packed HBM channel image.

        Channel images are immutable ``bytes``; the mutated
        :class:`~repro.hw.memory_image.MemoryImage` is returned
        alongside the record.
        """
        pools = [
            ("value", dict(image.value_images)),
            ("position", dict(image.position_images)),
        ]
        kind, images = pools[int(self.rng.integers(0, 2))]
        names = sorted(ch for ch, img in images.items() if len(img))
        if not names:
            kind, images = pools[0] if kind == "position" else pools[1]
            names = sorted(
                ch for ch, img in images.items() if len(img)
            )
        channel = names[int(self.rng.integers(0, len(names)))]
        blob = bytearray(images[channel])
        byte = int(self.rng.integers(0, len(blob)))
        bit = int(self.rng.integers(0, 8))
        blob[byte] ^= 1 << bit
        images[channel] = bytes(blob)
        mutated = dataclasses.replace(
            image,
            value_images=(
                images if kind == "value" else dict(image.value_images)
            ),
            position_images=(
                images if kind == "position"
                else dict(image.position_images)
            ),
        )
        record = FaultRecord(
            surface="image", mode="bitflip",
            location=f"{channel} byte {byte} bit {bit}",
            details={"channel": channel, "byte": byte, "bit": bit},
        )
        return mutated, record

    # -- worker faults -------------------------------------------------

    @contextlib.contextmanager
    def worker_fault(self, mode: str = "kill", nth: Optional[int] = None,
                     delay_s: float = 0.005,
                     ) -> Iterator[FaultRecord]:
        """Arm a shard-worker fault for the duration of the context.

        ``mode="kill"`` raises :class:`InjectedWorkerFault` inside the
        ``nth`` shard invocation (chosen by the injector's generator
        when not given); ``"stall"``/``"delay"`` sleep ``delay_s``
        instead.  The hook is installed process-wide through
        :func:`repro.exec.plan.set_shard_fault_hook` and restored on
        exit; invocation counting is thread-safe, so exactly one shard
        is hit no matter the shard grid.
        """
        if mode not in ("kill", "stall", "delay"):
            raise ValueError(f"unknown worker fault mode {mode!r}")
        if nth is None:
            nth = int(self.rng.integers(0, 4))
        lock = threading.Lock()
        state = {"calls": 0}
        record = FaultRecord(
            surface="worker", mode=mode,
            location=f"shard invocation {nth}",
            details={"nth": nth, "delay_s": delay_s},
        )

        def hook(lo: int, hi: int) -> None:
            with lock:
                call = state["calls"]
                state["calls"] += 1
            if call == nth:
                if mode == "kill":
                    raise InjectedWorkerFault(
                        f"injected worker fault in shard [{lo}, {hi})"
                    )
                time.sleep(delay_s)

        previous = set_shard_fault_hook(hook)
        try:
            yield record
        finally:
            set_shard_fault_hook(previous)
