"""Guarded plan execution: detect, contain, recover — never corrupt.

:class:`ExecutionGuard` wraps a matrix's compiled-plan execution with
the integrity machinery the fast paths otherwise lack:

* **digest pinning** — the stream digest is recorded when the guard is
  created (the moment the artifact is trusted); any later corruption
  of the position words or values re-keys the stream and is caught
  before dispatch.  Unrecoverable by construction — the naive engine
  would chew the same corrupt stream — so it raises
  :class:`IntegrityError` rather than "recovering" to a wrong answer.
* **plan validation** — every newly acquired plan is checked with
  :meth:`~repro.exec.plan.ExecutionPlan.validate` (structural
  invariants + build-time checksum) before its arrays are dispatched.
* **sampled divergence guard** — every ``check_interval``-th call, a
  small random row block of the output is cross-checked against
  reference slices captured through the naive expansion path
  (:class:`RowOracle`).
* **retry with rebuild** — a plan that fails validation or execution
  is dropped (and its persisted artifact quarantined through the
  cache's own machinery), rebuilt from the stream, and retried up to
  ``max_attempts`` times with doubling ``backoff_s`` sleeps in
  between — every sleep clipped by the ``max_retry_wall_s`` cap and
  the caller's per-request deadline (see :class:`_RetryBudget`), so
  retries can never blow a request budget.
* **automatic fallback** — when the plan engine cannot produce a
  trustworthy answer, execution falls back to
  :meth:`~repro.core.format.SpasmMatrix.spmv_naive`.

Every incident is appended to a :class:`ResilienceLog` as a structured
:class:`ResilienceEvent`; the clean path costs one identity check plus
the amortized sampled cross-check (measured ≤ 5 % — see the campaign
report in ``benchmarks/results/``).
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np


class IntegrityError(RuntimeError):
    """Detected corruption with no trusted engine left to fall back to.

    Carries the :class:`ResilienceEvent` records accumulated on the
    failing call path on ``.events``.
    """

    def __init__(self, message: str,
                 events: Optional[List["ResilienceEvent"]] = None):
        super().__init__(message)
        self.events: List[ResilienceEvent] = list(events or [])


@dataclasses.dataclass(frozen=True)
class ResilienceEvent:
    """One guard incident.

    Attributes
    ----------
    kind:
        ``detect`` (corruption found), ``rebuild`` (plan recompiled),
        ``retry`` (execution re-attempted), ``fallback`` (switched to
        the naive engine), ``quarantine`` (cache entry pulled),
        ``deadline`` (retry budget exhausted before recovery
        completed), ``degrade``/``restore`` (serving-layer ladder
        transitions), ``evict`` (plan registry pressure eviction).
    surface:
        The layer involved: ``stream``, ``plan``, ``worker``,
        ``output`` or ``cache``.
    detail:
        Human-readable description.
    action:
        What the guard did about it (``rebuild``, ``retry``,
        ``fallback``, ``raise``, ``none``).
    attempt:
        1-based acquisition attempt the event occurred on.
    backend:
        Name of the kernel backend involved (``""`` when the incident
        precedes backend resolution, e.g. stream/plan surfaces).
    """

    kind: str
    surface: str
    detail: str
    action: str = "none"
    attempt: int = 0
    backend: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def render(self) -> str:
        suffix = f" (attempt {self.attempt})" if self.attempt else ""
        via = f" [{self.backend}]" if self.backend else ""
        return (f"{self.kind:10s} {self.surface:7s} -> "
                f"{self.action}{suffix}{via}: {self.detail}")


class ResilienceLog:
    """Append-only log of guard incidents."""

    def __init__(self) -> None:
        self.events: List[ResilienceEvent] = []

    def record(self, event: ResilienceEvent) -> ResilienceEvent:
        self.events.append(event)
        return event

    def counts(self) -> Dict[str, int]:
        """Event tally by kind."""
        tally: Dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclasses.dataclass(frozen=True)
class GuardConfig:
    """Knobs of the guarded execution layer.

    The defaults keep the clean path within the ≤ 5 % overhead budget;
    the fault campaign tightens every interval to 1 so each injected
    fault is confronted on the very next call.
    """

    #: Validate a newly acquired plan before its first dispatch.
    validate_plan: bool = True
    #: Additionally run the symbolic proof obligations of
    #: :mod:`repro.analyze` (segment coverage, shard disjointness,
    #: index-width, policy consistency) on a newly acquired plan; a
    #: refuted obligation is treated like a failed validation
    #: (detect -> rebuild).  Off by default: strictly stronger than
    #: ``validate_plan`` but several times the acquisition cost.
    static_analysis: bool = False
    #: Re-pin the stream digest every N-th call (0 = only at guard
    #: creation and on rebuilds; digesting the stream is O(stream)).
    repin_interval: int = 0
    #: Re-run full plan validation (checksum recompute) every N-th
    #: call (0 = only on acquisition).
    revalidate_interval: int = 0
    #: Cross-check sampled rows against the naive oracle every N-th
    #: call (0 = off).
    check_interval: int = 16
    #: Rows sampled by the divergence guard.
    check_rows: int = 4
    #: Plan acquisitions attempted before falling back to naive.
    max_attempts: int = 2
    #: Sleep between rebuild attempts (bounded backoff, doubling).
    backoff_s: float = 0.0
    #: Hard cap on the total wall time a single call may spend in
    #: retry/backoff before giving up on the plan engine (the doubling
    #: backoff is clipped so the sum of sleeps never exceeds this).
    #: ``0`` disables the cap.  A per-request deadline passed to the
    #: call tightens this further.
    max_retry_wall_s: float = 30.0
    #: Allow the naive fallback (the campaign disables it to prove
    #: detection alone would catch everything).
    fallback: bool = True


class _RetryBudget:
    """Wall-clock and deadline aware backoff for one guarded call.

    Replaces the old unconditional ``sleep(backoff); backoff *= 2``
    loop: every sleep is clipped to both the guard's
    :attr:`GuardConfig.max_retry_wall_s` cap and the request's own
    deadline (any object exposing ``remaining() -> float``), so a
    retry ladder can never blow a request budget.  ``exhausted``
    flips once no retry time remains — the caller stops re-attempting
    and moves straight to its terminal action (fallback or raise).
    """

    def __init__(self, backoff_s: float, wall_s: float,
                 deadline: Any = None):
        self.backoff_s = float(backoff_s)
        self.wall_s = float(wall_s) if wall_s else 0.0
        self.deadline = deadline
        self._start = time.monotonic()

    def remaining(self) -> float:
        """Retry seconds left under the cap and the deadline."""
        left = math.inf
        if self.wall_s > 0:
            left = self.wall_s - (time.monotonic() - self._start)
        if self.deadline is not None:
            left = min(left, float(self.deadline.remaining()))
        return left

    @property
    def exhausted(self) -> bool:
        """Whether any retry time remains."""
        return self.remaining() <= 0.0

    def sleep(self) -> float:
        """One clipped backoff sleep; doubles for the next attempt.

        Returns the time actually slept (0.0 when no backoff is
        configured or no budget remains).
        """
        if self.backoff_s <= 0:
            return 0.0
        nap = min(self.backoff_s, max(self.remaining(), 0.0))
        self.backoff_s *= 2
        if nap > 0 and math.isfinite(nap):
            time.sleep(nap)
            return nap
        return 0.0


class RowOracle:
    """Reference slices for a sampled row block, built the naive way.

    Built once per guard from the stream's expansion — the same path
    :meth:`~repro.core.format.SpasmMatrix.spmv_naive` executes — and
    therefore independent of every plan array.  ``mismatches`` checks
    a computed output vector against ``sum(vals * x[cols])`` per
    sampled row.
    """

    def __init__(self, rows: np.ndarray,
                 slices: List[Tuple[np.ndarray, np.ndarray]]):
        self.rows = rows
        self.slices = slices

    @classmethod
    def build(cls, spasm: Any, rows: np.ndarray) -> "RowOracle":
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        rows = rows[(rows >= 0) & (rows < spasm.shape[0])]
        exp_rows, exp_cols, exp_vals = spasm._expand()
        keep = exp_vals != 0.0
        exp_rows = exp_rows[keep]
        exp_cols = exp_cols[keep]
        exp_vals = exp_vals[keep]
        slices = []
        for row in rows:
            sel = exp_rows == row
            slices.append((exp_cols[sel], exp_vals[sel]))
        return cls(rows=rows, slices=slices)

    def mismatches(self, x: np.ndarray,
                   y: np.ndarray) -> List[int]:
        """Sampled rows where ``y`` diverges from the reference."""
        bad: List[int] = []
        for row, (cols, vals) in zip(self.rows, self.slices):
            expected = float(np.dot(vals, x[cols]))
            if not np.isclose(y[row], expected,
                              rtol=1e-9, atol=1e-12):
                bad.append(int(row))
        return bad


class ExecutionGuard:
    """Guarded SpMV execution for one encoded matrix.

    Parameters
    ----------
    spasm:
        The :class:`~repro.core.format.SpasmMatrix` to execute.  The
        stream digest is pinned **now** — the guard treats the stream
        as trusted at construction time.
    config:
        :class:`GuardConfig` knobs (defaults are production-lean).
    cache:
        Optional :class:`~repro.pipeline.cache.ArtifactCache` used for
        plan persistence; corrupt entries quarantine themselves on
        load.
    log:
        Optional shared :class:`ResilienceLog`; a fresh one is created
        otherwise (exposed as :attr:`log`).
    seed:
        Seed of the divergence guard's row sampler.
    backend:
        Kernel backend every guarded dispatch runs on (``None``
        negotiates per plan); incidents on the worker/output surfaces
        name the resolved backend in their events.
    """

    def __init__(self, spasm: Any,
                 config: Optional[GuardConfig] = None,
                 cache: Any = None,
                 log: Optional[ResilienceLog] = None,
                 seed: int = 0,
                 backend: Optional[str] = None):
        from repro.exec.plan import stream_digest

        self.spasm = spasm
        self.config = config or GuardConfig()
        self.cache = cache
        self.log = log or ResilienceLog()
        self.backend = backend
        self.expected_digest = stream_digest(spasm)
        self._rng = np.random.default_rng(seed)
        self._oracle: Optional[RowOracle] = None
        self._plan: Any = None
        self._calls = 0

    # -- internals -----------------------------------------------------

    def _due(self, interval: int) -> bool:
        return bool(interval) and self._calls % interval == 0

    def _engine_name(self, plan: Any, op: str) -> str:
        """Name of the backend a dispatch resolved (for event labels).

        Falls back to the configured name when resolution itself fails
        — the event should still say which engine was being asked for.
        """
        from repro.exec.backends import resolve_backend

        try:
            return resolve_backend(self.backend, plan=plan, op=op).name
        except Exception:
            return str(self.backend or "auto")

    def _oracle_rows(self) -> np.ndarray:
        nrows = int(self.spasm.shape[0])
        n = min(self.config.check_rows, nrows)
        return self._rng.choice(nrows, size=n, replace=False)

    def _invalidate(self) -> None:
        """Drop every cached plan so the next acquisition rebuilds."""
        self._plan = None
        self.spasm._plan = None

    def _acquire(self, attempt: int) -> Any:
        """A validated plan for the pinned stream, or ``None``.

        Detection events are logged here; the caller decides between
        rebuild, fallback and raise.
        """
        plan = self._plan
        fresh = plan is None
        try:
            if fresh:
                plan = self.spasm.plan(cache=self.cache)
            elif self._due(self.config.repin_interval):
                # Re-acquire through the matrix: recomputes the stream
                # digest and rebuilds the plan if the stream changed.
                plan = self.spasm.plan(cache=self.cache)
                fresh = plan is not self._plan
        except IntegrityError:
            raise
        except Exception as exc:
            # A stream the compiler cannot even decode: unrecoverable.
            self.log.record(ResilienceEvent(
                kind="detect", surface="stream", action="raise",
                attempt=attempt,
                detail=f"plan compilation failed: "
                       f"{type(exc).__name__}: {exc}",
            ))
            raise IntegrityError(
                f"encoded stream cannot be compiled: {exc}",
                events=self.log.events,
            ) from exc
        if plan.digest != self.expected_digest:
            self.log.record(ResilienceEvent(
                kind="detect", surface="stream", action="raise",
                attempt=attempt,
                detail=(
                    "stream digest changed after pinning "
                    f"({plan.digest[:12]}... != "
                    f"{self.expected_digest[:12]}...)"
                ),
            ))
            raise IntegrityError(
                "encoded stream corrupted after the guard pinned it: "
                "no engine can produce a trustworthy result",
                events=self.log.events,
            )
        revalidate = (
            (fresh and self.config.validate_plan)
            or self._due(self.config.revalidate_interval)
        )
        if revalidate:
            problems = plan.validate()
            if problems:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="plan", action="rebuild",
                    attempt=attempt, detail="; ".join(problems),
                ))
                self._invalidate()
                return None
        if fresh and self.config.static_analysis:
            from repro.analyze.symbolic import analyze_plan

            report = analyze_plan(
                plan, spasm=self.spasm, backend=self.backend
            )
            if report.refuted:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="plan", action="rebuild",
                    attempt=attempt,
                    detail="; ".join(
                        o.render() for o in report.refuted
                    ),
                ))
                self._invalidate()
                return None
        self._plan = plan
        return plan

    def _checked_output(self, plan: Any, x: np.ndarray,
                        jobs: Optional[int], attempt: int,
                        ) -> Optional[np.ndarray]:
        """Run the plan and cross-check sampled rows; ``None`` on a
        divergence (the plan is dropped for rebuild)."""
        out = plan.spmv(x, jobs=jobs, backend=self.backend)
        if self._due(self.config.check_interval):
            if self._oracle is None:
                self._oracle = RowOracle.build(
                    self.spasm, self._oracle_rows()
                )
            bad = self._oracle.mismatches(x, out)
            if bad:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="output", action="rebuild",
                    attempt=attempt,
                    backend=self._engine_name(plan, "spmv"),
                    detail=(
                        f"sampled rows {bad} diverge from the naive "
                        "oracle"
                    ),
                ))
                self._invalidate()
                return None
        return out

    def _add_y(self, out: np.ndarray,
               y: Optional[np.ndarray]) -> np.ndarray:
        if y is None:
            return out
        y = np.asarray(y, dtype=np.float64)
        if y.shape != out.shape:
            raise ValueError(
                f"y of shape {y.shape} incompatible with "
                f"{self.spasm.shape}"
            )
        return out + y

    # -- public API ----------------------------------------------------

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             deadline: Any = None) -> np.ndarray:
        """Guarded ``y = A @ x + y``.

        Semantics match :meth:`ExecutionPlan.spmv` exactly on the
        clean path (bitwise, including sharding determinism; dispatch
        runs on the guard's configured ``backend``).  On a detected
        fault the call recovers through rebuild/retry, then the naive
        engine; it raises :class:`IntegrityError` only when the pinned
        stream itself is corrupt.  ``deadline`` (any object with
        ``remaining() -> float``, e.g.
        :class:`repro.serve.Deadline`) clips every retry sleep and
        short-circuits remaining attempts once the budget is gone —
        recovery then jumps straight to the terminal action.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.spasm.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with "
                f"{self.spasm.shape}"
            )
        self._calls += 1
        budget = _RetryBudget(self.config.backoff_s,
                              self.config.max_retry_wall_s, deadline)
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                if budget.exhausted:
                    self.log.record(ResilienceEvent(
                        kind="deadline", surface="plan",
                        action="fallback", attempt=attempt,
                        detail="retry budget exhausted before "
                               "recovery completed",
                    ))
                    break
                self.log.record(ResilienceEvent(
                    kind="rebuild", surface="plan", action="retry",
                    attempt=attempt,
                    detail="recompiling the plan from the stream",
                ))
                budget.sleep()
            plan = self._acquire(attempt)
            if plan is None:
                continue
            try:
                out = self._checked_output(plan, x, jobs, attempt)
            except IntegrityError:
                raise
            except Exception as exc:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="worker", action="retry",
                    attempt=attempt,
                    backend=self._engine_name(plan, "spmv"),
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                continue
            if out is not None:
                return self._add_y(out, y)
        # Out of attempts: the plan engine cannot be trusted.
        if not self.config.fallback:
            self.log.record(ResilienceEvent(
                kind="detect", surface="plan", action="raise",
                backend=str(self.backend or "auto"),
                detail="plan engine exhausted attempts, fallback "
                       "disabled",
            ))
            raise IntegrityError(
                "plan engine failed every attempt and fallback is "
                "disabled",
                events=self.log.events,
            )
        self.log.record(ResilienceEvent(
            kind="fallback", surface="plan", action="fallback",
            backend=str(self.backend or "auto"),
            detail=(
                f"plan engine failed {self.config.max_attempts} "
                "attempts; executing through spmv_naive"
            ),
        ))
        return self.spasm.spmv_naive(x, y)

    def spmm(self, x_block: np.ndarray,
             y_block: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             deadline: Any = None) -> np.ndarray:
        """Guarded multi-vector execution (validation + fallback).

        The per-row divergence oracle applies to SpMV only; SpMM gets
        plan validation, worker containment and the naive fallback.
        ``deadline`` short-circuits remaining attempts as in
        :meth:`spmv`.
        """
        self._calls += 1
        budget = _RetryBudget(self.config.backoff_s,
                              self.config.max_retry_wall_s, deadline)
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                if budget.exhausted:
                    self.log.record(ResilienceEvent(
                        kind="deadline", surface="plan",
                        action="fallback", attempt=attempt,
                        detail="retry budget exhausted before "
                               "recovery completed",
                    ))
                    break
                budget.sleep()
            plan = self._acquire(attempt)
            if plan is None:
                continue
            try:
                return plan.spmm(x_block, y_block=y_block, jobs=jobs,
                                 backend=self.backend)
            except IntegrityError:
                raise
            except ValueError:
                raise  # caller error (shape), not a fault
            except Exception as exc:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="worker", action="retry",
                    attempt=attempt,
                    backend=self._engine_name(plan, "spmm"),
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                self._invalidate()
        if not self.config.fallback:
            raise IntegrityError(
                "plan engine failed every attempt and fallback is "
                "disabled",
                events=self.log.events,
            )
        self.log.record(ResilienceEvent(
            kind="fallback", surface="plan", action="fallback",
            backend=str(self.backend or "auto"),
            detail="executing SpMM through spmm_naive",
        ))
        return self.spasm.spmm_naive(x_block, y_block)

    def spmv_batch(self, xs: np.ndarray,
                   jobs: Optional[int] = None,
                   deadline: Any = None) -> np.ndarray:
        """Guarded batched SpMV: one ``(n_queries, ncols)`` row per query.

        Executes through :meth:`ExecutionPlan.spmv_batch` (blocked
        SpMM), so the clean path is bitwise-identical to stacking
        guarded :meth:`spmv` calls.  The sampled divergence oracle
        cross-checks the first query of the batch when due; recovery
        follows the same rebuild/retry/fallback ladder as
        :meth:`spmv`, with retries clipped by ``deadline``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2 or xs.shape[1] != self.spasm.shape[1]:
            raise ValueError(
                f"xs of shape {xs.shape} incompatible with "
                f"{self.spasm.shape}; expected (n_queries, "
                f"{self.spasm.shape[1]})"
            )
        self._calls += 1
        budget = _RetryBudget(self.config.backoff_s,
                              self.config.max_retry_wall_s, deadline)
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                if budget.exhausted:
                    self.log.record(ResilienceEvent(
                        kind="deadline", surface="plan",
                        action="fallback", attempt=attempt,
                        detail="retry budget exhausted before "
                               "recovery completed",
                    ))
                    break
                self.log.record(ResilienceEvent(
                    kind="rebuild", surface="plan", action="retry",
                    attempt=attempt,
                    detail="recompiling the plan from the stream",
                ))
                budget.sleep()
            plan = self._acquire(attempt)
            if plan is None:
                continue
            try:
                out = plan.spmv_batch(xs, jobs=jobs,
                                      backend=self.backend)
            except IntegrityError:
                raise
            except ValueError:
                raise  # caller error (shape), not a fault
            except Exception as exc:
                self.log.record(ResilienceEvent(
                    kind="detect", surface="worker", action="retry",
                    attempt=attempt,
                    backend=self._engine_name(plan, "spmv_batch"),
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                self._invalidate()
                continue
            if xs.shape[0] and self._due(self.config.check_interval):
                if self._oracle is None:
                    self._oracle = RowOracle.build(
                        self.spasm, self._oracle_rows()
                    )
                bad = self._oracle.mismatches(xs[0], out[0])
                if bad:
                    self.log.record(ResilienceEvent(
                        kind="detect", surface="output",
                        action="rebuild", attempt=attempt,
                        backend=self._engine_name(plan, "spmv_batch"),
                        detail=(
                            f"sampled rows {bad} of batch query 0 "
                            "diverge from the naive oracle"
                        ),
                    ))
                    self._invalidate()
                    continue
            return out
        if not self.config.fallback:
            self.log.record(ResilienceEvent(
                kind="detect", surface="plan", action="raise",
                backend=str(self.backend or "auto"),
                detail="plan engine exhausted attempts, fallback "
                       "disabled",
            ))
            raise IntegrityError(
                "plan engine failed every attempt and fallback is "
                "disabled",
                events=self.log.events,
            )
        self.log.record(ResilienceEvent(
            kind="fallback", surface="plan", action="fallback",
            backend=str(self.backend or "auto"),
            detail=(
                f"plan engine failed {self.config.max_attempts} "
                "attempts; executing the batch through spmv_naive"
            ),
        ))
        if xs.shape[0] == 0:
            return np.zeros((0, self.spasm.shape[0]), dtype=np.float64)
        return np.stack(
            [self.spasm.spmv_naive(x) for x in xs]
        )


def guarded_spmv(spasm: Any, x: np.ndarray,
                 y: Optional[np.ndarray] = None,
                 jobs: Optional[int] = None,
                 config: Optional[GuardConfig] = None,
                 cache: Any = None,
                 log: Optional[ResilienceLog] = None,
                 backend: Optional[str] = None) -> np.ndarray:
    """One-shot guarded SpMV (constructs a transient guard).

    Hot loops should hold an :class:`ExecutionGuard` instead — the
    guard's pinning and oracle construction amortize across calls.
    """
    return ExecutionGuard(
        spasm, config=config, cache=cache, log=log, backend=backend
    ).spmv(x, y=y, jobs=jobs)
