"""Chaos-under-load: fault injection against a *live* server.

:mod:`repro.resilience.campaign` proves the guard survives each fault
surface in isolation, one call at a time.  This module raises the bar:
it stands up a real :class:`~repro.serve.SpmvServer` (admission
control, batching workers, degradation ladder), drives seeded
mixed-tenant load through it, and fires
:class:`~repro.resilience.faults.FaultInjector` surfaces at the live
serving state between bursts — in-place stream/value bit flips on a
hot entry, plan-array and backend-scratch flips on the executing
plan, on-disk cache corruption followed by forced re-warms, and
shard-worker kills/stalls armed across a whole burst.

Every response of every burst is then audited bitwise against
references computed from pristine clones **before** any injection:

==============  ====================================================
``contained``   status ``ok`` and bitwise equal to a reference
                (plan-path or naive) — served correctly through or
                around the fault.
``detected``    status ``failed`` — the guard refused to answer
                (e.g. stream digest mismatch): correctness preserved
                by rejection.
``shed``        status ``shed`` — dropped by admission or deadline
                policy, no result returned.
``escaped``     status ``ok`` but **wrong** — the only bad outcome,
                and the campaign gate: any escape fails the run.
==============  ====================================================

After each wave the campaign heals the hit tenant by swapping a fresh
pristine clone into the registry
(:meth:`~repro.serve.PlanRegistry.replace`), mirroring an operator
re-ingesting a matrix, so waves stay independent.  The report also
carries clean-phase vs chaos-phase latency percentiles for
``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import tempfile
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.resilience.faults import FaultInjector, clone_spasm
from repro.resilience.guard import GuardConfig

#: Serving guard hardened for the chaos gate: the stream digest is
#: re-pinned and the plan revalidated on *every* call, and the sampled
#: oracle runs every call, so an injected fault is confronted by the
#: very next request rather than within a window.  Fallback stays on —
#: containment through the naive engine is a success mode here.
CHAOS_GUARD = GuardConfig(
    validate_plan=True,
    repin_interval=1,
    revalidate_interval=1,
    check_interval=1,
    check_rows=4,
    max_attempts=2,
    backoff_s=0.0005,
    max_retry_wall_s=2.0,
)

#: Chaos presets.  ``smoke`` is the CI gate; ``full`` widens every
#: axis (tenants, bursts, waves per surface).
CHAOS_PRESETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "matrices": [("tmt_sym", 0.5), ("mip1", 0.3)],
        "tenants": [
            # (tenant, matrix index, weight, deadline_ms, n_probes)
            ("latency", 0, 2.0, 250.0, 3),
            ("batch", 1, 1.0, None, 3),
        ],
        "workers": 2,
        "max_queue_per_plan": 32,
        "max_total": 96,
        "clean_requests": 60,
        "burst_requests": 24,
        "waves_per_surface": 1,
        "surfaces": ["stream", "value", "plan", "backend", "cache",
                     "worker"],
    },
    "full": {
        "matrices": [("tmt_sym", 1.0), ("mip1", 0.5), ("rim", 0.5)],
        "tenants": [
            ("latency", 0, 2.0, 400.0, 4),
            ("batch", 1, 1.0, None, 4),
            ("bulk", 2, 1.0, 1000.0, 4),
        ],
        "workers": 3,
        "max_queue_per_plan": 48,
        "max_total": 160,
        "clean_requests": 200,
        "burst_requests": 60,
        "waves_per_surface": 3,
        "surfaces": ["stream", "value", "plan", "backend", "cache",
                     "worker"],
    },
}


class _ChaosRun:
    """One campaign's mutable state (matrices, server, references)."""

    def __init__(self, spec: Dict[str, Any], seed: int,
                 cache_dir: Optional[str],
                 progress: Optional[Callable[[str], None]]):
        self.spec = spec
        self.seed = int(seed)
        self.injector = FaultInjector(seed=seed)
        self.progress = progress or (lambda line: None)
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._tmp = tempfile.TemporaryDirectory(
                prefix="repro-chaos-"
            )
            cache_dir = self._tmp.name
        self.cache_dir = cache_dir
        self.pristine: Dict[str, Any] = {}
        self.refs: Dict[str, List[Dict[str, np.ndarray]]] = {}

    # -- setup ----------------------------------------------------------

    def build(self) -> None:
        from repro.pipeline.cache import ArtifactCache
        from repro.serve import (
            AdmissionConfig,
            PlanRegistry,
            SpmvServer,
            TenantSpec,
            tenant_probes,
        )
        from repro.synth import load_workload

        cache = ArtifactCache(self.cache_dir)
        self.registry = PlanRegistry(
            cache=cache, guard_config=CHAOS_GUARD, seed=self.seed,
        )
        self.plan_names: List[str] = []
        ncols_of: Dict[str, int] = {}
        for workload, scale in self.spec["matrices"]:
            name = f"{workload}@{scale:g}"
            coo = load_workload(workload, scale)
            entry = self.registry.register(name, coo=coo)
            self.pristine[name] = clone_spasm(entry.spasm)
            self.plan_names.append(name)
            ncols_of[name] = int(entry.spasm.shape[1])
            self.progress(f"registered {name}: shape="
                          f"{tuple(entry.spasm.shape)} nnz={coo.nnz}")
        self.tenants = [
            TenantSpec(name=tenant, plan=self.plan_names[mat_idx],
                       weight=weight, deadline_ms=deadline_ms,
                       n_probes=n_probes)
            for tenant, mat_idx, weight, deadline_ms, n_probes
            in self.spec["tenants"]
        ]
        self.probes = tenant_probes(self.tenants, ncols_of, self.seed)
        # References from pristine clones, before any injection: both
        # the plan path and the naive path are legitimate provenances
        # for an ``ok`` answer.
        for tenant in self.tenants:
            spasm = clone_spasm(self.pristine[tenant.plan])
            pool = self.probes[tenant.name]
            self.refs[tenant.name] = [
                {
                    "naive": spasm.spmv_naive(pool[i]),
                    "plan": spasm.spmv(pool[i]),
                }
                for i in range(pool.shape[0])
            ]
        self.server = SpmvServer(
            self.registry,
            admission=AdmissionConfig(
                max_queue_per_plan=self.spec["max_queue_per_plan"],
                max_total=self.spec["max_total"],
            ),
            workers=self.spec["workers"],
        )

    # -- verification ---------------------------------------------------

    def classify(self, report: Any) -> Dict[str, Any]:
        """Audit one load report bitwise; tally outcome classes."""
        tally = {"requests": 0, "contained": 0, "detected": 0,
                 "shed": 0, "escaped": 0}
        escapes: List[Dict[str, Any]] = []
        for record in report.records:
            tally["requests"] += 1
            response = record.response
            if response.status == "shed":
                tally["shed"] += 1
            elif response.status == "failed":
                tally["detected"] += 1
            else:
                refs = self.refs[record.tenant][record.probe]
                if (np.array_equal(response.y, refs["naive"])
                        or np.array_equal(response.y, refs["plan"])):
                    tally["contained"] += 1
                else:
                    tally["escaped"] += 1
                    escapes.append({
                        "tenant": record.tenant,
                        "plan": record.plan,
                        "probe": record.probe,
                        "level": response.level,
                    })
        tally["escapes"] = escapes
        return tally

    # -- injection ------------------------------------------------------

    def inject(self, surface: str, wave: int) -> Dict[str, Any]:
        """Fire one fault at the live server; returns wave metadata.

        Returns the fault record (if any) plus a ``heal`` list of plan
        names to restore after the burst and, for worker faults, the
        armed context manager.
        """
        target = self.plan_names[
            int(self.injector.rng.integers(len(self.plan_names)))
        ]
        meta: Dict[str, Any] = {"surface": surface, "wave": wave,
                                "target": target, "record": None,
                                "heal": [], "worker_ctx": None}
        if surface in ("stream", "value", "plan", "backend"):
            lease = self.registry.acquire(target)
            try:
                if surface == "stream":
                    record = self.injector.flip_stream_word(lease.spasm)
                elif surface == "value":
                    record = self.injector.flip_value(lease.spasm)
                else:
                    plan = lease.spasm.plan()
                    if surface == "plan":
                        record = self.injector.flip_plan_array(plan)
                    else:
                        from repro.exec.backends import resolve_backend

                        engine = resolve_backend(None, plan=plan,
                                                 op="spmv").name
                        record = self.injector.flip_backend_state(
                            plan, engine, float_only=True
                        )
            finally:
                self.registry.release(lease)
            meta["record"] = record
            meta["heal"] = [target]
        elif surface == "cache":
            record = self.injector.corrupt_cache_entry(
                self.registry.cache
            )
            meta["record"] = record
            # Force re-warms through the corrupted cache: evict every
            # idle plan so the next acquire reloads from disk.
            for name in self.plan_names:
                self.registry.evict(name)
        elif surface == "worker":
            meta["worker_ctx"] = self.injector.worker_fault(
                mode=("kill", "stall")[wave % 2], nth=0,
            )
        else:
            raise ValueError(f"unknown chaos surface {surface!r}")
        return meta

    def heal(self, meta: Dict[str, Any]) -> None:
        """Restore pristine state for every plan a wave touched."""
        for name in meta["heal"]:
            self.registry.replace(name, clone_spasm(self.pristine[name]))

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()


def _shard_storm(run: "_ChaosRun", enable: bool) -> Dict[str, int]:
    """Force the shard path on small plans for worker waves.

    Serving-sized chaos matrices never cross the auto-shard
    thresholds, so worker faults would be unreachable; lowering
    ``MIN_SHARD_SLOTS`` and pinning two jobs per hot plan makes every
    burst dispatch through the pool.  Returns the saved constants for
    restore.
    """
    import repro.exec.plan as plan_mod

    saved = {"min": plan_mod.MIN_SHARD_SLOTS}
    if enable:
        plan_mod.MIN_SHARD_SLOTS = 1
        for name in run.plan_names:
            lease = run.registry.acquire(name)
            try:
                lease.spasm.plan().override_auto_jobs(2)
            finally:
                run.registry.release(lease)
    return saved


def run_chaos_campaign(preset: Any = "smoke", seed: int = 0,
                       cache_dir: Optional[str] = None,
                       progress: Optional[Callable[[str], None]] = None,
                       ) -> Dict[str, Any]:
    """Run the chaos-under-load campaign; returns a JSON-able report.

    Parameters
    ----------
    preset:
        A :data:`CHAOS_PRESETS` key (``smoke``/``full``) or an explicit
        preset dict with the same schema.
    seed:
        Master seed: matrices, probe pools, tenant sequences and every
        injection are a pure function of it.
    cache_dir:
        Artifact-cache directory (a throwaway temp dir by default —
        the cache surface corrupts entries on disk).
    progress:
        Optional one-line-per-phase callback.
    """
    import repro.exec.plan as plan_mod

    from repro.serve import run_load

    if isinstance(preset, dict):
        spec, preset_name = preset, "custom"
    else:
        try:
            spec = CHAOS_PRESETS[preset]
        except KeyError:
            raise KeyError(
                f"unknown chaos preset {preset!r}; choose from "
                f"{sorted(CHAOS_PRESETS)}"
            ) from None
        preset_name = preset
    run = _ChaosRun(spec, seed, cache_dir, progress)
    waves: List[Dict[str, Any]] = []
    try:
        run.build()
        with run.server:
            run.progress("clean phase")
            clean = run_load(
                run.server, run.tenants, run.probes,
                spec["clean_requests"], seed=seed + 1,
            )
            clean_audit = run.classify(clean)

            chaos_records: List[Any] = []
            chaos_wall = 0.0
            wave_idx = 0
            for surface in spec["surfaces"]:
                for repeat in range(spec["waves_per_surface"]):
                    wave_idx += 1
                    meta = run.inject(surface, wave_idx)
                    storm = surface == "worker"
                    saved = _shard_storm(run, storm)
                    try:
                        ctx = meta.pop("worker_ctx")
                        if ctx is not None:
                            with ctx as record:
                                meta["record"] = record
                                burst = run_load(
                                    run.server, run.tenants,
                                    run.probes,
                                    spec["burst_requests"],
                                    seed=seed + 101 * wave_idx,
                                )
                        else:
                            burst = run_load(
                                run.server, run.tenants, run.probes,
                                spec["burst_requests"],
                                seed=seed + 101 * wave_idx,
                            )
                    finally:
                        plan_mod.MIN_SHARD_SLOTS = saved["min"]
                    audit = run.classify(burst)
                    record = meta["record"]
                    waves.append({
                        "wave": wave_idx,
                        "surface": surface,
                        "target": meta["target"],
                        "fault": (record.to_dict()
                                  if record is not None else None),
                        **{k: v for k, v in audit.items()},
                    })
                    chaos_records.extend(burst.records)
                    chaos_wall += burst.wall_s
                    run.heal(meta)
                    run.progress(
                        f"wave {wave_idx} [{surface}]: "
                        f"contained={audit['contained']} "
                        f"detected={audit['detected']} "
                        f"shed={audit['shed']} "
                        f"escaped={audit['escaped']}"
                    )
            from repro.serve.loadgen import LoadReport

            chaos = LoadReport(records=chaos_records,
                               wall_s=max(chaos_wall, 1e-9))
            server_stats = run.server.stats()
    finally:
        run.close()

    totals = {"requests": 0, "contained": 0, "detected": 0,
              "shed": 0, "escaped": 0}
    escapes: List[Dict[str, Any]] = []
    for wave in waves:
        for key in ("requests", "contained", "detected", "shed",
                    "escaped"):
            totals[key] += wave[key]
        escapes.extend(wave.pop("escapes"))

    report = {
        "campaign": "chaos-under-load",
        "preset": preset_name,
        "seed": seed,
        "guard": {
            field: getattr(CHAOS_GUARD, field)
            for field in ("repin_interval", "revalidate_interval",
                          "check_interval", "check_rows",
                          "max_attempts", "max_retry_wall_s")
        },
        "clean": {
            **clean.summary(),
            "audit": {k: v for k, v in clean_audit.items()
                      if k != "escapes"},
        },
        "chaos": {
            "latency_ms": chaos.percentiles_ms(),
            "waves": waves,
            "totals": totals,
            "escapes": escapes,
        },
        "server": server_stats,
        "zero_escapes": (totals["escaped"] == 0
                         and clean_audit["escaped"] == 0),
    }
    return report


def render_chaos_report(report: Dict[str, Any]) -> str:
    """Human-readable chaos campaign summary."""
    totals = report["chaos"]["totals"]
    clean = report["clean"]
    lines = [
        f"chaos-under-load: preset={report['preset']} "
        f"seed={report['seed']}",
        f"  clean : {clean['requests']} requests, "
        f"qps={clean['qps']:.1f}, "
        f"p99={clean['latency_ms']['p99']:.2f} ms",
        f"  chaos : {totals['requests']} requests over "
        f"{len(report['chaos']['waves'])} waves, "
        f"p99={report['chaos']['latency_ms']['p99']:.2f} ms",
        f"  outcome: contained={totals['contained']} "
        f"detected={totals['detected']} shed={totals['shed']} "
        f"escaped={totals['escaped']}",
    ]
    for wave in report["chaos"]["waves"]:
        lines.append(
            f"    wave {wave['wave']:>2} {wave['surface']:<8} "
            f"-> contained={wave['contained']} "
            f"detected={wave['detected']} shed={wave['shed']} "
            f"escaped={wave['escaped']}"
        )
    verdict = "PASS" if report["zero_escapes"] else "FAIL (escapes!)"
    lines.append(f"  gate  : zero escapes -> {verdict}")
    return "\n".join(lines)
