"""Deterministic fault injection and guarded execution.

After the compiled-plan work (``repro.exec``) and the artifact cache
(``repro.pipeline.cache``), an SpMV answer can reach the caller through
three fast paths — a lazily cached in-memory plan, a persisted plan
artifact, and a sharded thread-pool dispatch — each of which could, in
principle, corrupt or lose results silently.  This package makes those
failure modes *injectable* and *survivable*:

* :mod:`repro.resilience.faults` — a seeded
  :class:`FaultInjector` that flips bits in SPASM streams, value
  arrays, plan arrays and packed memory images, corrupts artifact-cache
  entries on disk, and kills/stalls shard workers deterministically;
* :mod:`repro.resilience.guard` — :class:`ExecutionGuard`, a wrapper
  around plan execution that pins the stream digest, validates plan
  checksums before dispatch, cross-checks sampled rows against the
  naive oracle, retries with rebuild, and falls back to the naive
  engine, logging every incident as a :class:`ResilienceEvent`;
* :mod:`repro.resilience.campaign` — a campaign runner that injects N
  seeded faults across every surface and reports
  detection/containment/escape counts (an escape fails the run),
  exposed as ``python -m repro faults``;
* :mod:`repro.resilience.chaos` — the chaos-under-load variant: the
  same fault surfaces fired at a live :class:`~repro.serve.SpmvServer`
  under seeded mixed-tenant load, every response audited bitwise
  (``python -m repro chaos``).

See ``docs/RESILIENCE.md`` for the fault taxonomy and guard semantics.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultRecord,
    InjectedFault,
    InjectedWorkerFault,
    clone_spasm,
)
from repro.resilience.guard import (
    ExecutionGuard,
    GuardConfig,
    IntegrityError,
    ResilienceEvent,
    ResilienceLog,
    RowOracle,
    guarded_spmv,
)
from repro.resilience.campaign import (
    CAMPAIGN_PRESETS,
    measure_overhead,
    render_report,
    run_campaign,
    write_report,
)
from repro.resilience.chaos import (
    CHAOS_GUARD,
    CHAOS_PRESETS,
    render_chaos_report,
    run_chaos_campaign,
)

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "InjectedFault",
    "InjectedWorkerFault",
    "clone_spasm",
    "ExecutionGuard",
    "GuardConfig",
    "IntegrityError",
    "ResilienceEvent",
    "ResilienceLog",
    "RowOracle",
    "guarded_spmv",
    "CAMPAIGN_PRESETS",
    "CHAOS_GUARD",
    "CHAOS_PRESETS",
    "measure_overhead",
    "render_chaos_report",
    "render_report",
    "run_campaign",
    "run_chaos_campaign",
    "write_report",
]
