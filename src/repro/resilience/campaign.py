"""Seeded fault-injection campaigns over every fast-path surface.

A campaign builds one pristine workload, then runs N independent
trials.  Each trial clones the pristine artifacts, injects exactly one
seeded fault through :class:`~repro.resilience.faults.FaultInjector`,
executes through :class:`~repro.resilience.guard.ExecutionGuard` (or
the static verifier, for packed memory images) and classifies the
outcome:

``detected``
    The fault was refused loudly — the guard raised
    :class:`~repro.resilience.guard.IntegrityError` (corrupt pinned
    stream: no engine could answer truthfully).
``contained``
    A correct answer was still delivered: the output is bitwise equal
    to the pristine plan-engine or naive-engine result (rebuild,
    retry, quarantine-and-rebuild, fallback — or the fault was
    benign).
``escaped``
    A wrong answer was delivered silently.  **Any escape fails the
    campaign** — ``python -m repro faults`` exits nonzero and CI goes
    red.

The whole campaign is reproducible from ``seed`` alone: the injector,
the input vector and the guard row samplers all derive from it, and
trials run in a fixed order.

The report also measures guard overhead on the clean path — mean call
time of :meth:`ExecutionGuard.spmv` vs the bare
:meth:`~repro.exec.plan.ExecutionPlan.spmv` at the requested workload
scale — against the ≤ 5 % budget.
"""

from __future__ import annotations

import json
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.resilience.faults import FaultInjector, FaultRecord, clone_spasm
from repro.resilience.guard import (
    ExecutionGuard,
    GuardConfig,
    IntegrityError,
)

#: Guard knobs used under fire: every interval tightened to 1 so each
#: injected fault is confronted on the very next call.
CAMPAIGN_GUARD = GuardConfig(
    validate_plan=True,
    revalidate_interval=1,
    check_interval=1,
    check_rows=4,
    max_attempts=2,
)

#: Overhead budget from the acceptance criteria (percent).
OVERHEAD_BUDGET_PCT = 5.0

#: Campaign presets.  ``smoke`` keeps CI fast; ``full`` is the ≥ 200
#: injection campaign with overhead measured at the BENCH_exec.json
#: workload scale.
CAMPAIGN_PRESETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "workload": "tmt_sym",
        "scale": 1.0,
        "overhead_scale": 1.0,
        "jobs": 2,
        "overhead_calls": 20,
        "trials": {
            "stream": 10, "value": 10, "plan": 12,
            "cache": 10, "worker": 8, "image": 6,
        },
    },
    "full": {
        "workload": "tmt_sym",
        "scale": 1.0,
        "overhead_scale": 25.0,
        "jobs": 2,
        "overhead_calls": 40,
        "trials": {
            "stream": 40, "value": 40, "plan": 50,
            "cache": 40, "worker": 30, "image": 20,
        },
    },
}


def _compile(workload: str, scale: float):
    from repro.core import SpasmCompiler
    from repro.synth import load_workload

    coo = load_workload(workload, scale=scale)
    return SpasmCompiler().compile(coo)


class _Trial:
    """Outcome of one injection."""

    def __init__(self, surface: str, record: Optional[FaultRecord],
                 outcome: str, detail: str = "", flagged: bool = False):
        self.surface = surface
        self.record = record
        self.outcome = outcome  # detected | contained | escaped
        self.detail = detail
        self.flagged = flagged  # guard/cache logged at least one event

    def to_dict(self) -> Dict[str, Any]:
        return {
            "surface": self.surface,
            "outcome": self.outcome,
            "flagged": self.flagged,
            "detail": self.detail,
            "fault": self.record.to_dict() if self.record else None,
        }


class _Campaign:
    def __init__(self, preset: Dict[str, Any], seed: int,
                 progress: Optional[Callable[[str], None]] = None):
        self.preset = preset
        self.seed = int(seed)
        self.injector = FaultInjector(seed)
        self.progress = progress or (lambda line: None)
        self.jobs = int(preset.get("jobs", 1))
        self.trials: List[_Trial] = []

        program = _compile(preset["workload"], preset["scale"])
        self.pristine = program.spasm
        self.hw_config = program.hw_config
        rng = np.random.default_rng(self.seed)
        self.x = rng.random(self.pristine.shape[1])
        self.ref_plan = self.pristine.plan().spmv(self.x, jobs=self.jobs)
        self.ref_naive = self.pristine.spmv_naive(self.x)
        self._guard_seq = 0

    # -- helpers -------------------------------------------------------

    def _guard(self, spasm: Any, cache: Any = None) -> ExecutionGuard:
        self._guard_seq += 1
        return ExecutionGuard(
            spasm, config=CAMPAIGN_GUARD, cache=cache,
            seed=self.seed + self._guard_seq,
        )

    def _correct(self, out: np.ndarray) -> bool:
        return bool(
            np.array_equal(out, self.ref_plan)
            or np.array_equal(out, self.ref_naive)
        )

    def _classify(self, surface: str, record: Optional[FaultRecord],
                  run: Callable[[], np.ndarray],
                  flagged: Callable[[], bool]) -> _Trial:
        try:
            out = run()
        except IntegrityError as exc:
            return _Trial(surface, record, "detected",
                          detail=str(exc), flagged=True)
        if self._correct(out):
            return _Trial(surface, record, "contained",
                          flagged=flagged())
        return _Trial(surface, record, "escaped",
                      detail="output diverges from pristine engines",
                      flagged=flagged())

    # -- per-surface trials --------------------------------------------

    def trial_stream(self) -> _Trial:
        mutant = clone_spasm(self.pristine)
        guard = self._guard(mutant)
        record = self.injector.flip_stream_word(mutant)
        return self._classify(
            "stream", record,
            lambda: guard.spmv(self.x, jobs=self.jobs),
            lambda: len(guard.log) > 0,
        )

    def trial_value(self) -> _Trial:
        mutant = clone_spasm(self.pristine)
        guard = self._guard(mutant)
        record = self.injector.flip_value(mutant)
        return self._classify(
            "value", record,
            lambda: guard.spmv(self.x, jobs=self.jobs),
            lambda: len(guard.log) > 0,
        )

    def trial_plan(self) -> _Trial:
        mutant = clone_spasm(self.pristine)
        guard = self._guard(mutant)
        plan = mutant.plan()  # compiled and cached pre-injection
        record = self.injector.flip_plan_array(plan)
        return self._classify(
            "plan", record,
            lambda: guard.spmv(self.x, jobs=self.jobs),
            lambda: len(guard.log) > 0,
        )

    def trial_cache(self, cache_dir: str) -> _Trial:
        from repro.pipeline.cache import ArtifactCache

        incidents: List[str] = []
        cache = ArtifactCache(
            cache_dir,
            on_event=lambda kind, details: incidents.append(kind),
        )
        seeded = clone_spasm(self.pristine)
        seeded.plan(cache=cache)  # persist a plan artifact
        record = self.injector.corrupt_cache_entry(cache)
        mutant = clone_spasm(self.pristine)
        guard = self._guard(mutant, cache=cache)
        return self._classify(
            "cache", record,
            lambda: guard.spmv(self.x, jobs=self.jobs),
            lambda: bool(incidents) or len(guard.log) > 0,
        )

    def trial_worker(self) -> _Trial:
        import repro.exec.plan as plan_mod

        mutant = clone_spasm(self.pristine)
        guard = self._guard(mutant)
        plan = mutant.plan()
        saved = plan_mod.MIN_SHARD_SLOTS
        plan_mod.MIN_SHARD_SLOTS = 1024  # force real sharding
        try:
            shards = len(plan.shard_bounds(self.jobs))
            mode = ("kill", "kill", "delay")[
                int(self.injector.rng.integers(0, 3))
            ]
            nth = int(self.injector.rng.integers(0, shards))
            with self.injector.worker_fault(
                mode=mode, nth=nth
            ) as record:
                return self._classify(
                    "worker", record,
                    lambda: guard.spmv(self.x, jobs=self.jobs),
                    lambda: len(guard.log) > 0,
                )
        finally:
            plan_mod.MIN_SHARD_SLOTS = saved

    def trial_image(self) -> _Trial:
        from repro.hw.memory_image import pack_images
        from repro.verify import verify_memory_image

        image = pack_images(self.pristine, self.hw_config)
        mutated, record = self.injector.flip_image_bit(image)
        report = verify_memory_image(mutated, spasm=self.pristine)
        if not report.ok:
            return _Trial("image", record, "detected",
                          detail=report.render(), flagged=True)
        # The roundtrip rule just proved every PE stream unpacks to
        # the exact encoded values, so the flip is numerically benign
        # (e.g. a -0.0 sign bit or inter-stream padding).
        return _Trial("image", record, "contained",
                      detail="verifier clean: flip is benign")

    # -- driver --------------------------------------------------------

    def run(self) -> List[_Trial]:
        plan_order = [
            ("stream", self.trial_stream),
            ("value", self.trial_value),
            ("plan", self.trial_plan),
            ("worker", self.trial_worker),
            ("image", self.trial_image),
        ]
        counts = dict(self.preset["trials"])
        for surface, fn in plan_order:
            for _ in range(int(counts.get(surface, 0))):
                self.trials.append(fn())
            if counts.get(surface):
                self.progress(
                    f"{surface}: {counts[surface]} injections done"
                )
        n_cache = int(counts.get("cache", 0))
        for _ in range(n_cache):
            with tempfile.TemporaryDirectory(
                prefix="repro-faults-"
            ) as tmp:
                self.trials.append(self.trial_cache(tmp))
        if n_cache:
            self.progress(f"cache: {n_cache} injections done")
        return self.trials


def measure_overhead(workload: str, scale: float, jobs: int,
                     calls: int, seed: int) -> Dict[str, Any]:
    """Mean clean-path call time: bare plan engine vs guarded.

    Uses the default (production) :class:`GuardConfig`, so the number
    includes the amortized sampled divergence checks.  Both engines
    warm up first (pool spin-up, oracle construction) and time the
    same number of calls on the same vector.
    """
    program = _compile(workload, scale)
    spasm = program.spasm
    rng = np.random.default_rng(seed)
    x = rng.random(spasm.shape[1])
    plan = spasm.plan()
    guard = ExecutionGuard(spasm, seed=seed)

    warmup = max(GuardConfig().check_interval + 2, 4)
    for _ in range(warmup):
        plan.spmv(x, jobs=jobs)
        guard.spmv(x, jobs=jobs)

    def clock(step: Callable[[], np.ndarray]) -> float:
        t0 = time.perf_counter()
        for _ in range(calls):
            step()
        return (time.perf_counter() - t0) / calls

    plan_s = clock(lambda: plan.spmv(x, jobs=jobs))
    guard_s = clock(lambda: guard.spmv(x, jobs=jobs))
    overhead_pct = (guard_s - plan_s) / plan_s * 100.0
    return {
        "workload": workload,
        "scale": scale,
        "nnz": int(spasm.source_nnz),
        "jobs": jobs,
        "calls": calls,
        "plan_ms": plan_s * 1e3,
        "guard_ms": guard_s * 1e3,
        "overhead_pct": overhead_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": overhead_pct <= OVERHEAD_BUDGET_PCT,
    }


def run_campaign(preset: Any = "smoke", seed: int = 0,
                 overhead: bool = True,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> Dict[str, Any]:
    """Run a fault-injection campaign and return its JSON-able report.

    Parameters
    ----------
    preset:
        A :data:`CAMPAIGN_PRESETS` key (``smoke`` or ``full``), or an
        explicit preset dict with the same schema (tests use this to
        shrink trial counts).
    seed:
        Master seed; the whole campaign is a pure function of it.
    overhead:
        Also measure clean-path guard overhead (skippable for the
        fastest CI loop).
    progress:
        Optional per-surface progress callback (one line per surface).
    """
    if isinstance(preset, dict):
        spec = preset
        preset_name = str(spec.get("name", "custom"))
    else:
        try:
            spec = CAMPAIGN_PRESETS[preset]
        except KeyError:
            raise KeyError(
                f"unknown campaign preset {preset!r}; "
                f"choose from {sorted(CAMPAIGN_PRESETS)}"
            ) from None
        preset_name = preset
    campaign = _Campaign(spec, seed, progress=progress)
    trials = campaign.run()

    surfaces: Dict[str, Dict[str, int]] = {}
    for trial in trials:
        bucket = surfaces.setdefault(
            trial.surface,
            {"injections": 0, "detected": 0, "contained": 0,
             "escaped": 0, "flagged": 0},
        )
        bucket["injections"] += 1
        bucket[trial.outcome] += 1
        bucket["flagged"] += int(trial.flagged)
    totals = {
        "injections": len(trials),
        "detected": sum(s["detected"] for s in surfaces.values()),
        "contained": sum(s["contained"] for s in surfaces.values()),
        "escaped": sum(s["escaped"] for s in surfaces.values()),
    }
    escapes = [t.to_dict() for t in trials if t.outcome == "escaped"]
    report: Dict[str, Any] = {
        "preset": preset_name,
        "seed": seed,
        "workload": {
            "name": spec["workload"],
            "scale": spec["scale"],
            "nnz": int(campaign.pristine.source_nnz),
            "shape": list(campaign.pristine.shape),
            "jobs": campaign.jobs,
        },
        "guard_config": {
            field: getattr(CAMPAIGN_GUARD, field)
            for field in (
                "validate_plan", "revalidate_interval",
                "check_interval", "check_rows", "max_attempts",
            )
        },
        "surfaces": surfaces,
        "totals": totals,
        "escapes": escapes,
        "zero_escapes": not escapes,
    }
    if overhead:
        report["overhead"] = measure_overhead(
            spec["workload"], spec["overhead_scale"], campaign.jobs,
            int(spec["overhead_calls"]), seed,
        )
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable campaign summary."""
    lines = [
        f"fault campaign: preset={report['preset']} "
        f"seed={report['seed']} "
        f"workload={report['workload']['name']} "
        f"(nnz={report['workload']['nnz']})",
    ]
    for surface in sorted(report["surfaces"]):
        s = report["surfaces"][surface]
        lines.append(
            f"  {surface:7s} injections={s['injections']:4d} "
            f"detected={s['detected']:4d} "
            f"contained={s['contained']:4d} "
            f"escaped={s['escaped']:4d}"
        )
    t = report["totals"]
    lines.append(
        f"  totals  injections={t['injections']:4d} "
        f"detected={t['detected']:4d} "
        f"contained={t['contained']:4d} escaped={t['escaped']:4d}"
    )
    if "overhead" in report:
        o = report["overhead"]
        lines.append(
            f"  overhead: plan {o['plan_ms']:.3f} ms vs guard "
            f"{o['guard_ms']:.3f} ms -> {o['overhead_pct']:+.2f}% "
            f"(budget {o['budget_pct']:.1f}%, "
            f"{'within' if o['within_budget'] else 'OVER'})"
        )
    lines.append(
        "  verdict: "
        + ("ZERO ESCAPES" if report["zero_escapes"]
           else f"{t['escaped']} ESCAPED FAULTS")
    )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Persist a campaign report as sorted, indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
