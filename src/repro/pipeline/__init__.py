"""Pass-based compilation pipeline (the Figure 6 workflow, staged).

The monolithic preprocessing flow is decomposed into explicit passes
exchanging typed artifacts, executed by a runner that records
per-stage trace events and serves repeat compilations from a
content-addressed cache:

* :mod:`repro.pipeline.artifacts` — the typed :class:`ArtifactStore`;
* :mod:`repro.pipeline.passes` — one :class:`CompilerPass` per paper
  stage (①-⑤ plus encode and the opt-in verifier);
* :mod:`repro.pipeline.runner` — the :class:`PipelineRunner`;
* :mod:`repro.pipeline.trace` — :class:`StageEvent` /
  :class:`PipelineTrace` observability records;
* :mod:`repro.pipeline.cache` — matrix digests, config fingerprints
  and the on-disk :class:`ArtifactCache`.

:class:`repro.core.framework.SpasmCompiler` is a thin facade over this
package; see ``docs/PIPELINE.md`` for the architecture.
"""

from repro.pipeline.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactError,
    ArtifactStore,
)
from repro.pipeline.cache import (
    ArtifactCache,
    CacheEntry,
    matrix_digest,
    fingerprint,
)
from repro.pipeline.passes import (
    AnalysisPass,
    AnalyzePass,
    CompilerPass,
    DecompositionPass,
    EncodePass,
    PipelineError,
    PlanPass,
    SchedulePass,
    SelectionPass,
    VerifyPass,
)
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.trace import (
    CACHE_HIT,
    CACHE_MISS,
    CACHE_OFF,
    PipelineTrace,
    StageEvent,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactError",
    "ArtifactStore",
    "ArtifactCache",
    "CacheEntry",
    "matrix_digest",
    "fingerprint",
    "AnalysisPass",
    "AnalyzePass",
    "CompilerPass",
    "DecompositionPass",
    "EncodePass",
    "PipelineError",
    "PlanPass",
    "SchedulePass",
    "SelectionPass",
    "VerifyPass",
    "PipelineRunner",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_OFF",
    "PipelineTrace",
    "StageEvent",
]
