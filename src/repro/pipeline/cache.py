"""Content-addressed caching of pipeline artifacts.

The paper's amortization argument (Table VIII) assumes preprocessing
runs once and its outputs are reused; this module makes the reuse
automatic.  Each cacheable pass derives a key from

* the **matrix digest** — SHA-256 over the COO coordinate/value payload,
* its own **config fingerprint** — the knobs that change its output
  (k, candidate set, strategy, tile sweep, hardware list, perf model),
* the **parent key** — the previous pass's cache key, so invalidation
  chains: changing ``k`` re-keys analysis and thereby every downstream
  stage.

Entries are single ``.npz`` files named ``<stage>-<key>.npz`` inside the
cache directory, written atomically (temp file + rename).  Every entry
carries a SHA-256 checksum of its array payload; a corrupted, truncated
or checksum-mismatching entry is treated as a miss, **moved into
``<cache>/quarantine/``** so it can never be consulted again, and
recomputed — the cache can never poison a compile, and one bad file can
never poison subsequent runs.  See ``docs/RESILIENCE.md``.

Long-lived processes (the serving layer) additionally need the cache
to stay *bounded*: ``max_bytes`` arms LRU eviction (recency tracked
through file mtimes, bumped on every hit) and ``quarantine_keep``
caps how many corpses the quarantine directory retains — without
either, a busy server eventually turns the cache directory into a
disk-fill outage.  Eviction is safe under concurrency: a reader that
loses the race to an evicted file simply sees a miss and recomputes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import zipfile
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.templates import Portfolio, Template
from repro.matrix.coo import COOMatrix

#: Format marker written into every cache entry; bump to invalidate
#: every existing cache on an incompatible layout change.  v2 added the
#: mandatory payload checksum (entries without one read as misses).
CACHE_MAGIC = "spasm-cache-v2"

#: Key length kept in file names (hex chars of the SHA-256).
KEY_CHARS = 40

#: Subdirectory corrupt entries are moved into (never read back).
QUARANTINE_DIR = "quarantine"


def payload_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over an entry's array payload (names, dtypes, bytes)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def matrix_digest(coo: COOMatrix) -> str:
    """Content digest of a COO matrix (shape + coordinates + values)."""
    h = hashlib.sha256()
    h.update(repr(tuple(coo.shape)).encode())
    for arr in (coo.rows, coo.cols, coo.vals):
        h.update(arr.tobytes())
    return h.hexdigest()


def fingerprint(payload: Any) -> str:
    """Digest of a JSON-serializable configuration payload."""
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def chain_key(matrix_key: str, stage: str, config_fp: str,
              parent_key: Optional[str]) -> str:
    """Cache key of a stage: matrix x config x upstream chain."""
    return fingerprint(
        {
            "magic": CACHE_MAGIC,
            "matrix": matrix_key,
            "stage": stage,
            "config": config_fp,
            "parent": parent_key or "",
        }
    )[:KEY_CHARS]


def callable_id(fn: Any) -> str:
    """Stable identity of an injected callable (e.g. a perf model)."""
    module = getattr(fn, "__module__", type(fn).__module__)
    name = getattr(fn, "__qualname__", type(fn).__qualname__)
    return f"{module}.{name}"


def hw_config_state(hw_config: Any) -> Dict[str, Any]:
    """Fingerprint payload of one hardware configuration."""
    state = {"name": getattr(hw_config, "name", str(hw_config))}
    for attr in ("num_pe_groups", "num_xvec_ch", "frequency_hz"):
        if hasattr(hw_config, attr):
            state[attr] = getattr(hw_config, attr)
    return state


def portfolio_state(portfolio: Portfolio) -> Dict[str, Any]:
    """JSON-ready payload that round-trips a portfolio."""
    return {
        "k": portfolio.k,
        "name": portfolio.name,
        "description": portfolio.description,
        "masks": [t.mask for t in portfolio.templates],
        "names": [t.name for t in portfolio.templates],
        "kinds": [t.kind for t in portfolio.templates],
    }


def portfolio_from_state(state: Dict[str, Any]) -> Portfolio:
    """Rebuild a portfolio from :func:`portfolio_state` output."""
    templates = tuple(
        Template(int(mask), str(name), str(kind))
        for mask, name, kind in zip(
            state["masks"], state["names"], state["kinds"]
        )
    )
    return Portfolio(
        templates,
        k=int(state["k"]),
        name=str(state["name"]),
        description=str(state["description"]),
    )


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One loaded cache entry: array payload + JSON metadata."""

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any]


class ArtifactCache:
    """Directory-backed content-addressed artifact cache.

    ``on_event`` is an optional callback ``(kind, details)`` invoked on
    cache incidents (``"quarantine"`` and ``"evict"``); the resilience
    layer uses it to log
    :class:`~repro.resilience.guard.ResilienceEvent` records without
    this module depending on it.

    ``max_bytes`` caps the total size of live entries: every
    :meth:`store` prunes least-recently-used entries (mtime order;
    :meth:`load` hits bump recency) until the cache fits, never
    touching the entry just written.  ``None`` keeps the historical
    unbounded behavior.  ``quarantine_keep`` bounds the quarantine
    directory to the N most recent corpses (reason sidecars travel
    with their entries); quarantined files exist for post-mortems,
    not as an unbounded append-only log.
    """

    def __init__(self, cache_dir: Any,
                 on_event: Optional[
                     Callable[[str, Dict[str, Any]], None]
                 ] = None,
                 max_bytes: Optional[int] = None,
                 quarantine_keep: int = 128):
        self.cache_dir = os.fspath(cache_dir)
        self.on_event = on_event
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.quarantine_keep = int(quarantine_keep)
        os.makedirs(self.cache_dir, exist_ok=True)

    def path(self, stage: str, key: str) -> str:
        """Entry file path of a (stage, key) pair."""
        return os.path.join(self.cache_dir, f"{stage}-{key}.npz")

    @property
    def quarantine_dir(self) -> str:
        """Directory corrupt entries are moved into."""
        return os.path.join(self.cache_dir, QUARANTINE_DIR)

    def load(self, stage: str, key: str) -> Optional[CacheEntry]:
        """The cached entry, or ``None`` on miss *or* corruption.

        A structurally broken or checksum-mismatching file is moved to
        :attr:`quarantine_dir` before reporting the miss, so a bad
        entry is consulted exactly once and never poisons later runs.
        """
        path = self.path(stage, key)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["__meta__"]))
                if meta.get("magic") != CACHE_MAGIC:
                    # Older/foreign layout: a plain miss (store() will
                    # overwrite it with a current-format entry).
                    return None
                arrays = {
                    name: data[name].copy()
                    for name in data.files
                    if name != "__meta__"
                }
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            # Corrupted or unreadable entry: contain it, recompute,
            # then let the store() write a good one.
            self.quarantine(stage, key,
                            reason=f"{type(exc).__name__}: {exc}")
            return None
        recorded = meta.get("checksum")
        if recorded != payload_checksum(arrays):
            self.quarantine(stage, key, reason="checksum mismatch")
            return None
        try:
            # Bump recency so LRU eviction keeps hot entries (a file
            # evicted or quarantined concurrently is simply left be).
            os.utime(path)
        except OSError:
            pass
        return CacheEntry(arrays=arrays, meta=meta)

    def quarantine(self, stage: str, key: str,
                   reason: str = "") -> Optional[str]:
        """Move an entry into ``quarantine/``; its quarantined path.

        Best-effort and race-safe: a concurrently rewritten or already
        removed entry is left alone (``None`` is returned).  A sidecar
        ``.reason`` file records why the entry was pulled.
        """
        path = self.path(stage, key)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        dest = os.path.join(self.quarantine_dir, base)
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(self.quarantine_dir, f"{base}.{n}")
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        try:
            with open(dest + ".reason", "w", encoding="utf-8") as fh:
                fh.write(reason + "\n")
        except OSError:
            pass
        self._prune_quarantine()
        if self.on_event is not None:
            self.on_event(
                "quarantine",
                {"stage": stage, "key": key, "path": dest,
                 "reason": reason},
            )
        return dest

    def _prune_quarantine(self) -> None:
        """Drop the oldest quarantined corpses beyond the retention cap.

        Best-effort under concurrency: files that vanish mid-walk are
        simply skipped.  The ``.reason`` sidecar travels with its
        entry.
        """
        if self.quarantine_keep <= 0:
            return
        try:
            names = [
                name for name in os.listdir(self.quarantine_dir)
                if not name.endswith(".reason")
            ]
        except FileNotFoundError:
            return
        if len(names) <= self.quarantine_keep:
            return
        aged = []
        for name in names:
            path = os.path.join(self.quarantine_dir, name)
            try:
                aged.append((os.path.getmtime(path), name))
            except OSError:
                continue
        aged.sort()
        for _, name in aged[:max(0, len(aged) - self.quarantine_keep)]:
            for victim in (name, name + ".reason"):
                try:
                    os.unlink(os.path.join(self.quarantine_dir,
                                           victim))
                except OSError:
                    pass

    def quarantined(self) -> Tuple[str, ...]:
        """File names currently sitting in quarantine."""
        try:
            names = os.listdir(self.quarantine_dir)
        except FileNotFoundError:
            return ()
        return tuple(sorted(
            name for name in names if ".npz" in name
            and not name.endswith(".reason")
        ))

    def store(self, stage: str, key: str,
              arrays: Dict[str, np.ndarray],
              meta: Dict[str, Any]) -> None:
        """Persist an entry atomically (temp file + rename)."""
        payload = dict(meta)
        payload["magic"] = CACHE_MAGIC
        payload["checksum"] = payload_checksum(arrays)
        path = self.path(stage, key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    __meta__=np.array(json.dumps(payload)),
                    **arrays,
                )
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._enforce_budget(keep=os.path.basename(path))

    def total_bytes(self) -> int:
        """Total size of the live entries (quarantine excluded)."""
        total = 0
        for name in self.entries():
            try:
                total += os.path.getsize(
                    os.path.join(self.cache_dir, name)
                )
            except OSError:
                continue
        return total

    def _enforce_budget(self, keep: str = "") -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        ``keep`` names one entry exempt from eviction (the one just
        written — a single oversized artifact must not evict itself
        into a store/recompute loop).  Removal is plain ``unlink``:
        a concurrent reader that loses the race sees a miss and
        recomputes, which is the cache contract everywhere else.
        """
        if self.max_bytes is None:
            return
        aged = []
        total = 0
        for name in self.entries():
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            total += stat.st_size
            if name != keep:
                aged.append((stat.st_mtime, name, stat.st_size))
        aged.sort()
        for _, name, size in aged:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(os.path.join(self.cache_dir, name))
            except OSError:
                continue
            total -= size
            if self.on_event is not None:
                self.on_event(
                    "evict",
                    {"entry": name, "bytes": size,
                     "max_bytes": self.max_bytes},
                )

    def entries(self) -> Tuple[str, ...]:
        """File names of every entry currently in the cache."""
        return tuple(
            sorted(
                name
                for name in os.listdir(self.cache_dir)
                if name.endswith(".npz")
            )
        )
