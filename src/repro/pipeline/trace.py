"""Structured per-stage trace records for the compilation pipeline.

Every pass execution produces one :class:`StageEvent` — wall time, the
sizes of the artifacts it consumed and produced, whether the
content-addressed cache served it, and a free-form bottleneck note.
The ordered collection is a :class:`PipelineTrace`, the machine-readable
replacement for the hand-rolled Table VIII stopwatch bookkeeping (the
legacy :class:`~repro.core.framework.PreprocessReport` is now a view
over it).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterator, Tuple

#: Cache interaction outcomes a stage can report.
CACHE_HIT = "hit"          #: artifacts restored from the cache
CACHE_MISS = "miss"        #: computed, then persisted to the cache
CACHE_OFF = "off"          #: no cache configured or stage not cacheable
CACHE_STATES = (CACHE_HIT, CACHE_MISS, CACHE_OFF)


@dataclasses.dataclass(frozen=True)
class StageEvent:
    """One executed pipeline stage.

    Attributes
    ----------
    name:
        Pass name (``"analysis"``, ``"selection"``, ...).
    wall_ms:
        Wall-clock time of the stage, cache lookup included.
    cache:
        One of :data:`CACHE_STATES`.
    inputs:
        Size summary of the consumed artifacts (scalars only).
    outputs:
        Size summary of the produced artifacts (scalars only).
    note:
        Free-form bottleneck / provenance note.
    """

    name: str
    wall_ms: float
    cache: str = CACHE_OFF
    inputs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    outputs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the event."""
        return {
            "name": self.name,
            "wall_ms": self.wall_ms,
            "cache": self.cache,
            "inputs": dict(self.inputs),
            "outputs": dict(self.outputs),
            "note": self.note,
        }


@dataclasses.dataclass(frozen=True)
class PipelineTrace:
    """Ordered trace of one pipeline run."""

    events: Tuple[StageEvent, ...]

    def __iter__(self) -> Iterator[StageEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def event(self, name: str) -> StageEvent:
        """The event of the named stage (:class:`KeyError` if absent)."""
        for event in self.events:
            if event.name == name:
                return event
        raise KeyError(f"no stage {name!r} in this trace")

    def has_stage(self, name: str) -> bool:
        """Whether the named stage ran in this trace."""
        return any(event.name == name for event in self.events)

    def stage_ms(self, name: str) -> float:
        """Wall time of the named stage (0.0 when it did not run)."""
        for event in self.events:
            if event.name == name:
                return event.wall_ms
        return 0.0

    def cache_status(self, name: str) -> str:
        """Cache outcome of the named stage (``"off"`` when absent)."""
        for event in self.events:
            if event.name == name:
                return event.cache
        return CACHE_OFF

    @property
    def total_ms(self) -> float:
        """Total wall time across all stages."""
        return sum(event.wall_ms for event in self.events)

    @property
    def cache_hits(self) -> int:
        """Number of stages served from the cache."""
        return sum(1 for e in self.events if e.cache == CACHE_HIT)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the whole trace."""
        return {
            "total_ms": self.total_ms,
            "cache_hits": self.cache_hits,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        """The trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"{'stage':<14s} {'ms':>9s} {'cache':<5s} note"]
        for event in self.events:
            lines.append(
                f"{event.name:<14s} {event.wall_ms:9.2f} "
                f"{event.cache:<5s} {event.note}".rstrip()
            )
        lines.append(f"{'total':<14s} {self.total_ms:9.2f}")
        return "\n".join(lines)
