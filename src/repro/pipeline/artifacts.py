"""Typed artifact store threaded through the compilation passes.

Each pass declares the artifact names it ``requires`` and ``provides``;
the :class:`ArtifactStore` is the single place they are exchanged.  The
store is *typed*: every known artifact name carries an expected Python
type (see :data:`ARTIFACT_SCHEMA`) and a short description, and a
``put`` with a mismatched payload fails immediately instead of
surfacing as a confusing downstream error.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.core.decompose import DecompositionTable
from repro.core.patterns import PatternHistogram
from repro.core.schedule import ScheduleResult
from repro.core.selection import SelectionResult
from repro.core.templates import Portfolio
from repro.exec.plan import ExecutionPlan
from repro.matrix.coo import COOMatrix


class ArtifactError(KeyError):
    """Raised on unknown artifact names, type mismatches, or a pass
    reading an artifact no upstream pass produced."""


#: name -> (expected type(s), description).  The pipeline's data model:
#: the Figure 6 stage outputs, made first-class.
ARTIFACT_SCHEMA: Dict[str, Tuple[Any, str]] = {
    "coo": (COOMatrix, "source matrix (deduplicated COO)"),
    "masks": (np.ndarray, "occupancy bitmask per non-empty submatrix"),
    "sub_keys": (np.ndarray, "row-major key per non-empty submatrix"),
    "histogram": (PatternHistogram, "step ① local pattern histogram"),
    "portfolio": (Portfolio, "selected template portfolio"),
    "table": (DecompositionTable, "decomposition table of the portfolio"),
    "selection": (SelectionResult, "step ② scoring detail (optional)"),
    "group_counts": (
        np.ndarray, "step ③ template-group count per submatrix"
    ),
    "schedule": (ScheduleResult, "step ⑤ sweep outcome (optional)"),
    "tile_size": (int, "selected tile edge length"),
    "hw_config": (object, "selected hardware configuration"),
    "spasm": (object, "the encoded SpasmMatrix"),
    "verify_report": (object, "static verifier report (opt-in pass)"),
    "plan": (
        ExecutionPlan, "compiled SpMV execution plan (opt-in pass)"
    ),
    "analyze_report": (
        object, "symbolic proof obligations report (opt-in pass)"
    ),
}


class ArtifactStore:
    """Mutable, schema-checked mapping of pipeline artifacts."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def put(self, name: str, value: Any) -> None:
        """Store an artifact, validating its name and type."""
        try:
            expected, __ = ARTIFACT_SCHEMA[name]
        except KeyError:
            raise ArtifactError(
                f"unknown artifact {name!r}; declare it in "
                "ARTIFACT_SCHEMA"
            ) from None
        if expected is not object and not isinstance(value, expected):
            raise ArtifactError(
                f"artifact {name!r} expects "
                f"{getattr(expected, '__name__', expected)}, got "
                f"{type(value).__name__}"
            )
        self._data[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        """The artifact, or ``default`` when absent."""
        return self._data.get(name, default)

    def require(self, name: str) -> Any:
        """The artifact; :class:`ArtifactError` when absent."""
        if name not in self._data:
            __, description = ARTIFACT_SCHEMA.get(name, (None, "?"))
            raise ArtifactError(
                f"artifact {name!r} ({description}) has not been "
                "produced by any upstream pass"
            )
        return self._data[name]

    def has(self, name: str) -> bool:
        """Whether the artifact is present."""
        return name in self._data

    def names(self) -> Tuple[str, ...]:
        """Names of the artifacts currently held, insertion-ordered."""
        return tuple(self._data)

    def summarize(self, names: Tuple[str, ...]) -> Dict[str, Any]:
        """Small scalar size summary of the named artifacts.

        Used by the runner to fill :class:`StageEvent` input/output
        records without copying payloads into the trace.
        """
        summary: Dict[str, Any] = {}
        for name in names:
            if name not in self._data:
                continue
            value = self._data[name]
            if isinstance(value, COOMatrix):
                summary[name] = {
                    "shape": list(value.shape), "nnz": int(value.nnz)
                }
            elif isinstance(value, np.ndarray):
                summary[name] = int(value.size)
            elif isinstance(value, PatternHistogram):
                summary[name] = {
                    "distinct": value.n_distinct, "total": value.total
                }
            elif isinstance(value, Portfolio):
                summary[name] = value.name
            elif isinstance(value, ScheduleResult):
                summary[name] = {
                    "points": len(value.points),
                    "best_tile": value.best_tile_size,
                    "best_hw": getattr(
                        value.best_hw_config, "name",
                        str(value.best_hw_config),
                    ),
                }
            elif isinstance(value, (int, float, str)):
                summary[name] = value
            else:
                name_attr = getattr(value, "name", None)
                n_groups = getattr(value, "n_groups", None)
                if n_groups is not None:  # SpasmMatrix-like
                    summary[name] = {"groups": int(n_groups)}
                elif isinstance(name_attr, str):
                    summary[name] = name_attr
                else:
                    summary[name] = type(value).__name__
        return summary
