"""Pass executor: ordering checks, caching, and trace recording.

The :class:`PipelineRunner` walks an ordered list of
:class:`~repro.pipeline.passes.CompilerPass` instances, validating that
every declared input artifact exists before a pass runs, consulting the
content-addressed cache for cacheable passes, and recording one
:class:`~repro.pipeline.trace.StageEvent` per pass (wall time, artifact
sizes, cache outcome, bottleneck note).

Cache keys chain: every pass — cacheable or not — folds its config
fingerprint into the running key, so a change anywhere upstream (a
different ``k``, portfolio strategy, or a fixed ablation knob)
invalidates everything downstream while leaving unrelated entries
untouched.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.matrix.coo import COOMatrix
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.cache import ArtifactCache, chain_key, matrix_digest
from repro.pipeline.passes import CompilerPass, PipelineError
from repro.pipeline.trace import (
    CACHE_HIT,
    CACHE_MISS,
    CACHE_OFF,
    PipelineTrace,
    StageEvent,
)


class PipelineRunner:
    """Executes compiler passes over an artifact store.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.pipeline.cache.ArtifactCache`; when
        absent every stage reports cache ``"off"``.
    matrix_key:
        Content digest of the matrix being compiled (see
        :func:`~repro.pipeline.cache.matrix_digest`); derived from the
        store's ``coo`` artifact when omitted.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 matrix_key: Optional[str] = None):
        self.cache = cache
        self.matrix_key = matrix_key

    def run(self, passes: Sequence[CompilerPass],
            store: ArtifactStore) -> PipelineTrace:
        """Run the passes in order and return the recorded trace."""
        matrix_key = self.matrix_key
        if matrix_key is None and self.cache is not None:
            coo = store.get("coo")
            if isinstance(coo, COOMatrix):
                matrix_key = matrix_digest(coo)

        events: List[StageEvent] = []
        parent_key: Optional[str] = None
        for compiler_pass in passes:
            missing = [
                name
                for name in compiler_pass.requires
                if not store.has(name)
            ]
            if missing:
                raise PipelineError(
                    f"pass {compiler_pass.name!r} requires artifacts "
                    f"{missing} that no upstream pass provided; check "
                    "the pass ordering"
                )

            t0 = time.perf_counter()
            inputs = store.summarize(compiler_pass.requires)
            cache_state = CACHE_OFF
            note = ""
            key: Optional[str] = None
            if self.cache is not None and matrix_key is not None:
                key = chain_key(
                    matrix_key,
                    compiler_pass.name,
                    compiler_pass.config_fingerprint(),
                    parent_key,
                )
            if (
                key is not None
                and self.cache is not None
                and compiler_pass.cacheable
            ):
                entry = self.cache.load(compiler_pass.name, key)
                if entry is not None and compiler_pass.from_cache(
                    store, entry
                ):
                    cache_state = CACHE_HIT
                    note = str(entry.meta.get("note", ""))

            if cache_state != CACHE_HIT:
                note = compiler_pass.run(store)
                if (
                    key is not None
                    and self.cache is not None
                    and compiler_pass.cacheable
                ):
                    arrays, meta = compiler_pass.to_cache(store)
                    meta = dict(meta)
                    meta["note"] = note
                    self.cache.store(
                        compiler_pass.name, key, arrays, meta
                    )
                    cache_state = CACHE_MISS

            produced_missing = [
                name
                for name in compiler_pass.provides
                if not store.has(name)
                and name not in compiler_pass.optional_provides
            ]
            if produced_missing:
                raise PipelineError(
                    f"pass {compiler_pass.name!r} declared but did not "
                    f"produce artifacts {produced_missing}"
                )

            wall_ms = (time.perf_counter() - t0) * 1e3
            events.append(
                StageEvent(
                    name=compiler_pass.name,
                    wall_ms=wall_ms,
                    cache=cache_state,
                    inputs=inputs,
                    outputs=store.summarize(compiler_pass.provides),
                    note=note,
                )
            )
            # Chain through *every* pass so downstream keys see the full
            # upstream configuration, cacheable or not.
            parent_key = key

        return PipelineTrace(events=tuple(events))
