"""The compilation passes of the Figure 6 workflow, made first-class.

Each pass declares the artifacts it ``requires`` and ``provides`` (see
:mod:`repro.pipeline.artifacts`), runs one paper stage, and optionally
participates in content-addressed caching by implementing the
``to_cache`` / ``from_cache`` pair.  The :class:`PipelineRunner`
executes them in order, records a :class:`~repro.pipeline.trace.StageEvent`
per pass, and consults the cache.

The default pipeline mirrors the paper:

==============  ======  ==========================================
pass            stage   artifacts produced
==============  ======  ==========================================
analysis        ①       masks, sub_keys, histogram
selection       ②       portfolio, table, selection
decomposition   ③       group_counts
schedule        ④⑤      schedule, tile_size, hw_config
encode          —       spasm
verify          —       verify_report (opt-in)
plan            ⑥ prep  plan (opt-in)
analyze         —       analyze_report (opt-in)
==============  ======  ==========================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.format import encode_spasm, groups_per_submatrix
from repro.core.decompose import cached_table
from repro.core.patterns import histogram_from_masks, submatrix_masks
from repro.core.schedule import explore_schedule
from repro.core.selection import select_portfolio
from repro.core.templates import Portfolio
from repro.core.tiling import extract_global_composition
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.cache import (
    CacheEntry,
    callable_id,
    fingerprint,
    hw_config_state,
    portfolio_from_state,
    portfolio_state,
)


class PipelineError(RuntimeError):
    """Raised when a pass's declared inputs are unsatisfied."""


class CompilerPass:
    """Base class of all pipeline passes.

    Subclasses declare ``name`` / ``requires`` / ``provides`` and
    implement :meth:`run`.  Cacheable passes additionally set
    ``cacheable`` and implement the serialization pair.
    """

    name: str = ""
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()
    #: Provided artifacts that may legitimately be absent after a run
    #: (e.g. ``selection`` under a fixed portfolio).
    optional_provides: Tuple[str, ...] = ()
    cacheable: bool = False

    def config_fingerprint(self) -> str:
        """Digest of the knobs that change this pass's output."""
        return fingerprint({})

    def run(self, store: ArtifactStore) -> str:
        """Execute the pass against the store; returns a trace note."""
        raise NotImplementedError

    def to_cache(
        self, store: ArtifactStore
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Serialize the produced artifacts to (arrays, JSON meta)."""
        raise NotImplementedError

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        """Restore artifacts from a cache entry.

        Returns ``False`` when the entry cannot be applied (the runner
        then treats it as a miss and recomputes).
        """
        raise NotImplementedError


class AnalysisPass(CompilerPass):
    """Step ① — local pattern analysis (Algorithm 2).

    Produces the submatrix occupancy masks *once*; downstream passes
    (decomposition and the encoder) reuse them instead of recomputing.
    """

    name = "analysis"
    requires = ("coo",)
    provides = ("masks", "sub_keys", "histogram")
    cacheable = True

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"pattern size must be positive, got {k}")
        if k * k > 32:
            raise ValueError(
                f"pattern size {k} exceeds the 32-bit mask budget"
            )
        self.k = k

    def config_fingerprint(self) -> str:
        return fingerprint({"k": self.k})

    def run(self, store: ArtifactStore) -> str:
        coo = store.require("coo")
        masks, sub_keys = submatrix_masks(coo, self.k)
        histogram = histogram_from_masks(masks, self.k)
        store.put("masks", masks)
        store.put("sub_keys", sub_keys)
        store.put("histogram", histogram)
        return (
            f"{histogram.n_distinct} distinct patterns over "
            f"{int(masks.size)} submatrices"
        )

    def to_cache(self, store: ArtifactStore):
        return (
            {
                "masks": store.require("masks"),
                "sub_keys": store.require("sub_keys"),
            },
            {"k": self.k},
        )

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        if "masks" not in entry.arrays or "sub_keys" not in entry.arrays:
            return False
        masks = entry.arrays["masks"].astype(np.int64)
        sub_keys = entry.arrays["sub_keys"].astype(np.int64)
        store.put("masks", masks)
        store.put("sub_keys", sub_keys)
        store.put("histogram", histogram_from_masks(masks, self.k))
        return True


class SelectionPass(CompilerPass):
    """Step ② — template pattern selection (Algorithm 3).

    Covers all three portfolio strategies of the compiler plus the
    fixed-portfolio ablation path (which skips scoring entirely).
    """

    name = "selection"
    requires = ("histogram",)
    provides = ("portfolio", "table", "selection")
    optional_provides = ("selection",)

    def __init__(self, k: int, strategy: str,
                 candidates: Sequence[Portfolio],
                 coverage: float,
                 fixed_portfolio: Optional[Portfolio] = None):
        self.k = k
        self.strategy = strategy
        self.candidates = list(candidates)
        self.coverage = coverage
        self.fixed_portfolio = fixed_portfolio
        self.cacheable = fixed_portfolio is None

    def config_fingerprint(self) -> str:
        return fingerprint(
            {
                "k": self.k,
                "strategy": self.strategy,
                "coverage": self.coverage,
                "candidates": [
                    portfolio_state(c) for c in self.candidates
                ],
                "fixed": (
                    portfolio_state(self.fixed_portfolio)
                    if self.fixed_portfolio is not None
                    else None
                ),
            }
        )

    def run(self, store: ArtifactStore) -> str:
        histogram = store.require("histogram")
        if self.fixed_portfolio is not None:
            portfolio = self.fixed_portfolio
            store.put("portfolio", portfolio)
            store.put("table", cached_table(portfolio))
            return f"fixed portfolio {portfolio.name} (ablation)"
        if self.strategy == "candidates":
            selection = select_portfolio(
                histogram,
                candidates=self.candidates,
                coverage=self.coverage,
            )
            store.put("portfolio", selection.portfolio)
            store.put("table", selection.table)
            store.put("selection", selection)
            return (
                f"{selection.portfolio.name} won over "
                f"{len(self.candidates)} candidates "
                f"({selection.scored_patterns} patterns scored)"
            )
        from repro.core.dynamic import (
            GreedyPortfolioBuilder,
            select_portfolio_dynamic,
        )

        if self.strategy == "greedy":
            portfolio = GreedyPortfolioBuilder(k=self.k).build(
                histogram
            ).portfolio
        else:  # combined
            portfolio = select_portfolio_dynamic(
                histogram, candidates=self.candidates
            )
        store.put("portfolio", portfolio)
        store.put("table", cached_table(portfolio))
        return f"{portfolio.name} built via {self.strategy} strategy"

    def to_cache(self, store: ArtifactStore):
        selection = store.get("selection")
        meta: Dict[str, Any] = {
            "portfolio": portfolio_state(store.require("portfolio")),
            "selection": None,
        }
        if selection is not None:
            meta["selection"] = {
                "paddings": selection.paddings,
                "scored_patterns": selection.scored_patterns,
            }
        return {}, meta

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        state = entry.meta.get("portfolio")
        if not state:
            return False
        try:
            portfolio = portfolio_from_state(state)
        except (KeyError, ValueError, TypeError):
            return False
        table = cached_table(portfolio)
        store.put("portfolio", portfolio)
        store.put("table", table)
        sel_meta = entry.meta.get("selection")
        if sel_meta is not None:
            from repro.core.selection import SelectionResult

            store.put(
                "selection",
                SelectionResult(
                    portfolio=portfolio,
                    table=table,
                    paddings={
                        str(name): float(value)
                        for name, value in sel_meta["paddings"].items()
                    },
                    scored_patterns=int(sel_meta["scored_patterns"]),
                ),
            )
        return True


class DecompositionPass(CompilerPass):
    """Step ③ — decompose every occurring pattern.

    Tile-size independent: the resulting per-submatrix group counts are
    what Algorithm 4 re-aggregates per tile size.  Reuses the analysis
    masks — no second :func:`submatrix_masks` sweep.
    """

    name = "decomposition"
    requires = ("coo", "table", "masks", "sub_keys")
    provides = ("group_counts",)
    cacheable = True

    def __init__(self, k: int):
        self.k = k

    def config_fingerprint(self) -> str:
        return fingerprint({"k": self.k})

    def run(self, store: ArtifactStore) -> str:
        counts, __ = groups_per_submatrix(
            store.require("coo"),
            store.require("table"),
            self.k,
            masks=store.require("masks"),
            sub_keys=store.require("sub_keys"),
        )
        store.put("group_counts", counts)
        return f"{int(counts.sum())} template groups"

    def to_cache(self, store: ArtifactStore):
        return {"group_counts": store.require("group_counts")}, {}

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        if "group_counts" not in entry.arrays:
            return False
        counts = entry.arrays["group_counts"].astype(np.int64)
        if counts.shape != store.require("sub_keys").shape:
            return False
        store.put("group_counts", counts)
        return True


class SchedulePass(CompilerPass):
    """Steps ④+⑤ — global composition x schedule exploration.

    Sweeps (tile size, hardware config) with Algorithm 4, optionally on
    multiple threads (``jobs``), honoring the ``fixed_*`` ablation
    knobs.  Cache entries persist the evaluated grid (cycles per point)
    and the winning pair; on a hit the per-point
    :class:`~repro.core.tiling.GlobalComposition` objects are *not*
    re-materialized (``point.composition is None``) — the encoder never
    needs them.
    """

    name = "schedule"
    requires = ("coo", "group_counts", "sub_keys")
    provides = ("schedule", "tile_size", "hw_config")
    optional_provides = ("schedule",)

    def __init__(self, k: int, tile_sizes: Sequence[int],
                 hw_configs: Sequence[Any], perf_model: Any,
                 jobs: int = 1,
                 fixed_tile_size: Optional[int] = None,
                 fixed_hw_config: Optional[Any] = None):
        self.k = k
        self.tile_sizes = tuple(tile_sizes)
        self.hw_configs = list(hw_configs)
        self.perf_model = perf_model
        self.jobs = jobs
        self.fixed_tile_size = fixed_tile_size
        self.fixed_hw_config = fixed_hw_config
        # A fully pinned point needs no exploration and no cache.
        self.cacheable = not (
            fixed_tile_size is not None and fixed_hw_config is not None
        )

    def _sweep(self) -> Tuple[Tuple[int, ...], List[Any]]:
        """The effective (tile sizes, hardware configs) grid."""
        hw_sweep = (
            [self.fixed_hw_config]
            if self.fixed_hw_config is not None
            else self.hw_configs
        )
        tile_sweep = (
            (self.fixed_tile_size,)
            if self.fixed_tile_size is not None
            else self.tile_sizes
        )
        return tile_sweep, hw_sweep

    def config_fingerprint(self) -> str:
        tile_sweep, hw_sweep = self._sweep()
        # jobs is deliberately absent: the parallel sweep reduces
        # deterministically to the serial result.
        return fingerprint(
            {
                "k": self.k,
                "tile_sizes": list(tile_sweep),
                "hw": [hw_config_state(h) for h in hw_sweep],
                "perf_model": callable_id(self.perf_model),
            }
        )

    def run(self, store: ArtifactStore) -> str:
        if (
            self.fixed_tile_size is not None
            and self.fixed_hw_config is not None
        ):
            store.put("tile_size", int(self.fixed_tile_size))
            store.put("hw_config", self.fixed_hw_config)
            return "fixed tile size and hardware config (ablation)"

        coo = store.require("coo")
        counts = store.require("group_counts")
        sub_keys = store.require("sub_keys")

        def composition_factory(tile_size: int):
            return extract_global_composition(
                coo, counts, sub_keys, tile_size, self.k
            )

        tile_sweep, hw_sweep = self._sweep()
        schedule = explore_schedule(
            composition_factory,
            hw_sweep,
            self.perf_model,
            tile_sweep,
            jobs=self.jobs,
        )
        store.put("schedule", schedule)
        store.put("tile_size", int(schedule.best_tile_size))
        store.put("hw_config", schedule.best_hw_config)
        return (
            f"best {schedule.best.label} of {len(schedule.points)} "
            f"evaluated points (jobs={self.jobs})"
        )

    def to_cache(self, store: ArtifactStore):
        from repro.core.schedule import ScheduleResult

        schedule: ScheduleResult = store.require("schedule")
        points = schedule.points
        best_index = points.index(schedule.best)
        arrays = {
            "point_tiles": np.array(
                [p.tile_size for p in points], dtype=np.int64
            ),
            "point_cycles": np.array(
                [p.cycles for p in points], dtype=np.float64
            ),
        }
        meta = {
            "point_hw": [
                getattr(p.hw_config, "name", str(p.hw_config))
                for p in points
            ],
            "best_index": best_index,
        }
        return arrays, meta

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        from repro.core.schedule import SchedulePoint, ScheduleResult

        try:
            tiles = entry.arrays["point_tiles"]
            cycles = entry.arrays["point_cycles"]
            hw_names = entry.meta["point_hw"]
            best_index = int(entry.meta["best_index"])
        except KeyError:
            return False
        __, hw_sweep = self._sweep()
        by_name = {
            getattr(h, "name", str(h)): h for h in hw_sweep
        }
        if (
            tiles.shape != cycles.shape
            or len(hw_names) != tiles.size
            or not 0 <= best_index < tiles.size
            or any(name not in by_name for name in hw_names)
        ):
            return False
        points = tuple(
            SchedulePoint(
                tile_size=int(tiles[i]),
                hw_config=by_name[hw_names[i]],
                cycles=float(cycles[i]),
                composition=None,
            )
            for i in range(tiles.size)
        )
        schedule = ScheduleResult(best=points[best_index], points=points)
        store.put("schedule", schedule)
        store.put("tile_size", int(schedule.best_tile_size))
        store.put("hw_config", schedule.best_hw_config)
        return True


class EncodePass(CompilerPass):
    """Final encoding of the matrix at the selected configuration.

    Not cacheable: persistence of the encoded artifact is the job of
    :mod:`repro.core.serialize` (``save_spasm``/``load_spasm``), and the
    hazard-aware reorder must see the freshly encoded stream.

    With ``fuse_plan=True`` the encoder also finalizes the execution
    plan directly from its own intermediates (no second expansion of
    the stream) and attaches it to the matrix, so a following
    :class:`PlanPass` — or the first ``spasm.spmv`` — is free.  Fusion
    is skipped under the hazard-aware reorder, which rewrites the
    stream after encoding and would invalidate the attached plan.
    """

    name = "encode"
    requires = (
        "coo", "portfolio", "tile_size", "table", "masks", "sub_keys"
    )
    provides = ("spasm",)

    def __init__(self, hazard_aware: bool = False,
                 fuse_plan: bool = False,
                 plan_precision: Optional[str] = None):
        self.hazard_aware = hazard_aware
        self.fuse_plan = fuse_plan
        self.plan_precision = plan_precision

    def config_fingerprint(self) -> str:
        return fingerprint({
            "hazard_aware": self.hazard_aware,
            "fuse_plan": self.fuse_plan,
            "plan_precision": self.plan_precision,
        })

    def run(self, store: ArtifactStore) -> str:
        fused = self.fuse_plan and not self.hazard_aware
        spasm = encode_spasm(
            store.require("coo"),
            store.require("portfolio"),
            store.require("tile_size"),
            store.require("table"),
            masks=store.require("masks"),
            sub_keys=store.require("sub_keys"),
            build_plan=fused,
            plan_precision=self.plan_precision,
        )
        note = ""
        if self.hazard_aware:
            from repro.hw.hazards import hazard_aware_reorder

            spasm = hazard_aware_reorder(spasm)
            note = ", hazard-aware reorder applied"
        elif fused:
            plan = spasm.__dict__.get("_plan")
            if plan is not None:
                note = f", fused plan in {plan.build_ms:.1f} ms"
        store.put("spasm", spasm)
        return (
            f"{spasm.n_groups} groups, padding rate "
            f"{spasm.padding_rate:.2%}{note}"
        )


class PlanPass(CompilerPass):
    """Opt-in step ⑥ preparation — compile the numeric execution plan.

    Builds the encoded matrix's
    :class:`~repro.exec.plan.ExecutionPlan` (expand once, drop padding,
    sort by output row, precompute segment boundaries) so the program
    ships ready for gather + segment-reduce execution.  ``backend``
    pins the kernel engine the plan will dispatch on (``None``
    negotiates); the pass resolves it against the built plan so an
    incapable pinning fails at compile time, not first dispatch.
    Cache entries are keyed through the normal chain key — which
    includes the backend knob via :meth:`config_fingerprint` — and
    additionally carry the stream digest; a stale entry (any stored
    array changed) is rejected and recompiled.
    """

    name = "plan"
    requires = ("spasm",)
    provides = ("plan",)
    cacheable = True

    def __init__(self, backend: Optional[str] = None):
        self.backend = backend

    def config_fingerprint(self) -> str:
        return fingerprint({"backend": self.backend})

    def run(self, store: ArtifactStore) -> str:
        from repro.exec.backends import resolve_backend

        spasm = store.require("spasm")
        # Reuses the plan the fused EncodePass attached (digest-checked
        # inside SpasmMatrix.plan), compiling only when absent.
        plan = spasm.plan()
        engine = resolve_backend(self.backend, plan=plan, op="spmv")
        store.put("plan", plan)
        return f"{plan.describe()}, backend={engine.name}"

    def to_cache(self, store: ArtifactStore):
        plan = store.require("plan")
        return (
            {
                "cols": plan.cols,
                "vals": plan.vals,
                "seg_starts": plan.seg_starts,
                "seg_rows": plan.seg_rows,
            },
            {
                "digest": plan.digest,
                "nrows": plan.shape[0],
                "ncols": plan.shape[1],
                "source_nnz": plan.source_nnz,
                "plan_checksum": plan.checksum,
            },
        )

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        from repro.exec.plan import ExecutionPlan, stream_digest

        spasm = store.require("spasm")
        digest = stream_digest(spasm)
        try:
            # Adopted as stored: a compact int32/float32 plan must come
            # back copy-free in its own dtypes (validate() rejects any
            # layout the kernels cannot dispatch).
            cols = entry.arrays["cols"]
            vals = entry.arrays["vals"]
            seg_starts = entry.arrays["seg_starts"]
            seg_rows = entry.arrays["seg_rows"]
            meta_digest = str(entry.meta["digest"])
            shape = (int(entry.meta["nrows"]), int(entry.meta["ncols"]))
            source_nnz = int(entry.meta["source_nnz"])
            checksum = str(entry.meta.get("plan_checksum", ""))
        except (KeyError, TypeError, ValueError):
            return False
        if (
            meta_digest != digest
            or shape != (int(spasm.shape[0]), int(spasm.shape[1]))
        ):
            return False
        plan = ExecutionPlan(
            shape=shape,
            cols=cols,
            vals=vals,
            seg_starts=seg_starts,
            seg_rows=seg_rows,
            _digest=digest,
            source_nnz=source_nnz,
            checksum=checksum,
        )
        if plan.validate():
            return False
        store.put("plan", plan)
        return True


class AnalyzePass(CompilerPass):
    """Opt-in symbolic safety proofs over the compiled plan.

    Mounts :mod:`repro.analyze` as a pipeline stage: the six proof
    obligations (index-width safety, segment coverage, shard
    race-freedom, memory-image bounds, policy consistency, backend
    capability) are proved by abstract interpretation — nothing is
    executed — and the resulting
    :class:`~repro.analyze.symbolic.AnalysisReport` is stored as the
    ``analyze_report`` artifact.  ``backend`` pins the engine the
    backend-capability obligation quantifies over (and keys the
    cache).  Any refuted obligation raises
    :class:`~repro.core.format.FormatError` with the pinpointed
    witness.  Proofs are content-addressed alongside the plan they
    certify: a cache entry carries the plan checksum and is rejected
    when the plan changed (or when the cached report was not clean).
    """

    name = "analyze"
    requires = ("plan",)
    provides = ("analyze_report",)
    cacheable = True

    def __init__(self, backend: Optional[str] = None):
        self.backend = backend

    def config_fingerprint(self) -> str:
        return fingerprint({"backend": self.backend})

    def run(self, store: ArtifactStore) -> str:
        from repro.analyze.symbolic import analyze_plan
        from repro.core.format import FormatError

        report = analyze_plan(
            store.require("plan"), spasm=store.get("spasm"),
            backend=self.backend,
        )
        if report.refuted:
            raise FormatError(
                "static analysis refuted "
                f"{len(report.refuted)} proof obligation(s):\n"
                + "\n".join(o.render() for o in report.refuted)
            )
        store.put("analyze_report", report)
        return report.summary()

    def to_cache(self, store: ArtifactStore):
        report = store.require("analyze_report")
        plan = store.require("plan")
        return (
            {},
            {
                "report": report.as_dict(),
                "plan_checksum": plan.checksum,
            },
        )

    def from_cache(self, store: ArtifactStore,
                   entry: CacheEntry) -> bool:
        from repro.analyze.symbolic import AnalysisReport

        plan = store.require("plan")
        try:
            checksum = str(entry.meta["plan_checksum"])
            report = AnalysisReport.from_dict(entry.meta["report"])
        except (KeyError, TypeError, ValueError):
            return False
        # A proof certifies exactly one plan; anything else recomputes
        # (including a cached refutation, which must raise, not load).
        if checksum != plan.checksum or not report.ok:
            return False
        store.put("analyze_report", report)
        return True


class VerifyPass(CompilerPass):
    """Opt-in static verification of the encoded stream.

    Mounts :mod:`repro.verify` as a pipeline stage: every error-severity
    invariant violation raises
    :class:`~repro.core.format.FormatError`; the full diagnostic report
    is stored as the ``verify_report`` artifact.
    """

    name = "verify"
    requires = ("spasm", "coo")
    provides = ("verify_report",)

    def __init__(self, with_source: bool = True):
        self.with_source = with_source

    def config_fingerprint(self) -> str:
        return fingerprint({"with_source": self.with_source})

    def run(self, store: ArtifactStore) -> str:
        from repro.core.format import FormatError
        from repro.verify.runner import verify_spasm

        report = verify_spasm(
            store.require("spasm"),
            source=store.require("coo") if self.with_source else None,
        )
        report.raise_if_errors(FormatError)
        store.put("verify_report", report)
        return (
            f"{len(report.diagnostics)} diagnostics, "
            f"{len(report.warnings)} warnings, 0 errors"
        )
