"""Shared interface and matrix statistics for the baseline models."""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.matrix.coo import COOMatrix


@dataclasses.dataclass(frozen=True)
class MatrixStats:
    """Structure statistics that drive the baseline efficiency models.

    Attributes
    ----------
    nnz, nrows, ncols:
        Basic dimensions.
    density:
        ``nnz / (nrows * ncols)``.
    row_cv:
        Coefficient of variation of the row lengths — the load-imbalance
        driver (dense-row matrices like mip1 score high).
    avg_row_len:
        Mean non-zeros per non-empty row; short rows bubble streaming
        pipelines.
    col_span:
        Mean per-row column spread relative to ``ncols`` — a proxy for
        x-vector access locality (banded matrices score near 0, scattered
        ones near 1).
    """

    nnz: int
    nrows: int
    ncols: int
    density: float
    row_cv: float
    avg_row_len: float
    col_span: float


def matrix_stats(coo: COOMatrix) -> MatrixStats:
    """Compute the :class:`MatrixStats` of a matrix."""
    nnz = coo.nnz
    if nnz == 0:
        return MatrixStats(0, coo.shape[0], coo.shape[1], 0.0, 0.0, 0.0, 0.0)
    lengths = np.bincount(coo.rows, minlength=coo.shape[0])
    nonempty = lengths[lengths > 0]
    mean = nonempty.mean()
    cv = float(nonempty.std() / mean) if mean else 0.0

    # Per-row column span via segment min/max on row-major sorted COO.
    starts = np.concatenate(([0], np.cumsum(nonempty)))[:-1]
    col_min = np.minimum.reduceat(coo.cols, starts)
    col_max = np.maximum.reduceat(coo.cols, starts)
    span = float((col_max - col_min).mean() / max(coo.shape[1], 1))

    return MatrixStats(
        nnz=nnz,
        nrows=coo.shape[0],
        ncols=coo.shape[1],
        density=coo.density,
        row_cv=cv,
        avg_row_len=float(mean),
        col_span=span,
    )


class AcceleratorModel(abc.ABC):
    """Common interface of every modeled SpMV platform.

    Concrete models implement :meth:`time_s`; throughput, bandwidth
    efficiency and utilization metrics derive from it uniformly, using
    the paper's FLOP accounting ``2 * nnz + nrows``.
    """

    #: Platform label used in reports.
    name: str
    #: Core clock in Hz.
    frequency_hz: float
    #: Aggregate memory bandwidth in bytes/s.
    bandwidth: float
    #: Peak arithmetic throughput in GFLOP/s.
    peak_gflops: float

    @abc.abstractmethod
    def time_s(self, coo: COOMatrix) -> float:
        """Modeled execution time of one SpMV."""

    def flops(self, coo: COOMatrix) -> int:
        """Paper FLOP accounting for one SpMV."""
        return 2 * coo.nnz + coo.shape[0]

    def gflops(self, coo: COOMatrix) -> float:
        """Modeled throughput in GFLOP/s."""
        t = self.time_s(coo)
        return self.flops(coo) / t / 1e9 if t > 0 else 0.0

    def bandwidth_efficiency(self, coo: COOMatrix) -> float:
        """Figure 12 metric: (GFLOP/s) / (GB/s)."""
        return self.gflops(coo) / (self.bandwidth / 1e9)

    def compute_utilization(self, coo: COOMatrix) -> float:
        """Figure 13 metric: fraction of peak GFLOP/s achieved."""
        return self.gflops(coo) / self.peak_gflops

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """Bytes the platform moves for one SpMV (model-specific)."""
        raise NotImplementedError

    def bandwidth_utilization(self, coo: COOMatrix) -> float:
        """Figure 13 metric: fraction of peak bandwidth used."""
        t = self.time_s(coo)
        if t <= 0:
            return 0.0
        return self.bytes_streamed(coo) / t / self.bandwidth

    def describe(self) -> str:
        """Table III style one-liner."""
        return (
            f"{self.name}: {self.frequency_hz / 1e6:.0f} MHz, "
            f"{self.bandwidth / 1e9:.1f} GB/s, "
            f"{self.peak_gflops:.1f} GFLOP/s peak"
        )
