"""Plain CPU CSR reference executor.

Not a paper baseline — a numerically exact reference used by tests and
examples to validate every modeled platform's *functional* output, and a
convenience for measuring real wall-clock SpMV time on this machine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import AcceleratorModel
from repro.matrix.convert import coo_to_csr
from repro.matrix.coo import COOMatrix


class CPUReference(AcceleratorModel):
    """Executes SpMV on the host CPU through the CSR substrate.

    ``time_s`` measures actual wall-clock execution rather than modeling
    it, so the platform constants below describe the host only nominally.
    """

    name = "CPU (host)"
    frequency_hz = 2.0e9
    bandwidth = 50e9
    peak_gflops = 100.0

    def __init__(self, repeats: int = 3):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.repeats = repeats

    def spmv(self, coo: COOMatrix, x: np.ndarray,
             y: np.ndarray = None) -> np.ndarray:
        """Exact ``y = A @ x + y`` through CSR."""
        return coo_to_csr(coo).spmv(x, y)

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """Nominal CSR traffic (for utilization reporting only)."""
        return coo.nnz * 8 + (coo.shape[0] + 1) * 4 + coo.shape[0] * 8

    def time_s(self, coo: COOMatrix) -> float:
        csr = coo_to_csr(coo)
        x = np.ones(coo.shape[1], dtype=np.float64)
        best = float("inf")
        for __ in range(self.repeats):
            t0 = time.perf_counter()
            csr.spmv(x)
            best = min(best, time.perf_counter() - t0)
        return best
