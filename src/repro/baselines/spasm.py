"""SPASM wrapped in the common :class:`AcceleratorModel` interface.

Runs the full Figure 6 pipeline per matrix (pattern analysis, portfolio
selection, decomposition, schedule exploration) and reports the selected
configuration's perf-model estimate — exactly what the Figure 12/13
comparison plots for SPASM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import AcceleratorModel
from repro.core.framework import SpasmCompiler, SpasmProgram
from repro.matrix.coo import COOMatrix


class SpasmModel(AcceleratorModel):
    """SPASM as a comparable platform.

    Parameters
    ----------
    compiler:
        Optional pre-configured :class:`SpasmCompiler` (ablations pass
        compilers with stages disabled).
    cache_dir:
        When no ``compiler`` is given, build one with this
        content-addressed artifact cache directory (see
        :mod:`repro.pipeline.cache`); repeat compiles of an unchanged
        matrix — including across processes — are served from disk.
    jobs:
        When no ``compiler`` is given, thread count for the schedule
        sweep.
    **compile_kwargs:
        ``fixed_portfolio`` / ``fixed_tile_size`` / ``fixed_hw_config``
        forwarded to every compile call.
    """

    name = "SPASM"

    def __init__(self, compiler: SpasmCompiler = None, cache_dir=None,
                 jobs: int = 1, **compile_kwargs):
        self.compiler = compiler or SpasmCompiler(
            cache_dir=cache_dir, jobs=jobs
        )
        self.compile_kwargs = compile_kwargs
        self._cache = {}

    def compile(self, coo: COOMatrix) -> SpasmProgram:
        """Compile (memoized on matrix identity)."""
        key = id(coo)
        if key not in self._cache:
            self._cache[key] = self.compiler.compile(
                coo, **self.compile_kwargs
            )
        return self._cache[key]

    def program(self, coo: COOMatrix) -> SpasmProgram:
        """The compiled program for a matrix."""
        return self.compile(coo)

    def spmv(self, coo: COOMatrix, x: np.ndarray,
             y: Optional[np.ndarray] = None,
             jobs: int = 1) -> np.ndarray:
        """Numerically execute ``y = A @ x + y`` on this platform.

        Runs through the compiled matrix's cached
        :class:`~repro.exec.plan.ExecutionPlan` — compile and plan
        build both amortize across calls via the memoized program.
        """
        program = self.compile(coo)
        plan = (
            program.plan
            if program.plan is not None
            else program.spasm.plan()
        )
        return plan.spmv(x, y=y, jobs=jobs)

    def trace(self, coo: COOMatrix):
        """Per-stage :class:`~repro.pipeline.trace.PipelineTrace` of the
        (memoized) compile — stage timings, cache outcomes, notes."""
        return self.compile(coo).trace

    # The platform constants depend on the per-matrix selected bitstream,
    # so the AcceleratorModel attributes become per-call properties.
    def _config(self, coo: COOMatrix):
        return self.compile(coo).hw_config

    def time_s(self, coo: COOMatrix) -> float:
        program = self.compile(coo)
        cycles = program.estimate().total_cycles
        return cycles / program.hw_config.frequency_hz

    def gflops(self, coo: COOMatrix) -> float:
        t = self.time_s(coo)
        return self.flops(coo) / t / 1e9 if t > 0 else 0.0

    def bandwidth_of(self, coo: COOMatrix) -> float:
        """Bandwidth of the selected bitstream (per-matrix)."""
        return self._config(coo).bandwidth

    def peak_gflops_of(self, coo: COOMatrix) -> float:
        """Peak throughput of the selected bitstream (per-matrix)."""
        return self._config(coo).peak_gflops

    def bandwidth_efficiency(self, coo: COOMatrix) -> float:
        return self.gflops(coo) / (self.bandwidth_of(coo) / 1e9)

    def compute_utilization(self, coo: COOMatrix) -> float:
        return self.gflops(coo) / self.peak_gflops_of(coo)

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """HBM traffic of the encoded matrix (A stream + x + y)."""
        program = self.compile(coo)
        spasm = program.spasm
        gc = spasm.global_composition()
        a_bytes = spasm.n_groups * (spasm.k + 1) * 4
        x_bytes = gc.n_tiles * spasm.tile_size * 4
        y_bytes = gc.n_tile_rows * spasm.tile_size * 8
        return a_bytes + x_bytes + y_bytes

    def bandwidth_utilization(self, coo: COOMatrix) -> float:
        t = self.time_s(coo)
        if t <= 0:
            return 0.0
        return self.bytes_streamed(coo) / t / self.bandwidth_of(coo)
