"""Event-level Serpens simulator.

The analytic :class:`~repro.baselines.serpens.SerpensModel` is
calibrated to published numbers; this module complements it with a
first-principles, functionally-correct simulation of the Serpens
microarchitecture (Song et al., DAC 2022):

* the matrix is preprocessed into per-channel streams of packed
  (row, col, value) records, 8 bytes each — non-zeros are interleaved
  round-robin over ``num_channels`` HBM channels;
* each channel feeds 8 MAC lanes (matching the published peak:
  16 channels x 8 lanes x 2 FLOP x 282 MHz = 72.2 GFLOP/s);
* each lane accumulates into its output buffer through a pipelined FP
  adder; a record hitting a row its lane touched within the adder
  latency stalls (the RAW hazard Serpens's preprocessing mitigates);
* the dense x vector is on-chip (URAM), so x access never stalls.

Simplifications vs the real design (documented, deliberate): records
are lane-assigned round-robin rather than by Serpens's row-block
shuffle, and memory time is modeled as streamed-bytes / bandwidth
overlapped with compute.  The simulator exists to validate the *shape*
of the analytic model from below, not to replace it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.serpens import SerpensModel
from repro.matrix.coo import COOMatrix

#: MAC lanes per HBM channel (peak-performance match).
LANES_PER_CHANNEL = 8
#: Pipelined FP32 adder latency in cycles.
DEFAULT_ADDER_LATENCY = 8


@dataclasses.dataclass(frozen=True)
class SerpensProgram:
    """A preprocessed Serpens workload.

    Attributes
    ----------
    shape:
        Source matrix shape.
    nnz:
        Non-zero count.
    lane_rows, lane_cols, lane_vals:
        Per (channel, lane) record streams, indexed
        ``[channel][lane] -> np.ndarray``.
    """

    shape: tuple
    nnz: int
    lane_rows: list
    lane_cols: list
    lane_vals: list

    @property
    def num_channels(self) -> int:
        """Channels the program was built for."""
        return len(self.lane_rows)

    def stream_bytes(self) -> int:
        """A-stream footprint: 8 bytes per record."""
        return self.nnz * 8


@dataclasses.dataclass(frozen=True)
class SerpensRun:
    """Result of one simulated Serpens SpMV."""

    y: np.ndarray
    cycles: float
    stall_cycles: int
    time_s: float
    gflops: float


class SerpensSimulator:
    """Event-level simulator of one Serpens build.

    Parameters
    ----------
    num_channels:
        A-stream HBM channels (16 for a16, 24 for a24).
    frequency_hz, bandwidth:
        Platform clock and aggregate bandwidth (defaults: the a16
        numbers from Table III).
    adder_latency:
        FP accumulator latency driving the RAW hazard.
    """

    def __init__(self, num_channels: int = 16,
                 frequency_hz: float = 282e6,
                 bandwidth: float = 288e9,
                 adder_latency: int = DEFAULT_ADDER_LATENCY):
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if adder_latency < 0:
            raise ValueError("adder_latency must be non-negative")
        self.num_channels = num_channels
        self.frequency_hz = frequency_hz
        self.bandwidth = bandwidth
        self.adder_latency = adder_latency

    def preprocess(self, coo: COOMatrix) -> SerpensProgram:
        """Distribute the non-zeros over channels and lanes.

        Records are taken in row-major order and dealt round-robin to
        ``num_channels * 8`` lanes, which balances load to within one
        record per lane.
        """
        total_lanes = self.num_channels * LANES_PER_CHANNEL
        idx = np.arange(coo.nnz)
        lane_of = idx % total_lanes
        lane_rows, lane_cols, lane_vals = [], [], []
        for ch in range(self.num_channels):
            rows_ch, cols_ch, vals_ch = [], [], []
            for lane in range(LANES_PER_CHANNEL):
                mask = lane_of == ch * LANES_PER_CHANNEL + lane
                rows_ch.append(coo.rows[mask])
                cols_ch.append(coo.cols[mask])
                vals_ch.append(coo.vals[mask])
            lane_rows.append(rows_ch)
            lane_cols.append(cols_ch)
            lane_vals.append(vals_ch)
        return SerpensProgram(
            shape=coo.shape,
            nnz=coo.nnz,
            lane_rows=lane_rows,
            lane_cols=lane_cols,
            lane_vals=lane_vals,
        )

    def _lane_cycles(self, rows: np.ndarray) -> tuple:
        """(cycles, stalls) of one lane's in-order record stream."""
        latency = self.adder_latency
        if rows.size == 0:
            return 0, 0
        if latency == 0:
            return int(rows.size), 0
        ready = {}
        t = 0
        stalls = 0
        for row in rows:
            issue = max(t + 1, ready.get(int(row), 0))
            stalls += issue - (t + 1)
            t = issue
            ready[int(row)] = issue + latency
        return t, stalls

    def run(self, program: SerpensProgram, x: np.ndarray,
            y: np.ndarray = None) -> SerpensRun:
        """Execute one SpMV: exact y plus event-derived cycles."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (program.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {program.shape}"
            )
        if y is None:
            y_out = np.zeros(program.shape[0], dtype=np.float64)
        else:
            y_out = np.array(y, dtype=np.float64)
            if y_out.shape != (program.shape[0],):
                raise ValueError("bad y shape")

        compute_cycles = 0
        total_stalls = 0
        for ch in range(program.num_channels):
            channel_cycles = 0
            for lane in range(LANES_PER_CHANNEL):
                rows = program.lane_rows[ch][lane]
                cols = program.lane_cols[ch][lane]
                vals = program.lane_vals[ch][lane]
                np.add.at(y_out, rows, vals * x[cols])
                cycles, stalls = self._lane_cycles(rows)
                channel_cycles = max(channel_cycles, cycles)
                total_stalls += stalls
            compute_cycles = max(compute_cycles, channel_cycles)

        stream_total = (
            program.stream_bytes()
            + program.shape[1] * 4  # x broadcast into URAM
            + program.shape[0] * 8  # y read-modify-write
        )
        memory_cycles = stream_total / self.bandwidth * self.frequency_hz
        cycles = max(float(compute_cycles), memory_cycles)
        time_s = cycles / self.frequency_hz if cycles else 0.0
        flops = 2 * program.nnz + program.shape[0]
        return SerpensRun(
            y=y_out,
            cycles=cycles,
            stall_cycles=total_stalls,
            time_s=time_s,
            gflops=flops / time_s / 1e9 if time_s else 0.0,
        )

    def spmv(self, coo: COOMatrix, x: np.ndarray) -> SerpensRun:
        """Preprocess + run in one call."""
        return self.run(self.preprocess(coo), x)


def cross_check(coo: COOMatrix, analytic: SerpensModel,
                simulator: SerpensSimulator) -> dict:
    """Compare analytic vs event-level throughput on one matrix."""
    x = np.ones(coo.shape[1])
    run = simulator.spmv(coo, x)
    return {
        "analytic_gflops": analytic.gflops(coo),
        "event_gflops": run.gflops,
        "stall_cycles": run.stall_cycles,
        "ratio": run.gflops / analytic.gflops(coo),
    }
