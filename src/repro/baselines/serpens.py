"""Serpens baseline models (Song et al., DAC 2022 — paper Table III).

Serpens streams (value, packed-index) pairs — 8 bytes per non-zero —
through 16 (``Serpens_a16``) or 24 (``Serpens_a24``) HBM channels, with
the whole x vector replicated in on-chip URAM.  Its efficiency limiters
are the floating-point accumulation RAW hazard (rows shorter than the
adder pipeline leave bubbles) and load imbalance across its channel
lanes; both are milder than HiSparse's, matching its higher measured
throughput.
"""

from __future__ import annotations

from repro.baselines.base import AcceleratorModel, matrix_stats
from repro.matrix.coo import COOMatrix

#: Calibration constants (see EXPERIMENTS.md).
BASE_EFFICIENCY = 0.235
#: Efficiency decays with channel count: distributing the A stream over
#: more lanes worsens inter-lane imbalance (the paper's a24 is only
#: ~1.14x faster than a16 despite 1.4x the bandwidth).
CHANNEL_SCALING_EXP = 0.5
IMBALANCE_WEIGHT = 0.35
SHORT_ROW_WEIGHT = 4.0
SCATTER_WEIGHT = 0.25


class SerpensModel(AcceleratorModel):
    """Analytic model of a Serpens configuration.

    Parameters
    ----------
    num_a_channels:
        HBM channels streaming the sparse matrix (16 or 24 in the paper).
    frequency_hz, bandwidth, peak_gflops:
        Published platform numbers (Table III).
    """

    def __init__(self, num_a_channels: int, frequency_hz: float,
                 bandwidth: float, peak_gflops: float,
                 launch_overhead_s: float = 0.0):
        self.name = f"Serpens_a{num_a_channels}"
        self.num_a_channels = num_a_channels
        self.frequency_hz = frequency_hz
        self.bandwidth = bandwidth
        self.peak_gflops = peak_gflops
        self.launch_overhead_s = launch_overhead_s

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """A stream (8 B/nnz) + x broadcast + y write."""
        stats = matrix_stats(coo)
        return stats.nnz * 8 + stats.ncols * 4 + stats.nrows * 8

    def efficiency(self, coo: COOMatrix) -> float:
        """Fraction of peak bandwidth the matrix structure sustains."""
        stats = matrix_stats(coo)
        if stats.nnz == 0:
            return 1.0
        base = BASE_EFFICIENCY * (
            (16.0 / self.num_a_channels) ** CHANNEL_SCALING_EXP
        )
        imbalance = 1.0 + IMBALANCE_WEIGHT * stats.row_cv
        short_rows = 1.0 + SHORT_ROW_WEIGHT / max(stats.avg_row_len, 1.0)
        scatter = 1.0 + SCATTER_WEIGHT * stats.col_span
        return base / (imbalance * short_rows * scatter)

    def time_s(self, coo: COOMatrix) -> float:
        if coo.nnz == 0:
            return self.launch_overhead_s
        mem_time = self.bytes_streamed(coo) / (
            self.bandwidth * self.efficiency(coo)
        )
        compute_time = self.flops(coo) / (self.peak_gflops * 1e9)
        return max(mem_time, compute_time) + self.launch_overhead_s


def SERPENS_A16(**kwargs) -> SerpensModel:
    """The 16-A-channel Serpens build (Table III row 2)."""
    return SerpensModel(16, 282e6, 288e9, 72.2, **kwargs)


def SERPENS_A24(**kwargs) -> SerpensModel:
    """The 24-A-channel Serpens build (Table III row 3)."""
    return SerpensModel(24, 276e6, 403e9, 106.0, **kwargs)
