"""cuSPARSE-on-RTX3090 baseline model (paper Table III row 4).

cuSPARSE CSR SpMV on large matrices is memory-bandwidth-bound; the model
is a roofline over the published 935.8 GB/s with an x-gather locality
term: every non-zero reads 8 bytes of A plus a 4-byte x element whose
cache hit rate depends on per-row column locality and on how much x
reuse the matrix offers (``nnz / ncols``).
"""

from __future__ import annotations

from repro.baselines.base import AcceleratorModel, matrix_stats
from repro.matrix.coo import COOMatrix

#: Published platform specification (paper Table III).
RTX3090_FREQUENCY = 1560e6
RTX3090_BANDWIDTH = 935.8e9
RTX3090_PEAK_GFLOPS = 35580.0  # 35.58 TFLOP/s (FP32)

#: L2-resident x window (elements) for the gather hit-rate model.
L2_WINDOW = 1.5e6
#: Calibration constants (see EXPERIMENTS.md).
BASE_EFFICIENCY = 0.30
SHORT_ROW_WEIGHT = 3.5
IMBALANCE_WEIGHT = 0.30


class CuSparseRTX3090Model(AcceleratorModel):
    """Analytic model of cuSPARSE CSR SpMV on the RTX 3090."""

    name = "RTX 3090"
    frequency_hz = RTX3090_FREQUENCY
    bandwidth = RTX3090_BANDWIDTH
    peak_gflops = RTX3090_PEAK_GFLOPS

    def __init__(self, launch_overhead_s: float = 0.0):
        self.launch_overhead_s = launch_overhead_s

    def _x_miss_rate(self, stats) -> float:
        """Fraction of x gathers missing the cached window."""
        if stats.ncols == 0:
            return 0.0
        footprint = stats.ncols * 4
        if footprint <= L2_WINDOW * 4:
            return 0.0
        # Scattered accesses over a footprint larger than L2: misses grow
        # with per-row span.
        overflow = 1.0 - (L2_WINDOW * 4) / footprint
        return overflow * min(stats.col_span * 4.0, 1.0)

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """CSR stream + row pointers + y write + x gather misses."""
        stats = matrix_stats(coo)
        a_bytes = stats.nnz * 8
        ptr_bytes = (stats.nrows + 1) * 4
        y_bytes = stats.nrows * 8
        x_bytes = stats.ncols * 4 + stats.nnz * 4 * self._x_miss_rate(stats)
        return a_bytes + ptr_bytes + y_bytes + x_bytes

    def efficiency(self, coo: COOMatrix) -> float:
        """Fraction of peak bandwidth the kernel sustains."""
        stats = matrix_stats(coo)
        if stats.nnz == 0:
            return 1.0
        short_rows = 1.0 + SHORT_ROW_WEIGHT / max(stats.avg_row_len, 1.0)
        imbalance = 1.0 + IMBALANCE_WEIGHT * stats.row_cv
        return BASE_EFFICIENCY / (short_rows * imbalance)

    def time_s(self, coo: COOMatrix) -> float:
        if coo.nnz == 0:
            return self.launch_overhead_s
        mem_time = self.bytes_streamed(coo) / (
            self.bandwidth * self.efficiency(coo)
        )
        compute_time = self.flops(coo) / (self.peak_gflops * 1e9)
        return max(mem_time, compute_time) + self.launch_overhead_s
