"""Event-level HiSparse simulator.

First-principles counterpart of the analytic
:class:`~repro.baselines.hisparse.HiSparseModel`, mirroring the
HiSparse architecture (Du et al., FPGA 2022):

* the dense vector is buffered on chip in a fixed window, so wide
  matrices are processed in **column passes** (one window of x at a
  time);
* within a pass, non-zeros stream through 8 HBM channels, 8 records
  per channel per cycle;
* a shuffle unit routes each record to an output-buffer bank selected
  by ``row % 8``; records of the same packet hitting the same bank
  serialize — the *bank conflict* that makes row-clustered packets
  slow.

Simplifications: records are dealt to channels round-robin (HiSparse's
packer is smarter), and memory time is a roofline term overlapped with
compute.  As with the Serpens simulator, this is an optimistic bound
used to validate the calibrated model's shape, not to replace it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.matrix.coo import COOMatrix

#: HBM channels streaming the matrix.
NUM_CHANNELS = 8
#: Records per channel packet (one packet per cycle without conflicts).
PACK_SIZE = 8
#: Output-buffer banks per channel cluster.
NUM_BANKS = 8
#: On-chip dense-vector window (elements), as in the analytic model.
VECTOR_WINDOW = 64 * 1024
#: Cycles to refill the vector window between column passes.
PASS_SWITCH_CYCLES = 256


@dataclasses.dataclass(frozen=True)
class HiSparseRun:
    """Result of one simulated HiSparse SpMV."""

    y: np.ndarray
    cycles: float
    conflict_cycles: int
    passes: int
    time_s: float
    gflops: float


class HiSparseSimulator:
    """Event-level simulator of the HiSparse accelerator.

    Parameters
    ----------
    frequency_hz, bandwidth:
        Platform clock and bandwidth (defaults: Table III).
    vector_window:
        On-chip x window in elements.
    """

    def __init__(self, frequency_hz: float = 237e6,
                 bandwidth: float = 273e9,
                 vector_window: int = VECTOR_WINDOW):
        if vector_window <= 0:
            raise ValueError("vector_window must be positive")
        self.frequency_hz = frequency_hz
        self.bandwidth = bandwidth
        self.vector_window = vector_window

    def _pass_cycles(self, rows: np.ndarray) -> tuple:
        """(cycles, conflict cycles) to stream one channel's records.

        Records are first packed the way HiSparse's preprocessing does:
        interleaved round-robin across output banks, so packets only
        conflict when the bank distribution itself is skewed (e.g.
        dense rows concentrating on one bank).
        """
        if rows.size == 0:
            return 0, 0
        banks = rows % NUM_BANKS
        # visit number of each record within its bank.
        order_by_bank = np.lexsort((np.arange(rows.size), banks))
        sorted_banks = banks[order_by_bank]
        starts = np.concatenate(
            ([True], sorted_banks[1:] != sorted_banks[:-1])
        )
        run_start = np.maximum.accumulate(
            np.where(starts, np.arange(rows.size), 0)
        )
        visit_sorted = np.arange(rows.size) - run_start
        visit = np.empty(rows.size, dtype=np.int64)
        visit[order_by_bank] = visit_sorted
        packed = banks[np.lexsort((banks, visit))]

        n_packets = -(-rows.size // PACK_SIZE)
        padded = np.full(n_packets * PACK_SIZE, -1, dtype=np.int64)
        padded[: rows.size] = packed
        packets = padded.reshape(n_packets, PACK_SIZE)
        # Per packet, the worst bank multiplicity is its cycle cost.
        cost = np.ones(n_packets, dtype=np.int64)
        for bank in range(NUM_BANKS):
            cost = np.maximum(cost, (packets == bank).sum(axis=1))
        cycles = int(cost.sum())
        return cycles, cycles - n_packets

    def run(self, coo: COOMatrix, x: np.ndarray,
            y: np.ndarray = None) -> HiSparseRun:
        """Execute one SpMV: exact y plus event-derived cycles."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (coo.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {coo.shape}"
            )
        y_out = coo.spmv(x, y)

        passes = max(1, -(-coo.shape[1] // self.vector_window))
        compute_cycles = 0
        conflicts = 0
        for p in range(passes):
            lo = p * self.vector_window
            hi = lo + self.vector_window
            in_pass = (coo.cols >= lo) & (coo.cols < hi)
            rows = coo.rows[in_pass]
            # Each channel cluster owns a stripe of output rows (the
            # HiSparse row partitioning), so records route by row.
            stripe = max(-(-coo.shape[0] // NUM_CHANNELS), 1)
            channel_of = np.minimum(rows // stripe, NUM_CHANNELS - 1)
            pass_cycles = 0
            for ch in range(NUM_CHANNELS):
                cycles, conflict = self._pass_cycles(
                    rows[channel_of == ch]
                )
                pass_cycles = max(pass_cycles, cycles)
                conflicts += conflict
            compute_cycles += pass_cycles + (
                PASS_SWITCH_CYCLES if passes > 1 else 0
            )

        stream_bytes = (
            coo.nnz * 8
            + coo.shape[1] * 4 * passes
            + coo.shape[0] * 8
        )
        memory_cycles = stream_bytes / self.bandwidth * self.frequency_hz
        cycles = max(float(compute_cycles), memory_cycles)
        time_s = cycles / self.frequency_hz if cycles else 0.0
        flops = 2 * coo.nnz + coo.shape[0]
        return HiSparseRun(
            y=y_out,
            cycles=cycles,
            conflict_cycles=conflicts,
            passes=passes,
            time_s=time_s,
            gflops=flops / time_s / 1e9 if time_s else 0.0,
        )
