"""Baseline SpMV platforms (paper Section V-A2, Table III).

The paper compares against HiSparse, Serpens_a16/a24 (FPGA accelerators
measured on hardware) and cuSPARSE on an RTX 3090.  None of those
platforms is available here, so each is replaced by an analytic model
calibrated to its published specs (frequency, bandwidth, peak GFLOP/s)
and to the architectural behaviours that determine its per-matrix
efficiency — streaming byte cost, load imbalance, short-row overhead and
x-vector access locality.
"""

from repro.baselines.base import AcceleratorModel, MatrixStats, matrix_stats
from repro.baselines.cpu import CPUReference
from repro.baselines.hisparse import HiSparseModel
from repro.baselines.serpens import SerpensModel, SERPENS_A16, SERPENS_A24
from repro.baselines.gpu import CuSparseRTX3090Model
from repro.baselines.spasm import SpasmModel
from repro.baselines.serpens_sim import (
    SerpensProgram,
    SerpensRun,
    SerpensSimulator,
)
from repro.baselines.hisparse_sim import HiSparseRun, HiSparseSimulator

__all__ = [
    "AcceleratorModel",
    "MatrixStats",
    "matrix_stats",
    "CPUReference",
    "HiSparseModel",
    "SerpensModel",
    "SERPENS_A16",
    "SERPENS_A24",
    "CuSparseRTX3090Model",
    "SpasmModel",
    "SerpensProgram",
    "SerpensRun",
    "SerpensSimulator",
    "HiSparseRun",
    "HiSparseSimulator",
]
