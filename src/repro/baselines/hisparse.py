"""HiSparse baseline model (Du et al., FPGA 2022 — paper Table III).

HiSparse streams a packed CSC-tiled format (8 bytes per non-zero) through
8 HBM channels at 237 MHz with the dense vector buffered on chip.  Its
published peak is 60.7 GFLOP/s over 273 GB/s.  Measured efficiency on
real matrices is limited by three structural effects the model captures:

* **tile passes** — the on-chip vector buffer holds a window of x, so
  wide matrices re-stream x once per tile pass;
* **short rows / row imbalance** — the shuffle/accumulate stage bubbles
  on rows shorter than the lane count and on skewed row lengths;
* **scatter locality** — packed lanes underfill when a tile's non-zeros
  are scattered.
"""

from __future__ import annotations

from repro.baselines.base import AcceleratorModel, matrix_stats
from repro.matrix.coo import COOMatrix

#: Published platform specification (paper Table III).
HISPARSE_FREQUENCY = 237e6
HISPARSE_BANDWIDTH = 273e9
HISPARSE_PEAK_GFLOPS = 60.7

#: On-chip dense-vector window (elements) driving tile-pass re-streaming.
VECTOR_WINDOW = 64 * 1024

#: Calibration constants (fit so the suite geomean lands near the
#: paper's 6.74x SPASM speedup; see EXPERIMENTS.md).
BASE_EFFICIENCY = 0.19
IMBALANCE_WEIGHT = 0.55
SHORT_ROW_WEIGHT = 10.0
SCATTER_WEIGHT = 0.8
#: The structural penalties compound; the worst measured HiSparse result
#: in the paper is ~14x below SPASM, so the combined divisor saturates.
MAX_PENALTY = 5.0


class HiSparseModel(AcceleratorModel):
    """Analytic model of the HiSparse accelerator."""

    name = "HiSparse"
    frequency_hz = HISPARSE_FREQUENCY
    bandwidth = HISPARSE_BANDWIDTH
    peak_gflops = HISPARSE_PEAK_GFLOPS

    def __init__(self, launch_overhead_s: float = 0.0):
        self.launch_overhead_s = launch_overhead_s

    def bytes_streamed(self, coo: COOMatrix) -> float:
        """A stream (8 B/nnz) + y traffic + x re-streams per tile pass."""
        stats = matrix_stats(coo)
        passes = max(1, -(-stats.ncols // VECTOR_WINDOW))
        a_bytes = stats.nnz * 8
        x_bytes = stats.ncols * 4 * passes
        y_bytes = stats.nrows * 8
        return a_bytes + x_bytes + y_bytes

    def efficiency(self, coo: COOMatrix) -> float:
        """Fraction of peak bandwidth the matrix structure sustains."""
        stats = matrix_stats(coo)
        if stats.nnz == 0:
            return 1.0
        imbalance = 1.0 + IMBALANCE_WEIGHT * stats.row_cv
        short_rows = 1.0 + SHORT_ROW_WEIGHT / max(stats.avg_row_len, 1.0)
        scatter = 1.0 + SCATTER_WEIGHT * stats.col_span
        penalty = min(imbalance * short_rows * scatter, MAX_PENALTY)
        return BASE_EFFICIENCY / penalty

    def time_s(self, coo: COOMatrix) -> float:
        if coo.nnz == 0:
            return self.launch_overhead_s
        mem_time = self.bytes_streamed(coo) / (
            self.bandwidth * self.efficiency(coo)
        )
        compute_time = self.flops(coo) / (self.peak_gflops * 1e9)
        return max(mem_time, compute_time) + self.launch_overhead_s
