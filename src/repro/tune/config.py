"""Persisted per-matrix tuning records.

A :class:`TunedConfig` is the durable outcome of one
:func:`repro.tune.search.tune_matrix` run: every knob the tuner
explored, frozen to the measured-best choice, together with the
evidence (measured timings, the analytic model score of the structural
choice, and how hard the search pruned).  Records live in the ordinary
:class:`~repro.pipeline.cache.ArtifactCache` as ``tuned-<key>.npz``
entries keyed on the matrix content digest, so they inherit the
cache's atomic writes, payload checksums and corruption quarantine;
:data:`TUNER_VERSION` in the metadata invalidates every record when
the search semantics change.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

import numpy as np

from repro.pipeline.cache import KEY_CHARS, ArtifactCache

#: Bumped whenever the search semantics or the record schema change;
#: a persisted record with any other version is a plain cache miss
#: (re-tuned and overwritten), never an error.
TUNER_VERSION = 1

#: ArtifactCache stage name of tuning records (``tuned-<key>.npz``).
TUNED_STAGE = "tuned"

#: Metadata keys the cache layer adds on store; everything else in an
#: entry's metadata must round-trip a :class:`TunedConfig`.
_CACHE_META_KEYS = frozenset({"magic", "checksum"})


@dataclasses.dataclass(frozen=True)
class TunedConfig:
    """The measured-best knob assignment for one matrix.

    Structural knobs (``portfolio``/``tile_size``) drive the compile
    side: :class:`~repro.core.framework.SpasmCompiler` maps them to
    ``fixed_portfolio``/``fixed_tile_size``, skipping the selection
    and schedule sweeps.  They are applied to the numeric path only
    when ``structure_bitwise`` is true — the tuner proved the
    re-encoded stream reproduces the default encoding's float64 SpMV
    output bit for bit (a different slot order may legally reorder
    float accumulation, and the numeric contract wins over a modeled
    cycle gain).

    Execution knobs (``index``/``precision``/``backend``/``jobs``/
    ``batch_block``) drive dispatch: they are bitwise-safe by the
    engine's own invariants (every float64 backend, layout and shard
    grid accumulates segments in the same order), so
    :class:`~repro.tune.executor.TunedExecutor` pins them without
    further ceremony.
    """

    matrix_digest: str
    portfolio: str
    tile_size: int
    index: str
    precision: str
    backend: str
    jobs: int
    batch_block: int
    structure_bitwise: bool
    spmv_ms: float
    default_spmv_ms: float
    batch_qps: float
    default_batch_qps: float
    model_cycles: float
    candidates_total: int
    candidates_measured: int
    tuner_version: int = TUNER_VERSION

    @property
    def speedup(self) -> float:
        """Measured tuned-over-default SpMV speedup (>1 is a win)."""
        if self.spmv_ms <= 0.0:
            return 1.0
        return self.default_spmv_ms / self.spmv_ms

    @property
    def layout(self) -> str:
        """The plan array layout this config pins (``index/value``)."""
        return f"{self.index}/{self.precision}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (also the persisted cache metadata)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "TunedConfig":
        """Rebuild a config from persisted entry metadata.

        Strict on shape: a missing field, an unknown extra field or a
        mistyped value raises ``ValueError`` so the caller can
        quarantine the record — a tuning record that half-parses must
        never steer execution.
        """
        fields = {f.name: f.type for f in dataclasses.fields(cls)}
        payload = {
            key: value for key, value in meta.items()
            if key not in _CACHE_META_KEYS
        }
        missing = sorted(set(fields) - set(payload))
        unknown = sorted(set(payload) - set(fields))
        if missing or unknown:
            raise ValueError(
                f"malformed tuning record: missing={missing} "
                f"unknown={unknown}"
            )
        try:
            return cls(
                matrix_digest=str(payload["matrix_digest"]),
                portfolio=str(payload["portfolio"]),
                tile_size=int(payload["tile_size"]),
                index=str(payload["index"]),
                precision=str(payload["precision"]),
                backend=str(payload["backend"]),
                jobs=int(payload["jobs"]),
                batch_block=int(payload["batch_block"]),
                structure_bitwise=bool(payload["structure_bitwise"]),
                spmv_ms=float(payload["spmv_ms"]),
                default_spmv_ms=float(payload["default_spmv_ms"]),
                batch_qps=float(payload["batch_qps"]),
                default_batch_qps=float(payload["default_batch_qps"]),
                model_cycles=float(payload["model_cycles"]),
                candidates_total=int(payload["candidates_total"]),
                candidates_measured=int(payload["candidates_measured"]),
                tuner_version=int(payload["tuner_version"]),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed tuning record: {exc}") from exc


def tuned_cache_key(matrix_digest: str) -> str:
    """Cache key of a matrix's tuning record (digest prefix)."""
    return matrix_digest[:KEY_CHARS]


def store_tuned(cache: ArtifactCache, config: TunedConfig) -> None:
    """Persist one tuning record (atomic, checksummed, overwrites)."""
    cache.store(
        TUNED_STAGE,
        tuned_cache_key(config.matrix_digest),
        # The payload array only exists to give the checksum machinery
        # bytes to cover; the record itself is the metadata.
        {"tuner_version": np.array([config.tuner_version],
                                   dtype=np.int64)},
        meta=config.as_dict(),
    )


def list_tuned(cache: ArtifactCache) -> Dict[str, TunedConfig]:
    """Every valid persisted tuning record, keyed by matrix digest.

    The serving layer's warmup path uses this to pin tuned execution
    for any registered matrix that was ever tuned against this cache,
    without knowing the digests up front.  Records that fail to load
    (corrupt, foreign version) are skipped — :func:`load_tuned`
    already applies the quarantine policy.
    """
    prefix = f"{TUNED_STAGE}-"
    records: Dict[str, TunedConfig] = {}
    for name in cache.entries():
        if not (name.startswith(prefix) and name.endswith(".npz")):
            continue
        key = name[len(prefix):-len(".npz")]
        entry = cache.load(TUNED_STAGE, key)
        if entry is None:
            continue
        try:
            config = TunedConfig.from_meta(entry.meta)
        except ValueError:
            continue
        if config.tuner_version != TUNER_VERSION:
            continue
        if tuned_cache_key(config.matrix_digest) != key:
            continue
        records[config.matrix_digest] = config
    return records


def load_tuned(cache: ArtifactCache,
               matrix_digest: str) -> Optional[TunedConfig]:
    """The persisted record for a matrix digest, or ``None``.

    Misses on: no record, a record written by a different
    :data:`TUNER_VERSION` (stale, silently re-tuned), or a corrupt
    record — structural corruption is quarantined by the cache layer
    itself, while a record that loads but fails
    :meth:`TunedConfig.from_meta` or was stored under a foreign digest
    is quarantined here.  A bad record is consulted exactly once.
    """
    key = tuned_cache_key(matrix_digest)
    entry = cache.load(TUNED_STAGE, key)
    if entry is None:
        return None
    try:
        config = TunedConfig.from_meta(entry.meta)
    except ValueError as exc:
        cache.quarantine(TUNED_STAGE, key, reason=str(exc))
        return None
    if config.tuner_version != TUNER_VERSION:
        return None
    if config.matrix_digest != matrix_digest:
        cache.quarantine(
            TUNED_STAGE, key,
            reason=(f"digest mismatch: record for "
                    f"{config.matrix_digest[:12]}... filed under "
                    f"{matrix_digest[:12]}..."),
        )
        return None
    return config
