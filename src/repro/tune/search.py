"""The per-matrix autotuning search driver.

One :func:`tune_matrix` call explores the full knob space — template
portfolio (the ten Table V candidates), tile size, index/value dtype
layout, kernel backend, shard jobs and batch block width — in two
passes mirroring the paper's own flow:

1. **Analytic pruning** (the paper's step ④ model used as a cheap
   first pass): every candidate portfolio is compiled once with the
   selection stage pinned, letting the schedule sweep score every
   ``(portfolio, tile)`` point through
   :func:`repro.hw.perf_model.perf_model`; only the best-scoring
   structures survive to measurement.  This is where the ≥50% cut of
   the exhaustive candidate grid comes from.
2. **Measured best-of-N** on the survivors: structural survivors are
   re-encoded and timed (and checked *bitwise* against the default
   encoding — a structure that legally reorders float accumulation is
   recorded for the hardware side but never steers the numeric path),
   then the execution grid (layout x backend x jobs) and the batch
   block widths are timed on interleaved best-of-N runs against the
   default engine.

The winner is frozen into a :class:`~repro.tune.config.TunedConfig`
and, when an :class:`~repro.pipeline.cache.ArtifactCache` is passed,
persisted keyed on the matrix digest — a second tune of the same
matrix is a cache hit, not a re-search.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.framework import SpasmCompiler
from repro.core.templates import candidate_portfolios
from repro.exec.backends.registry import available_backends
from repro.exec.plan import ExecutionPlan, index_dtype_for
from repro.matrix import COOMatrix
from repro.pipeline.cache import ArtifactCache, matrix_digest
from repro.tune.config import (
    TUNER_VERSION,
    TunedConfig,
    load_tuned,
    store_tuned,
)
from repro.tune.executor import TunedExecutor

#: Structural survivors the model pass hands to measurement (the
#: default structure is always measured on top of these).
STRUCTURAL_SURVIVORS = 2

#: Batch block widths tried on the winning execution config (0 = the
#: engine's own scratch-bounded auto block).
BATCH_BLOCKS = (0, 8, 32)

#: float32 tolerance when ``allow_float32`` opts the value layout in.
_F32_RTOL, _F32_ATOL = 1e-5, 1e-8


@dataclasses.dataclass(frozen=True)
class Trial:
    """One timed candidate (for reports and the tuning bench)."""

    kind: str  # "structure" | "exec" | "batch"
    label: str
    ms: float
    bitwise: bool


@dataclasses.dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`tune_matrix` call."""

    config: TunedConfig
    cache_hit: bool
    wall_ms: float
    trials: Tuple[Trial, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.as_dict(),
            "cache_hit": self.cache_hit,
            "wall_ms": self.wall_ms,
            "trials": [dataclasses.asdict(t) for t in self.trials],
        }


def _best_of(fn: Callable[[], Any], repeats: int,
             inner: int = 1) -> float:
    """Best wall time of ``repeats`` runs of ``inner`` calls, in ms."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best * 1e3


def _best_of_pair(fn_a: Callable[[], Any], fn_b: Callable[[], Any],
                  repeats: int, inner: int = 1) -> Tuple[float, float]:
    """Interleaved best-of timing of two callables (fair comparison)."""
    best_a = best_b = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - t0) / inner)
        t0 = time.perf_counter()
        for _ in range(inner):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - t0) / inner)
    return best_a * 1e3, best_b * 1e3


def _calibrated_inner(fn: Callable[[], Any]) -> int:
    """Inner-loop count keeping one timing sample above ~0.3 ms."""
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    if once <= 0.0:
        return 32
    return int(max(1, min(32, 3e-4 / once)))


def _layout_variants(shape: Tuple[int, int], n_slots: int,
                     allow_float32: bool) -> List[Tuple[str, str]]:
    """The (index, precision) layouts worth timing for this plan."""
    auto_index = index_dtype_for(shape, n_slots).name
    layouts = [(auto_index, "float64")]
    if auto_index == "int32":
        layouts.append(("int64", "float64"))
    if allow_float32:
        layouts.append((auto_index, "float32"))
    return layouts


def _jobs_variants(n_slots: int) -> List[int]:
    """Shard counts worth timing (serial always; threads when sane)."""
    cpus = os.cpu_count() or 1
    variants = [1]
    if cpus > 1 and n_slots >= 2 * 16384:
        variants.append(min(2, cpus))
        if cpus > 2:
            variants.append(cpus)
    return variants


def tune_matrix(coo: COOMatrix, *,
                cache: Optional[ArtifactCache] = None,
                budget: int = 12,
                force: bool = False,
                repeats: int = 3,
                batch_queries: int = 8,
                seed: int = 0,
                allow_float32: bool = False,
                log: Optional[Callable[[str], None]] = None,
                ) -> TuneResult:
    """Search the knob space for one matrix; persist and return the win.

    ``budget`` caps how many candidates are *measured* (the analytic
    model prunes the rest); ``force`` re-searches even when a current
    record exists; ``allow_float32`` opts the compact value layout
    into the search (tolerance-checked, never silent).  The returned
    config's execution knobs are bitwise-safe by construction and its
    structural knobs carry an explicit ``structure_bitwise`` verdict.
    """
    t_start = time.perf_counter()
    emit = log if log is not None else (lambda message: None)
    digest = matrix_digest(coo)
    if cache is not None and not force:
        cached = load_tuned(cache, digest)
        if cached is not None:
            emit(f"tune: cache hit for {digest[:12]} "
                 f"(tuner v{cached.tuner_version})")
            wall_ms = (time.perf_counter() - t_start) * 1e3
            return TuneResult(config=cached, cache_hit=True,
                              wall_ms=wall_ms, trials=())

    rng = np.random.default_rng(seed)
    x = rng.random(coo.shape[1])
    xs = np.ascontiguousarray(
        rng.random((max(1, batch_queries), coo.shape[1]))
    )
    trials: List[Trial] = []
    budget = max(1, int(budget))

    # -- default configuration: the baseline every candidate must beat
    default_prog = SpasmCompiler(build_plan=True).compile(coo)
    default_plan = default_prog.plan
    assert default_plan is not None
    reference = default_plan.spmv(x)
    inner = _calibrated_inner(lambda: default_plan.spmv(x))

    # -- pass 1: analytic model over the full structural grid ---------
    candidates = candidate_portfolios()
    tile_count = len(SpasmCompiler().tile_sizes)
    structural: List[Dict[str, Any]] = []
    for portfolio in candidates:
        prog = SpasmCompiler().compile(coo, fixed_portfolio=portfolio)
        structural.append({
            "portfolio": portfolio.name,
            "tile": prog.tile_size,
            "cycles": float(prog.estimate().total_cycles),
            "spasm": prog.spasm,
        })
    structural.sort(key=lambda s: s["cycles"])
    survivors = structural[:STRUCTURAL_SURVIVORS]
    emit("tune: model pass scored "
         f"{len(candidates) * tile_count} structural points, kept "
         f"{len(survivors)}")

    # -- pass 2a: measure structural survivors (bitwise-gated) --------
    default_portfolio = default_prog.portfolio.name
    default_tile = default_prog.tile_size
    default_cycles = float(default_prog.estimate().total_cycles)
    best_structure = {
        "portfolio": default_portfolio, "tile": default_tile,
        "cycles": default_cycles, "bitwise": True,
    }
    measured = 0
    for entry in survivors:
        if measured >= budget:
            break
        if (entry["portfolio"] == default_portfolio
                and entry["tile"] == default_tile):
            continue
        plan = entry["spasm"].plan()
        got = plan.spmv(x)
        bitwise = bool(np.array_equal(got, reference))
        ms = _best_of(lambda p=plan: p.spmv(x), repeats, inner)
        measured += 1
        trials.append(Trial(
            kind="structure",
            label=f"{entry['portfolio']}/t{entry['tile']}",
            ms=ms, bitwise=bitwise,
        ))
        # A structure may only steer the numeric path when it is
        # bitwise-exact AND models at least as fast as the default;
        # the contract is "never worse", not "modeled better".
        if bitwise and entry["cycles"] <= best_structure["cycles"]:
            best_structure = {
                "portfolio": entry["portfolio"],
                "tile": entry["tile"],
                "cycles": entry["cycles"], "bitwise": True,
            }

    # -- pass 2b: execution grid on the default-structure plan --------
    spasm = default_prog.spasm
    layouts = _layout_variants(default_plan.shape, default_plan.n_slots,
                               allow_float32)
    jobs_grid = _jobs_variants(default_plan.n_slots)
    backends = available_backends()
    exec_grid: List[Tuple[str, str, str, int]] = []
    for index, precision in layouts:
        for backend in backends:
            if not backend.capabilities().supports_layout(
                    np.dtype(index), np.dtype(precision)):
                continue
            for jobs in jobs_grid:
                exec_grid.append((index, precision, backend.name, jobs))
    exhaustive = (len(candidates) * tile_count * len(exec_grid)
                  + len(BATCH_BLOCKS))

    best_exec: Optional[Dict[str, Any]] = None
    plans: Dict[Tuple[str, str], ExecutionPlan] = {
        (default_plan.cols.dtype.name,
         default_plan.vals.dtype.name): default_plan,
    }
    for index, precision, backend_name, jobs in exec_grid:
        if measured >= budget:
            emit(f"tune: measurement budget ({budget}) exhausted; "
                 "remaining exec candidates pruned unmeasured")
            break
        plan = plans.get((index, precision))
        if plan is None:
            plan = ExecutionPlan.build(spasm, index=index,
                                       precision=precision)
            plans[(index, precision)] = plan
        got = plan.spmv(x, jobs=jobs, backend=backend_name)
        if precision == "float64":
            ok = bool(np.array_equal(got, reference))
        else:
            ok = bool(np.allclose(got, reference, rtol=_F32_RTOL,
                                  atol=_F32_ATOL))
        label = f"{index}/{precision}/{backend_name}/j{jobs}"
        if not ok:
            trials.append(Trial(kind="exec", label=label,
                                ms=float("inf"), bitwise=False))
            continue
        ms, default_ms = _best_of_pair(
            lambda p=plan, j=jobs, b=backend_name: p.spmv(x, jobs=j,
                                                          backend=b),
            lambda: default_plan.spmv(x),
            repeats, inner,
        )
        measured += 1
        trials.append(Trial(kind="exec", label=label, ms=ms,
                            bitwise=(precision == "float64")))
        if best_exec is None or ms < best_exec["ms"]:
            best_exec = {
                "index": index, "precision": precision,
                "backend": backend_name, "jobs": jobs, "ms": ms,
                "plan": plan,
            }
    if best_exec is None:
        # Budget exhausted before any exec measurement: fall back to
        # the default engine's own resolution, timed once for the
        # record.
        from repro.exec.backends.registry import resolve_backend

        auto = resolve_backend(None, plan=default_plan, op="spmv")
        best_exec = {
            "index": default_plan.cols.dtype.name,
            "precision": default_plan.vals.dtype.name,
            "backend": auto.name, "jobs": 1,
            "ms": _best_of(lambda: default_plan.spmv(x), repeats,
                           inner),
            "plan": default_plan,
        }

    # -- pass 2c: batch block width on the winning exec config --------
    plan = best_exec["plan"]
    backend_name = best_exec["backend"]
    jobs = best_exec["jobs"]
    n_queries = xs.shape[0]
    best_block, best_batch_ms = 0, float("inf")
    for block in BATCH_BLOCKS:
        block_size = None if block == 0 else block
        ms = _best_of(
            lambda b=block_size: plan.spmv_batch(
                xs, jobs=jobs, block_size=b, backend=backend_name),
            repeats,
        )
        trials.append(Trial(kind="batch", label=f"block{block}",
                            ms=ms, bitwise=True))
        if ms < best_batch_ms:
            best_block, best_batch_ms = block, ms
    default_batch_ms = _best_of(lambda: default_plan.spmv_batch(xs),
                                repeats)

    # -- assemble, calibrate the headline pair, persist ---------------
    config = TunedConfig(
        matrix_digest=digest,
        portfolio=str(best_structure["portfolio"]),
        tile_size=int(best_structure["tile"]),
        index=str(best_exec["index"]),
        precision=str(best_exec["precision"]),
        backend=str(best_exec["backend"]),
        jobs=int(best_exec["jobs"]),
        batch_block=int(best_block),
        structure_bitwise=bool(best_structure["bitwise"]),
        spmv_ms=float(best_exec["ms"]),
        default_spmv_ms=float(best_exec["ms"]),  # refined below
        batch_qps=(n_queries / (best_batch_ms / 1e3)
                   if best_batch_ms > 0 else 0.0),
        default_batch_qps=(n_queries / (default_batch_ms / 1e3)
                           if default_batch_ms > 0 else 0.0),
        model_cycles=float(best_structure["cycles"]),
        candidates_total=int(exhaustive),
        candidates_measured=int(measured + len(BATCH_BLOCKS) + 1),
        tuner_version=TUNER_VERSION,
    )
    # The headline numbers time what a caller actually gets: the
    # pinned TunedExecutor against the untuned dispatch path, on the
    # same plan, interleaved.
    executor = TunedExecutor(plan, config)
    tuned_ms, default_ms = _best_of_pair(
        lambda: executor.spmv(x),
        lambda: default_plan.spmv(x, jobs=None, backend=None),
        max(repeats, 3), inner,
    )
    # Leave no machine pins behind on plans callers may share.
    plan.override_auto_jobs(None)
    default_plan.override_auto_jobs(None)
    config = dataclasses.replace(config, spmv_ms=tuned_ms,
                                 default_spmv_ms=default_ms)
    if cache is not None:
        store_tuned(cache, config)
    wall_ms = (time.perf_counter() - t_start) * 1e3
    emit(f"tune: {digest[:12]} -> {config.layout} {config.backend} "
         f"jobs={config.jobs} {config.speedup:.2f}x "
         f"({config.candidates_measured}/{exhaustive} candidates "
         "measured)")
    return TuneResult(config=config, cache_hit=False, wall_ms=wall_ms,
                      trials=tuple(trials))
