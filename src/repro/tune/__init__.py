"""Per-matrix autotuning over the portfolio/layout/backend knob space.

The execution knobs matter enormously per matrix (BENCH_exec.json:
int32 vs int64 layouts swing 2-7x, the shard crossover is
matrix-dependent, dispatch overhead rivals the kernel on small
matrices) but the pipeline picks them statically.  This package closes
the loop, in the AlphaSparse per-matrix-specialization direction:

* :func:`tune_matrix` searches the knob space — the ten Table V
  candidate portfolios, tile size, index/value dtype layout, kernel
  backend, shard jobs and batch block width — using the paper's step
  ④ analytic model (:mod:`repro.hw.perf_model`) as a cheap first-pass
  pruner before measured best-of-N timing on the survivors;
* :class:`TunedConfig` is the persisted winner, stored in the
  :class:`~repro.pipeline.cache.ArtifactCache` keyed on the matrix
  content digest with a :data:`TUNER_VERSION` invalidation field —
  re-tuning an unchanged matrix is a cache hit, not a re-search;
* :class:`TunedExecutor` pins a plan to its record: backend resolved,
  scratch prepared and the shard grid frozen once, then every call
  dispatches straight into the kernel — bitwise identical to the
  untuned engine on the same plan.

Records are transparently reused by
:class:`~repro.core.framework.SpasmCompiler` (``tuned=``),
:meth:`repro.core.format.SpasmMatrix.apply_tuned`, and the CLI
(``python -m repro tune`` / ``python -m repro run --tuned``).  See
``docs/TUNING.md``.
"""

from repro.tune.config import (
    TUNED_STAGE,
    TUNER_VERSION,
    TunedConfig,
    list_tuned,
    load_tuned,
    store_tuned,
    tuned_cache_key,
)
from repro.tune.executor import TunedExecutor
from repro.tune.search import Trial, TuneResult, tune_matrix

__all__ = [
    "TUNED_STAGE",
    "TUNER_VERSION",
    "Trial",
    "TuneResult",
    "TunedConfig",
    "TunedExecutor",
    "list_tuned",
    "load_tuned",
    "store_tuned",
    "tune_matrix",
    "tuned_cache_key",
]
