"""Pinned-dispatch execution of a tuned plan.

``ExecutionPlan.spmv`` re-negotiates a backend, re-derives the shard
grid and re-checks the scratch cache on *every* call — the right
default for an untuned plan, but measurable overhead once a
:class:`~repro.tune.config.TunedConfig` has already decided every
knob: on the sub-100µs matrices of the synth suite the dispatch
envelope costs as much as the kernel.  :class:`TunedExecutor` performs
that negotiation exactly once — resolve the tuned backend, validate
the plan, prepare the backend scratch, freeze the shard grid — and
then dispatches straight into the kernel.

The executor changes *where* per-call work happens, never *what* the
kernel computes: serial calls route through the plan's own
``_run_shard`` envelope (so the fault-injection hook still fires and
empty plans still short-circuit), sharded and batched calls delegate
to the plan entry points with every knob pinned.  Output is therefore
bitwise identical to the untuned engine on the same plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.exec.backends.registry import (
    BackendCapabilityError,
    BackendUnavailable,
    resolve_backend,
)
from repro.exec.plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tune.config import TunedConfig


class TunedExecutor:
    """One matrix's execution pinned to its measured-best knobs.

    Construction resolves and prepares everything a call would
    otherwise pay for: the tuned backend (falling back to auto
    negotiation when the persisted name is unavailable in this
    process — a record tuned with numba must still run without it),
    one :meth:`~repro.exec.plan.ExecutionPlan.validate` pass (a
    corrupt plan is refused up front, mirroring the guard), the
    backend's prepared scratch, and the tuned shard count — which is
    also installed as the plan's auto-jobs override so even untuned
    call sites on the same plan inherit the measured choice.
    """

    def __init__(self, plan: ExecutionPlan,
                 config: "TunedConfig") -> None:
        issues = plan.validate()
        if issues:
            raise ValueError(
                "refusing to pin a corrupt plan: " + "; ".join(issues)
            )
        self.plan = plan
        self.config = config
        try:
            self.engine = resolve_backend(config.backend, plan=plan,
                                          op="spmv")
        except (KeyError, BackendUnavailable, BackendCapabilityError):
            self.engine = resolve_backend(None, plan=plan, op="spmv")
        self.jobs = max(1, int(config.jobs))
        self.batch_block: Optional[int] = (
            int(config.batch_block) if config.batch_block > 0 else None
        )
        self._state = plan._backend_state(self.engine)
        plan.override_auto_jobs(self.jobs)

    @property
    def backend_name(self) -> str:
        """The kernel backend actually pinned (post-fallback)."""
        return self.engine.name

    def spmv(self, x: np.ndarray,
             y: Optional[np.ndarray] = None) -> np.ndarray:
        """``y = A @ x + y`` with every dispatch decision precomputed.

        Bitwise identical to ``plan.spmv(x, y)`` — same kernel, same
        segment order, same shard semantics.
        """
        plan = self.plan
        if self.jobs > 1:
            return plan.spmv(x, y=y, jobs=self.jobs,
                             backend=self.engine)
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.shape != (plan.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {plan.shape}"
            )
        out = np.zeros(plan.shape[0], dtype=np.float64)
        plan._run_shard(self.engine, self._state, out, x, 0,
                        plan.n_segments)
        if y is not None:
            y = np.asarray(y, dtype=np.float64)
            if y.shape != out.shape:
                raise ValueError(
                    f"y of shape {y.shape} incompatible with "
                    f"{plan.shape}"
                )
            out += y
        return out

    def spmm(self, x_block: np.ndarray,
             y_block: Optional[np.ndarray] = None) -> np.ndarray:
        """``Y = A @ X + Y`` with the tuned block size and shard grid."""
        return self.plan.spmm(
            x_block, y_block=y_block, jobs=self.jobs,
            block_size=self.batch_block, backend=self.engine,
        )

    def spmv_batch(self, xs: np.ndarray) -> np.ndarray:
        """Batched SpMV with the tuned block size and shard grid."""
        return self.plan.spmv_batch(
            xs, jobs=self.jobs, block_size=self.batch_block,
            backend=self.engine,
        )
