"""The operator interface the solvers consume."""

from __future__ import annotations

import numpy as np

from repro.core.format import SpasmMatrix
from repro.core.framework import SpasmProgram
from repro.exec.plan import ExecutionPlan
from repro.matrix.base import SparseMatrix


class LinearOperator:
    """A matrix seen only through ``y = A @ x``.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    matvec:
        Callable computing ``A @ x`` for a 1-D vector.
    diagonal:
        Optional callable returning the matrix diagonal (needed by
        Jacobi); ``None`` when unavailable.
    """

    def __init__(self, shape, matvec, diagonal=None):
        if len(shape) != 2:
            raise ValueError("shape must be (nrows, ncols)")
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._diagonal = diagonal

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"vector of shape {x.shape} incompatible with "
                f"{self.shape}"
            )
        return np.asarray(self._matvec(x), dtype=np.float64)

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (raises when the backend can't provide
        it)."""
        if self._diagonal is None:
            raise NotImplementedError(
                "this operator does not expose its diagonal"
            )
        return np.asarray(self._diagonal(), dtype=np.float64)

    def __matmul__(self, x):
        return self.matvec(x)


def _coo_diagonal(coo):
    def diagonal():
        n = min(coo.shape)
        diag = np.zeros(n)
        on_diag = coo.rows == coo.cols
        diag_idx = coo.rows[on_diag]
        keep = diag_idx < n
        diag[diag_idx[keep]] = coo.vals[on_diag][keep]
        return diag

    return diagonal


def as_operator(source, jobs: int = 1) -> LinearOperator:
    """Coerce any supported SpMV backend into a :class:`LinearOperator`.

    Accepts: an existing operator, any :class:`SparseMatrix`
    (COO/CSR/...), a :class:`SpasmMatrix`, a compiled
    :class:`ExecutionPlan`, a compiled :class:`SpasmProgram`, or a
    dense 2-D ndarray.  SPASM sources compile their execution plan
    *once* here, so every solver iteration is a plain gather +
    segment-reduce; ``jobs`` shards each matvec on a thread pool.
    """
    if isinstance(source, LinearOperator):
        return source
    if isinstance(source, SpasmProgram):
        source = source.plan if source.plan is not None else source.spasm
    if isinstance(source, SpasmMatrix):
        source = source.plan()
    if isinstance(source, ExecutionPlan):
        plan = source
        return LinearOperator(
            plan.shape,
            lambda x: plan.spmv(x, jobs=jobs),
            plan.diagonal,
        )
    if isinstance(source, SparseMatrix):
        from repro.matrix.coo import COOMatrix

        diagonal = (
            _coo_diagonal(source)
            if isinstance(source, COOMatrix)
            else lambda: np.diag(source.to_dense())
        )
        return LinearOperator(source.shape, source.spmv, diagonal)
    try:
        array = np.asarray(source, dtype=np.float64)
    except (TypeError, ValueError):
        raise TypeError(
            f"cannot build an operator from {type(source)!r}"
        ) from None
    if array.ndim == 2:
        return LinearOperator(
            array.shape,
            lambda x: array @ x,
            lambda: np.diag(array),
        )
    raise TypeError(f"cannot build an operator from {type(source)!r}")
