"""Iterative solvers on top of SPASM SpMV.

The paper's amortization argument (Section V-E4) rests on workloads
that multiply the *same* matrix thousands of times — Krylov solvers in
scientific computing, QP iterations in finance, power iterations in
graph analytics.  This package provides those loops as library code so
any SpMV backend (a plain matrix, a compiled :class:`SpasmProgram`, a
reordered pipeline) plugs in through one operator interface.
"""

from repro.solvers.operator import LinearOperator, as_operator
from repro.solvers.iterative import (
    SolveResult,
    conjugate_gradient,
    bicgstab,
    jacobi,
    power_iteration,
)

__all__ = [
    "LinearOperator",
    "as_operator",
    "SolveResult",
    "conjugate_gradient",
    "bicgstab",
    "jacobi",
    "power_iteration",
]
