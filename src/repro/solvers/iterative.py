"""Classic iterative methods over the operator interface."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.solvers.operator import as_operator


@dataclasses.dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The final iterate.
    iterations:
        Iterations actually performed.
    converged:
        Whether the residual tolerance was met.
    residual_norm:
        Final ``||b - A x||`` (2-norm).
    history:
        Residual norm after each iteration.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    history: tuple


def _prepare(source, b):
    operator = as_operator(source)
    b = np.asarray(b, dtype=np.float64)
    if operator.shape[0] != operator.shape[1]:
        raise ValueError("iterative solvers need a square operator")
    if b.shape != (operator.shape[0],):
        raise ValueError(
            f"rhs of shape {b.shape} incompatible with {operator.shape}"
        )
    return operator, b


def conjugate_gradient(source, b, tol: float = 1e-10,
                       max_iters: int = 1000,
                       x0: np.ndarray = None,
                       preconditioner=None) -> SolveResult:
    """(Preconditioned) conjugate gradients for SPD systems.

    ``preconditioner`` is either a callable applying ``M^-1 r`` or the
    string ``"jacobi"`` (diagonal scaling via the operator's
    diagonal).
    """
    operator, b = _prepare(source, b)
    if preconditioner == "jacobi":
        diag = operator.diagonal()
        if np.any(diag == 0.0):
            raise ValueError(
                "Jacobi preconditioning needs a zero-free diagonal"
            )
        inv_diag = 1.0 / diag

        def preconditioner(r):
            return inv_diag * r

    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64)
    )
    r = b - operator.matvec(x) if x.any() else b.copy()
    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rz = float(r @ z)
    history = []
    for iteration in range(1, max_iters + 1):
        ap = operator.matvec(p)
        denom = float(p @ ap)
        if denom == 0.0:
            break
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return SolveResult(x, iteration, True, history[-1],
                               tuple(history))
        z = preconditioner(r) if preconditioner else r
        rz_next = float(r @ z)
        p = z + (rz_next / rz) * p
        rz = rz_next
    residual = float(np.linalg.norm(b - operator.matvec(x)))
    return SolveResult(x, len(history), residual < tol, residual,
                       tuple(history))


def bicgstab(source, b, tol: float = 1e-10, max_iters: int = 1000,
             x0: np.ndarray = None) -> SolveResult:
    """BiCGSTAB for general (non-symmetric) systems."""
    operator, b = _prepare(source, b)
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64)
    )
    r = b - operator.matvec(x) if x.any() else b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history = []
    for iteration in range(1, max_iters + 1):
        rho_next = float(r_hat @ r)
        if rho_next == 0.0:
            break
        if iteration == 1:
            p = r.copy()
        else:
            beta = (rho_next / rho) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = operator.matvec(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_next / denom
        s = r - alpha * v
        if np.linalg.norm(s) < tol:
            x = x + alpha * p
            history.append(float(np.linalg.norm(s)))
            return SolveResult(x, iteration, True, history[-1],
                               tuple(history))
        t = operator.matvec(s)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x = x + alpha * p + omega * s
        r = s - omega * t
        rho = rho_next
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return SolveResult(x, iteration, True, history[-1],
                               tuple(history))
        if omega == 0.0:
            break
    residual = float(np.linalg.norm(b - operator.matvec(x)))
    return SolveResult(x, len(history), residual < tol, residual,
                       tuple(history))


def jacobi(source, b, tol: float = 1e-10, max_iters: int = 1000,
           x0: np.ndarray = None) -> SolveResult:
    """Jacobi iteration for diagonally dominant systems."""
    operator, b = _prepare(source, b)
    diag = operator.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi needs a zero-free diagonal")
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64)
    )
    history = []
    for iteration in range(1, max_iters + 1):
        r = b - operator.matvec(x)
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return SolveResult(x, iteration - 1, True, history[-1],
                               tuple(history))
        x = x + r / diag
    residual = float(np.linalg.norm(b - operator.matvec(x)))
    return SolveResult(x, max_iters, residual < tol, residual,
                       tuple(history))


def power_iteration(source, tol: float = 1e-12,
                    max_iters: int = 1000, seed: int = 0) -> tuple:
    """Dominant eigenpair of a square operator.

    Returns ``(eigenvalue, eigenvector, iterations)``.
    """
    operator = as_operator(source)
    if operator.shape[0] != operator.shape[1]:
        raise ValueError("power iteration needs a square operator")
    rng = np.random.default_rng(seed)
    v = rng.random(operator.shape[0])
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for iteration in range(1, max_iters + 1):
        w = operator.matvec(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v, iteration
        v_next = w / norm
        eigenvalue_next = float(v_next @ operator.matvec(v_next))
        if abs(eigenvalue_next - eigenvalue) < tol:
            return eigenvalue_next, v_next, iteration
        v = v_next
        eigenvalue = eigenvalue_next
    return eigenvalue, v, max_iters
