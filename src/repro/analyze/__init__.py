"""Static analysis of compiled artifacts and of the code base itself.

``repro.analyze`` has two pillars:

* **Symbolic plan analysis** (:mod:`repro.analyze.symbolic`) — an
  abstract-interpretation pass over compiled
  :class:`~repro.exec.plan.ExecutionPlan` artifacts that, without
  executing a single SpMV, proves or refutes the six safety
  obligations the unchecked fast-path kernels rely on: index-width
  safety (with a certified symbolic bound), segment coverage
  (write-exactly-once), shard race-freedom, memory-image bounds,
  guard/verifier policy consistency, and backend-capability coverage
  (every dispatchable op resolves inside a registered backend's
  declared capability envelope).  Refuted obligations surface as
  ``analyze.*`` diagnostics through :mod:`repro.verify`.
* **Codebase lint** (:mod:`repro.analyze.lints`) — a custom AST
  checker enforcing the repository's determinism/safety discipline
  (no unseeded randomness, no clocks in kernel bodies, no silent
  dtype upcasts on hot paths, one shared pool, no bare ``except``,
  no raw kernel access outside the plan module, no dead public API),
  burned down against a checked-in baseline.

Quick use::

    from repro.analyze import analyze_plan, self_lint
    report = analyze_plan(plan, spasm=spasm, image=image)
    assert report.ok, report.render()
    findings = self_lint()

or from the command line::

    python -m repro analyze              # prove the synth suite
    python -m repro analyze --self       # lint src/repro
"""

from repro.analyze.symbolic import (
    PROVED,
    REFUTED,
    SKIPPED,
    AnalysisReport,
    IndexWidthCertificate,
    Obligation,
    OBLIGATION_IDS,
    analyze_plan,
    analyze_program,
    certify_index_width,
    check_backend_capability,
    check_image_bounds,
    check_index_width,
    check_policy_consistency,
    check_segment_coverage,
    check_shard_disjointness,
)
from repro.analyze.lints import (
    LINT_IDS,
    LintFinding,
    baseline_path,
    diff_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    self_lint,
    write_baseline,
)

__all__ = [
    "PROVED",
    "REFUTED",
    "SKIPPED",
    "AnalysisReport",
    "IndexWidthCertificate",
    "Obligation",
    "OBLIGATION_IDS",
    "analyze_plan",
    "analyze_program",
    "certify_index_width",
    "check_backend_capability",
    "check_image_bounds",
    "check_index_width",
    "check_policy_consistency",
    "check_segment_coverage",
    "check_shard_disjointness",
    "LINT_IDS",
    "LintFinding",
    "baseline_path",
    "diff_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "self_lint",
    "write_baseline",
]
