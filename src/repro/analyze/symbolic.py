"""Symbolic safety proofs for compiled execution plans.

The compiled fast path dispatches with **no per-slot checks at all**:
the gather/segment-reduce kernels and scipy's unchecked C CSR routines
trust the plan arrays completely, and the compact int32 layout makes
index overflow a real hazard class.  This module is the static
counterpart of that trust — an abstract-interpretation pass over the
plan arrays that, without executing a single SpMV, *proves* (or
refutes, with a pinpointed witness) the six obligations every
dispatch relies on:

``index_width``
    Every index the kernels ever materialize — gather indices into
    ``x``, segment rows, cumulative slot offsets up to ``n_slots`` —
    is representable in the chosen index dtype, with in-range values.
    The proof carries a **certified symbolic bound** ("this layout is
    safe up to N slots / rows / columns"), so
    :func:`repro.exec.plan.index_dtype_for` decisions are certified
    rather than heuristic; :func:`certify_index_width` is pure symbolic
    arithmetic over extents and is usable without allocating any array.
``coverage``
    The reduceat/bincount segmentation writes each output row exactly
    once: the segment pointers partition the slot stream with no gaps
    or overlaps, segment rows are strictly increasing and in range,
    and rows without a segment are written exactly once by the
    zero-initialization of the output buffer.
``shards``
    Row-block shard grids have provably disjoint write sets for every
    worker count: the partition covers all segments exactly once and
    consecutive shards' row intervals never intersect, so
    ``spmv(jobs=N)`` bitwise-determinism is a theorem, not a test
    observation.
``image``
    Packed HBM memory-image offsets stay inside their channel
    regions: every channel's byte length equals the exact footprint
    the descriptor tables imply, so the round-robin cursors of
    :func:`repro.hw.memory_image.unpack_images` can never read past a
    region, and the descriptor totals account for every group.
``policy``
    The dtype/checksum policy enforced by
    :meth:`~repro.exec.plan.ExecutionPlan.validate` (the guard's
    pre-dispatch check) and the ``plan.*`` rules of
    :mod:`repro.verify` agree — the two rule sources are cross-checked
    so guard and verifier can never silently drift.
``backend``
    Every op the plan can be asked to run (``spmv``/``spmm``/
    ``spmv_batch``) resolves to a registered, available kernel backend
    whose declared :meth:`~repro.exec.backends.base.ExecutionBackend.
    capabilities` cover the plan's stored layout — a dispatch outside
    a backend's capability envelope is refuted before any kernel would
    silently mis-execute, with a witness naming the backend and the
    offending dtype/op.

Refuted obligations surface as ``analyze.*`` diagnostics through
:mod:`repro.verify.analyze_rules`; :func:`analyze_plan` is the direct
entry point and :func:`analyze_program` the whole-artifact one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Obligation verdicts.
PROVED = "proved"
REFUTED = "refuted"
SKIPPED = "skipped"

#: The six obligation classes, report order.
OBLIGATION_IDS = (
    "index_width", "coverage", "shards", "image", "policy", "backend",
)

#: Value dtypes the analyzer's policy table accepts — cross-checked
#: against ``repro.exec.plan`` in :func:`check_policy_consistency` so
#: an extension of one table without the other refutes ``policy``.
POLICY_INDEX_DTYPES = ("int32", "int64")
POLICY_VALUE_DTYPES = ("float32", "float64")

#: Default worker counts the shard obligation quantifies over (the
#: plan's own auto pick is always added).
DEFAULT_JOBS_GRID = (1, 2, 3, 4, 7, 8, 16)


@dataclasses.dataclass(frozen=True)
class IndexWidthCertificate:
    """The symbolic outcome of the index-width proof.

    Pure arithmetic over extents — no arrays are touched — so
    certificates for ``_INT32_MAX``-adjacent synthetic plans cost
    nothing to derive (the boundary tests construct them directly).

    Attributes
    ----------
    dtype:
        The index dtype under certification (``"int32"``/``"int64"``).
    capacity:
        Largest value the dtype represents.
    extent:
        The plan's governing extent: ``max(nrows, ncols, n_slots)``
        (``seg_starts`` holds offsets up to ``n_slots``, so the slot
        count competes with the shape).
    safe:
        Whether every derivable index fits the dtype.
    headroom:
        ``capacity - extent`` (negative exactly when unsafe).
    compact_sufficient:
        Whether the compact int32 layout would already suffice — by
        construction this flips exactly where
        :func:`repro.exec.plan.index_dtype_for` flips.
    """

    dtype: str
    capacity: int
    extent: int
    safe: bool
    headroom: int
    compact_sufficient: bool

    def bound(self) -> str:
        """Human rendering of the certified bound."""
        return (
            f"{self.dtype} layout certified for extents up to "
            f"{self.capacity} (plan extent {self.extent}, headroom "
            f"{self.headroom})"
        )


def certify_index_width(shape: Tuple[int, int], n_slots: int,
                        dtype: Any) -> IndexWidthCertificate:
    """Symbolically certify an index layout for the given extents.

    ``shape``/``n_slots`` describe the plan abstractly; no arrays are
    required, so boundary cases near ``2**31 - 1`` can be certified
    without allocating anything.  The verdict flips exactly where
    :func:`repro.exec.plan.index_dtype_for` switches to int64.
    """
    dt = np.dtype(dtype)
    if dt.kind != "i":
        raise ValueError(f"not an index dtype: {dt}")
    capacity = int(np.iinfo(dt).max)
    extent = max(int(shape[0]), int(shape[1]), int(n_slots))
    int32_capacity = int(np.iinfo(np.int32).max)
    return IndexWidthCertificate(
        dtype=dt.name,
        capacity=capacity,
        extent=extent,
        safe=extent <= capacity,
        headroom=capacity - extent,
        compact_sufficient=extent <= int32_capacity,
    )


@dataclasses.dataclass(frozen=True)
class Obligation:
    """One proof obligation's verdict.

    Attributes
    ----------
    obligation_id:
        One of :data:`OBLIGATION_IDS`.
    status:
        :data:`PROVED`, :data:`REFUTED` or :data:`SKIPPED` (the
        required artifact was not in scope).
    statement:
        What was proved — or, when refuted, the violated property with
        a pinpointed witness (array, position, value).
    bound:
        The certified symbolic bound, when the proof derives one.
    details:
        Machine-readable payload (extents, witnesses, grids).
    """

    obligation_id: str
    status: str
    statement: str
    bound: Optional[str] = None
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    @property
    def refuted(self) -> bool:
        return self.status == REFUTED

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict view."""
        payload: Dict[str, Any] = {
            "obligation": self.obligation_id,
            "status": self.status,
            "statement": self.statement,
        }
        if self.bound is not None:
            payload["bound"] = self.bound
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Obligation":
        """Inverse of :meth:`as_dict` (cache re-materialization)."""
        return cls(
            obligation_id=str(payload["obligation"]),
            status=str(payload["status"]),
            statement=str(payload["statement"]),
            bound=(str(payload["bound"])
                   if payload.get("bound") is not None else None),
            details=dict(payload.get("details", {})),
        )

    def render(self) -> str:
        """One-line human rendering."""
        line = (
            f"{self.status.upper():7s} {self.obligation_id}: "
            f"{self.statement}"
        )
        if self.bound:
            line += f" [{self.bound}]"
        return line


@dataclasses.dataclass
class AnalysisReport:
    """Outcome of one symbolic analysis pass."""

    obligations: List[Obligation] = dataclasses.field(
        default_factory=list
    )
    matrix: Optional[str] = None

    @property
    def proved(self) -> List[Obligation]:
        return [o for o in self.obligations if o.proved]

    @property
    def refuted(self) -> List[Obligation]:
        return [o for o in self.obligations if o.refuted]

    @property
    def ok(self) -> bool:
        """True when no obligation was refuted."""
        return not self.refuted

    def obligation(self, obligation_id: str) -> Obligation:
        """The verdict for one obligation class."""
        for o in self.obligations:
            if o.obligation_id == obligation_id:
                return o
        raise KeyError(obligation_id)

    def summary(self) -> str:
        skipped = [
            o for o in self.obligations if o.status == SKIPPED
        ]
        parts = [
            f"{len(self.proved)} proved",
            f"{len(self.refuted)} refuted",
        ]
        if skipped:
            parts.append(f"{len(skipped)} skipped")
        label = f" for {self.matrix}" if self.matrix else ""
        return (
            f"{len(self.obligations)} obligations{label}: "
            + ", ".join(parts)
        )

    def render(self) -> str:
        lines = [o.render() for o in self.obligations]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "matrix": self.matrix,
            "ok": self.ok,
            "proved": len(self.proved),
            "refuted": len(self.refuted),
            "obligations": [o.as_dict() for o in self.obligations],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AnalysisReport":
        return cls(
            obligations=[
                Obligation.from_dict(o)
                for o in payload.get("obligations", [])
            ],
            matrix=payload.get("matrix"),
        )


def _first_violation(mask: np.ndarray) -> int:
    """Index of the first True entry of a violation mask."""
    return int(np.flatnonzero(mask)[0])


# ---------------------------------------------------------------------
# obligation (a): index-width safety
# ---------------------------------------------------------------------

def check_index_width(plan: Any) -> Obligation:
    """Prove every derivable index is representable and in range.

    Two layers: the *symbolic* layer certifies the layout from extents
    alone (:func:`certify_index_width` — the bound that makes
    ``index_dtype_for`` decisions certified), and the *concrete* layer
    checks the actual arrays against the ranges the symbolic layer
    assumed (gather indices inside ``[0, ncols)``, a single index
    dtype across all three index arrays).
    """
    oid = "index_width"
    if plan.cols.dtype != plan.seg_starts.dtype or (
        plan.cols.dtype != plan.seg_rows.dtype
    ):
        return Obligation(
            oid, REFUTED,
            f"index arrays disagree on width: cols={plan.cols.dtype.name}, "
            f"seg_starts={plan.seg_starts.dtype.name}, "
            f"seg_rows={plan.seg_rows.dtype.name}",
            details={"witness": "dtype"},
        )
    try:
        cert = certify_index_width(
            plan.shape, plan.n_slots, plan.cols.dtype
        )
    except ValueError:
        return Obligation(
            oid, REFUTED,
            f"{plan.cols.dtype.name} is not an index dtype",
            details={"witness": "dtype"},
        )
    if not cert.safe:
        return Obligation(
            oid, REFUTED,
            f"{cert.dtype} cannot address this plan: extent "
            f"{cert.extent} exceeds capacity {cert.capacity} "
            f"(overflow by {-cert.headroom})",
            bound=cert.bound(),
            details={"capacity": cert.capacity, "extent": cert.extent},
        )
    if plan.n_slots:
        cols = plan.cols
        bad = (cols < 0) | (cols >= plan.shape[1])
        if bad.any():
            i = _first_violation(bad)
            return Obligation(
                oid, REFUTED,
                f"gather index cols[{i}] = {int(cols[i])} outside "
                f"[0, {plan.shape[1]}): the unchecked gather would "
                "read out of bounds",
                bound=cert.bound(),
                details={"witness": f"cols[{i}]",
                         "value": int(cols[i])},
            )
    return Obligation(
        oid, PROVED,
        f"every gather/scatter index and segment offset fits "
        f"{cert.dtype} and stays in range",
        bound=cert.bound(),
        details={
            "capacity": cert.capacity,
            "extent": cert.extent,
            "headroom": cert.headroom,
            "compact_sufficient": cert.compact_sufficient,
        },
    )


# ---------------------------------------------------------------------
# obligation (b): segment coverage
# ---------------------------------------------------------------------

def check_segment_coverage(plan: Any) -> Obligation:
    """Prove the segmentation writes each output row exactly once.

    The kernels zero-initialize the output and then write exactly one
    reduced value per segment, so write-exactly-once is equivalent to:
    segment pointers partition ``[0, n_slots)`` (start at 0, strictly
    increase, never pass the stream) and segment rows are strictly
    increasing inside ``[0, nrows)`` (each row owns at most one
    segment).  Rows without a segment keep their initialization write.
    """
    oid = "coverage"
    nrows = int(plan.shape[0])
    n_slots = plan.n_slots
    n_segments = plan.n_segments
    if n_segments == 0:
        if n_slots == 0:
            return Obligation(
                oid, PROVED,
                f"empty plan: all {nrows} output rows are written "
                "exactly once by zero-initialization",
            )
        return Obligation(
            oid, REFUTED,
            f"{n_slots} slots but no segment to reduce them into "
            "(the whole stream would be dropped)",
            details={"witness": "seg_starts"},
        )
    starts = plan.seg_starts
    rows = plan.seg_rows
    if starts.shape != rows.shape:
        return Obligation(
            oid, REFUTED,
            f"seg_starts/seg_rows shape mismatch: {starts.shape} vs "
            f"{rows.shape}",
            details={"witness": "shape"},
        )
    if int(starts[0]) != 0:
        return Obligation(
            oid, REFUTED,
            f"seg_starts[0] = {int(starts[0])}: slots before the "
            "first segment would never be reduced (gap)",
            details={"witness": "seg_starts[0]"},
        )
    gaps = np.diff(starts) <= 0
    if gaps.any():
        i = _first_violation(gaps)
        return Obligation(
            oid, REFUTED,
            f"seg_starts[{i + 1}] = {int(starts[i + 1])} does not "
            f"advance past seg_starts[{i}] = {int(starts[i])}: "
            "segments overlap or run empty",
            details={"witness": f"seg_starts[{i + 1}]"},
        )
    if int(starts[-1]) >= n_slots:
        return Obligation(
            oid, REFUTED,
            f"seg_starts[{n_segments - 1}] = {int(starts[-1])} points "
            f"past the {n_slots}-slot stream",
            details={"witness": f"seg_starts[{n_segments - 1}]"},
        )
    dup = np.diff(rows) <= 0
    if dup.any():
        i = _first_violation(dup)
        return Obligation(
            oid, REFUTED,
            f"seg_rows[{i + 1}] = {int(rows[i + 1])} does not exceed "
            f"seg_rows[{i}] = {int(rows[i])}: a row would be written "
            "twice (or rows out of order)",
            details={"witness": f"seg_rows[{i + 1}]"},
        )
    if int(rows[0]) < 0 or int(rows[-1]) >= nrows:
        witness = 0 if int(rows[0]) < 0 else n_segments - 1
        return Obligation(
            oid, REFUTED,
            f"seg_rows[{witness}] = {int(rows[witness])} outside "
            f"[0, {nrows}): the scatter would write out of bounds",
            details={"witness": f"seg_rows[{witness}]"},
        )
    return Obligation(
        oid, PROVED,
        f"{n_segments} segments partition all {n_slots} slots with no "
        f"gaps or overlaps; each of the {nrows} output rows is "
        f"written exactly once ({nrows - n_segments} by "
        "zero-initialization)",
        details={"segments": n_segments, "slots": n_slots},
    )


# ---------------------------------------------------------------------
# obligation (c): shard race-freedom
# ---------------------------------------------------------------------

def _jobs_grid(plan: Any,
               jobs_grid: Optional[Sequence[int]]) -> List[int]:
    grid = set(DEFAULT_JOBS_GRID if jobs_grid is None else jobs_grid)
    grid.add(int(plan._auto_jobs()))
    return sorted(j for j in grid if j >= 1)


def check_shard_disjointness(
    plan: Any, jobs_grid: Optional[Sequence[int]] = None,
) -> Obligation:
    """Prove row-block shards have disjoint write sets for all grids.

    Quantifies over every worker count in ``jobs_grid`` (plus the
    plan's own auto heuristic pick): the shard bounds must partition
    the segment range exactly, and the row intervals
    ``[seg_rows[lo], seg_rows[hi-1] + 1)`` written by consecutive
    shards must never intersect.  Under a proved ``coverage``
    obligation the second property follows from strict monotonicity of
    ``seg_rows`` — the check still evaluates it concretely so a
    corrupted plan refutes with the exact shard pair.
    """
    oid = "shards"
    grid = _jobs_grid(plan, jobs_grid)
    n_segments = plan.n_segments
    for jobs in grid:
        bounds = plan.shard_bounds(jobs)
        if bounds[0][0] != 0 or bounds[-1][1] != n_segments:
            return Obligation(
                oid, REFUTED,
                f"jobs={jobs}: shard grid {bounds[0][0]}.."
                f"{bounds[-1][1]} does not cover all {n_segments} "
                "segments",
                details={"jobs": jobs},
            )
        for i in range(1, len(bounds)):
            if bounds[i][0] != bounds[i - 1][1]:
                return Obligation(
                    oid, REFUTED,
                    f"jobs={jobs}: shard {i} starts at segment "
                    f"{bounds[i][0]} but shard {i - 1} ended at "
                    f"{bounds[i - 1][1]} (gap or overlap)",
                    details={"jobs": jobs, "shard": i},
                )
        rows = plan.seg_rows
        for i in range(1, len(bounds)):
            lo_prev, hi_prev = bounds[i - 1]
            lo, __ = bounds[i]
            if hi_prev == lo_prev or lo == bounds[i][1]:
                continue  # empty shard writes nothing
            r1_prev = int(rows[hi_prev - 1]) + 1
            r0 = int(rows[lo])
            if r0 < r1_prev:
                return Obligation(
                    oid, REFUTED,
                    f"jobs={jobs}: shard {i - 1} writes rows up to "
                    f"{r1_prev - 1} while shard {i} starts at row "
                    f"{r0} — overlapping write sets race",
                    details={"jobs": jobs, "shard": i,
                             "rows": [r1_prev - 1, r0]},
                )
    return Obligation(
        oid, PROVED,
        f"shard write sets are pairwise disjoint row intervals for "
        f"every jobs in {{{', '.join(map(str, grid))}}}: "
        "jobs=N bitwise determinism is structural",
        details={"jobs_grid": grid},
    )


# ---------------------------------------------------------------------
# obligation (d): memory-image bounds
# ---------------------------------------------------------------------

def check_image_bounds(image: Optional[Any], k: int = 4,
                       spasm: Optional[Any] = None) -> Obligation:
    """Prove packed-image offsets stay inside their channel regions.

    From the descriptor tables alone the exact footprint of every
    channel is derivable: a value channel holds ``k`` float32 words
    per group of its PEs, a position channel holds every
    ``POSITION_CHANNELS_PER_GROUP``-th 32-bit position word of its PE
    group.  Equality of derived footprint and actual region length
    proves the pack cursors never left a region and the unpack
    cursors never will; with the source ``spasm`` in scope the
    descriptor totals are additionally tied to the stream's group
    count.
    """
    oid = "image"
    if image is None:
        return Obligation(
            oid, SKIPPED,
            "no memory image in scope (pack one to prove region "
            "bounds)",
        )
    from repro.hw.configs import (
        PES_PER_GROUP,
        PES_PER_VALUE_CHANNEL,
        POSITION_CHANNELS_PER_GROUP,
    )

    config = image.config
    groups_per_pe = [
        sum(int(n) for __, __, n in descriptor)
        for descriptor in image.descriptors
    ]
    if len(groups_per_pe) != config.num_pes:
        return Obligation(
            oid, REFUTED,
            f"descriptor table covers {len(groups_per_pe)} PEs, "
            f"hardware has {config.num_pes}",
            details={"witness": "descriptors"},
        )
    if spasm is not None:
        total = sum(groups_per_pe)
        if total != int(spasm.n_groups):
            return Obligation(
                oid, REFUTED,
                f"descriptors account for {total} groups, the stream "
                f"stores {int(spasm.n_groups)} — load units would "
                "walk off (or stop short of) the stream",
                details={"witness": "descriptors",
                         "descriptor_groups": total,
                         "stream_groups": int(spasm.n_groups)},
            )
    checked = 0
    for g in range(config.num_pe_groups):
        base = g * PES_PER_GROUP
        for v in range(PES_PER_GROUP // PES_PER_VALUE_CHANNEL):
            pes = [
                base + v * PES_PER_VALUE_CHANNEL + i
                for i in range(PES_PER_VALUE_CHANNEL)
            ]
            name = f"g{g}.value{v}"
            expected = sum(groups_per_pe[pe] for pe in pes) * k * 4
            actual = len(image.value_images.get(name, b""))
            checked += 1
            if actual != expected:
                return Obligation(
                    oid, REFUTED,
                    f"value region {name} holds {actual} bytes, "
                    f"descriptors imply exactly {expected}: "
                    "interleave cursors would cross the region "
                    "boundary",
                    details={"witness": name, "actual": actual,
                             "expected": expected},
                )
        group_words = sum(
            groups_per_pe[pe]
            for pe in range(base, base + PES_PER_GROUP)
        )
        for p in range(POSITION_CHANNELS_PER_GROUP):
            name = f"g{g}.pos{p}"
            share = (
                group_words + POSITION_CHANNELS_PER_GROUP - 1 - p
            ) // POSITION_CHANNELS_PER_GROUP
            expected = share * 4
            actual = len(image.position_images.get(name, b""))
            checked += 1
            if actual != expected:
                return Obligation(
                    oid, REFUTED,
                    f"position region {name} holds {actual} bytes, "
                    f"the round-robin split implies exactly "
                    f"{expected}: unpack cursors would run past the "
                    "region",
                    details={"witness": name, "actual": actual,
                             "expected": expected},
                )
    return Obligation(
        oid, PROVED,
        f"all {checked} channel regions match their derived "
        f"footprints exactly; descriptor totals account for every "
        "group — no cursor can leave its region",
        details={"regions": checked,
                 "total_bytes": int(image.total_bytes)},
    )


# ---------------------------------------------------------------------
# obligation (e): policy consistency
# ---------------------------------------------------------------------

def check_policy_consistency(plan: Any) -> Obligation:
    """Cross-check the guard's and the verifier's rule sources.

    Three independently maintained policies must agree on every plan:

    * :meth:`ExecutionPlan.validate` (what the resilience guard runs
      before dispatch) and the ``plan.integrity`` verify rule must
      report the *same* problem set;
    * the dtype tables of :mod:`repro.exec.plan` and the analyzer's
      own policy tables must be identical;
    * the ``plan.layout`` advisory must fire exactly when the
      index-width certificate says the compact layout suffices but
      the plan is wide.

    Any disagreement means guard and verifier have drifted — a plan
    one of them passes could be dispatched while the other would have
    rejected it.
    """
    oid = "policy"
    from repro.exec import plan as plan_mod
    from repro.verify.rules import REGISTRY, VerifyContext

    mismatches: List[str] = []

    exec_index = tuple(dt.name for dt in plan_mod._INDEX_DTYPES)
    exec_value = tuple(dt.name for dt in plan_mod._VALUE_DTYPES)
    if exec_index != POLICY_INDEX_DTYPES:
        mismatches.append(
            f"index dtype policy drift: exec allows {exec_index}, "
            f"analyzer certifies {POLICY_INDEX_DTYPES}"
        )
    if exec_value != POLICY_VALUE_DTYPES:
        mismatches.append(
            f"value dtype policy drift: exec allows {exec_value}, "
            f"analyzer certifies {POLICY_VALUE_DTYPES}"
        )

    guard_problems = list(plan.validate())
    ctx = VerifyContext(plan=plan)
    integrity = REGISTRY.get("plan.integrity")
    if integrity is None:
        mismatches.append(
            "verifier has no plan.integrity rule to mirror validate()"
        )
    else:
        verifier_problems = [
            d.message for d in integrity.check(ctx)
        ]
        if verifier_problems != guard_problems:
            mismatches.append(
                "guard validate() and plan.integrity diverge: "
                f"guard={guard_problems!r}, "
                f"verifier={verifier_problems!r}"
            )

    layout = REGISTRY.get("plan.layout")
    if layout is None:
        mismatches.append("verifier has no plan.layout advisory")
    elif plan.cols.dtype.kind == "i":
        cert = certify_index_width(
            plan.shape, plan.n_slots, plan.cols.dtype
        )
        should_fire = bool(
            cert.compact_sufficient
            and plan.cols.dtype != np.dtype(np.int32)
        )
        fires = bool(list(layout.check(ctx)))
        if fires != should_fire:
            mismatches.append(
                f"plan.layout advisory fires={fires} but the "
                f"certificate implies {should_fire} "
                f"(compact_sufficient={cert.compact_sufficient})"
            )

    if mismatches:
        return Obligation(
            oid, REFUTED,
            "; ".join(mismatches),
            details={"mismatches": mismatches},
        )
    return Obligation(
        oid, PROVED,
        "guard validate(), the plan.* verify rules and the dtype "
        "policy tables agree on this plan (no guard/verifier drift)",
        details={
            "guard_problems": len(guard_problems),
            "index_dtypes": list(exec_index),
            "value_dtypes": list(exec_value),
        },
    )


# ---------------------------------------------------------------------
# obligation (f): backend capability
# ---------------------------------------------------------------------

def check_backend_capability(plan: Any,
                             backend: Optional[str] = None,
                             ) -> Obligation:
    """Prove every dispatchable op resolves inside a capable backend.

    Resolves ``backend`` (``None`` = the same auto-negotiation the
    dispatch layer runs) against the plan for each op a caller can
    request.  A dispatch that would land on a backend whose
    :meth:`~repro.exec.backends.base.ExecutionBackend.capabilities`
    exclude the plan's stored dtypes — or on an unregistered or
    unavailable engine — refutes the obligation with a witness naming
    the backend and the offending dtype/op; the proof names the
    resolved engine per op.
    """
    oid = "backend"
    from repro.exec.backends import (
        BackendCapabilityError,
        BackendUnavailable,
        resolve_backend,
    )

    resolved: Dict[str, str] = {}
    for op in ("spmv", "spmm", "spmv_batch"):
        try:
            engine = resolve_backend(backend, plan=plan, op=op)
        except (KeyError, BackendUnavailable,
                BackendCapabilityError) as exc:
            return Obligation(
                oid, REFUTED,
                f"op {op} on a {plan.cols.dtype.name}/"
                f"{plan.vals.dtype.name} plan has no capable "
                f"backend dispatch: {exc}",
                details={
                    "witness": {
                        "op": op,
                        "backend": str(backend or "auto"),
                        "index_dtype": plan.cols.dtype.name,
                        "value_dtype": plan.vals.dtype.name,
                    },
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
        resolved[op] = engine.name
    return Obligation(
        oid, PROVED,
        "every op resolves to an available backend whose declared "
        "capabilities cover the plan layout ("
        + ", ".join(f"{op}->{name}" for op, name in resolved.items())
        + ")",
        details={"resolved": resolved,
                 "requested": str(backend or "auto")},
    )


# ---------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------

def analyze_plan(plan: Any,
                 spasm: Optional[Any] = None,
                 image: Optional[Any] = None,
                 jobs_grid: Optional[Sequence[int]] = None,
                 matrix: Optional[str] = None,
                 backend: Optional[str] = None) -> AnalysisReport:
    """Run every obligation checker over one compiled plan.

    ``spasm`` ties the image descriptors to the stream's group count;
    ``image`` enables the memory-image bounds proof (skipped
    otherwise); ``backend`` pins the engine the backend-capability
    obligation quantifies over (``None`` = auto-negotiation).  Nothing
    is executed — the pass only inspects arrays, capability tables and
    symbolic bounds.
    """
    k = int(getattr(spasm, "k", 4) or 4)
    obligations = [
        check_index_width(plan),
        check_segment_coverage(plan),
        check_shard_disjointness(plan, jobs_grid=jobs_grid),
        check_image_bounds(image, k=k, spasm=spasm),
        check_policy_consistency(plan),
        check_backend_capability(plan, backend=backend),
    ]
    return AnalysisReport(obligations=obligations, matrix=matrix)


def analyze_program(program: Any,
                    with_image: bool = True,
                    jobs_grid: Optional[Sequence[int]] = None,
                    matrix: Optional[str] = None,
                    backend: Optional[str] = None) -> AnalysisReport:
    """Analyze a compiled :class:`~repro.core.framework.SpasmProgram`.

    Builds (or adopts) the program's execution plan, packs the HBM
    memory images for the selected hardware configuration when
    ``with_image`` and discharges all six obligation classes.
    """
    spasm = program.spasm
    plan = program.plan if program.plan is not None else spasm.plan()
    image = None
    if with_image:
        from repro.hw.memory_image import pack_images

        image = pack_images(spasm, program.hw_config)
    return analyze_plan(
        plan, spasm=spasm, image=image, jobs_grid=jobs_grid,
        matrix=matrix, backend=backend,
    )


def analysis_reports_to_json(
    reports: Iterable[AnalysisReport],
) -> Dict[str, Any]:
    """Aggregate per-matrix reports into one JSON payload."""
    items = [r.as_dict() for r in reports]
    return {
        "ok": all(item["ok"] for item in items),
        "matrices": len(items),
        "refuted": sum(item["refuted"] for item in items),
        "reports": items,
    }
