"""AST-based determinism/safety lint for the repro code base.

The repository's execution discipline — bitwise-deterministic kernels,
seeded randomness, one shared thread pool, validated dispatch — is
documented in ``docs/EXEC.md`` and ``docs/RESILIENCE.md`` but was only
enforced by review.  This module makes it machine-checked:

==================  ====================================================
lint id             discipline enforced
==================  ====================================================
det.unseeded-rng    no unseeded ``np.random`` / stdlib ``random`` use
                    in library code (reproducibility from seeds alone)
det.kernel-clock    no wall-clock reads inside kernel bodies (timing
                    belongs to callers; kernels stay pure).  Modules
                    under ``TIMING_MODULE_PREFIXES`` (the autotuner)
                    are exempt: measurement is their whole job, and
                    their ``spmv``-named wrappers delegate to the plan
                    engine rather than reimplementing kernel math
det.adhoc-pool      thread/process pools only via the shared-pool
                    helper ``repro.exec.plan._pool`` (bounded threads)
det.bare-except     no bare ``except:`` (swallows KeyboardInterrupt
                    and hides injected faults)
exec.implicit-dtype ``np.asarray``/``np.ascontiguousarray`` in
                    ``repro.exec`` must pin a dtype (no silent value
                    upcasts on hot paths)
exec.raw-kernel     scipy's unchecked C kernels (``csr_matvec`` et
                    al.) are reachable only from the ``csr`` backend
                    (``repro/exec/backends/csr.py``) — everything else
                    goes through ``validate()``/the guard
exec.plan-kernel    ``repro/exec/plan.py`` holds the plan model and
                    dispatch only — numpy kernel math (``np.take``,
                    ``np.bincount``, …) lives in the backends package
api.unused-public   public module-level defs must be referenced
                    somewhere in the library (dead public API drifts)
==================  ====================================================

Existing violations are burned down explicitly against the checked-in
baseline (``self_baseline.json``): ``python -m repro analyze --self``
fails only on *new* findings and reports baseline entries that have
been fixed (so the baseline shrinks monotonically).  A single line can
carry a sanctioned suppression comment ``# lint: allow(<lint-id>)``;
modules may sanction experimental public API via a module-level
``__experimental__ = [...]`` list.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: All lint identifiers, documentation order.
LINT_IDS = (
    "det.unseeded-rng",
    "det.kernel-clock",
    "det.adhoc-pool",
    "det.bare-except",
    "exec.implicit-dtype",
    "exec.raw-kernel",
    "exec.plan-kernel",
    "api.unused-public",
)

#: Function names treated as kernel bodies (per-call hot paths where a
#: clock read would taint determinism and steal cycles).
KERNEL_BODIES = frozenset({
    "spmv", "spmm", "spmv_batch", "spmv_naive", "spmm_naive",
    "_run_shard", "_reduce_block",
})

#: Modules whose *purpose* is timing: the autotuner measures candidate
#: kernels with the wall clock, and its executor exposes ``spmv``-named
#: wrappers that only delegate to the plan engine.  Kernel-clock
#: findings there would all be false positives.
TIMING_MODULE_PREFIXES = ("repro/tune/",)

#: Wall-clock reads banned inside kernel bodies.
CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time",
})

#: Pool constructors that must go through the shared helper.
POOL_CALLS = frozenset({
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.pool.ThreadPool",
    "multiprocessing.dummy.Pool",
})

#: The one sanctioned pool-creation site: (module relpath, function).
SHARED_POOL_HELPER = ("repro/exec/plan.py", "_pool")

#: The one module allowed to touch scipy's unchecked C kernels.
KERNEL_MODULE = "repro/exec/backends/csr.py"

#: Raw compiled-kernel surface (names whose mere reference outside the
#: kernel module bypasses validate()/guard).
RAW_KERNEL_NAMES = frozenset({
    "_sparsetools", "csr_matvec", "csr_matvecs", "coo_tocsr",
})

#: The plan module: data model + dispatch only, zero kernel math.
PLAN_MODULE = "repro/exec/plan.py"

#: numpy kernel-math entry points banned from the plan module (the
#: carve-out's machine-enforced boundary; structural helpers like
#: argsort/searchsorted/diff/zeros stay legal).
PLAN_KERNEL_CALLS = frozenset({
    "numpy.take", "numpy.bincount", "numpy.add.at",
    "numpy.add.reduceat", "numpy.dot", "numpy.matmul", "numpy.einsum",
})

#: numpy.random constructors that are fine *when seeded*.
_SEEDED_RNG_CTORS = frozenset({"default_rng", "RandomState",
                               "SeedSequence"})


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One violation of the coding discipline.

    ``key`` identifies the finding for baseline matching: it excludes
    the line number (so unrelated edits to a file do not churn the
    baseline) but includes the enclosing symbol and the stable detail.
    """

    lint_id: str
    path: str  # repo-relative posix path, e.g. "repro/exec/plan.py"
    line: int
    symbol: str  # enclosing def/class chain, or "<module>"
    message: str

    @property
    def key(self) -> str:
        return f"{self.lint_id}|{self.path}|{self.symbol}|{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.lint_id}] "
            f"{self.symbol}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "lint": self.lint_id,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a dotted module path, alias-aware.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``"numpy.random.default_rng"``; unresolvable shapes return None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


class _FileLinter(ast.NodeVisitor):
    """Per-file lint pass (everything except ``api.unused-public``)."""

    def __init__(self, relpath: str, source_lines: Sequence[str]):
        self.relpath = relpath
        self.lines = source_lines
        self.aliases: Dict[str, str] = {}
        self.scope: List[str] = []
        self.findings: List[LintFinding] = []
        self.in_exec = relpath.startswith("repro/exec/")

    # -- bookkeeping ---------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def _suppressed(self, line: int, lint_id: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        return (
            f"lint: allow({lint_id})" in text
            or "lint: allow(all)" in text
        )

    def _report(self, lint_id: str, node: ast.AST,
                message: str) -> None:
        line = int(getattr(node, "lineno", 0) or 0)
        if self._suppressed(line, lint_id):
            return
        self.findings.append(LintFinding(
            lint_id=lint_id,
            path=self.relpath,
            line=line,
            symbol=self.symbol,
            message=message,
        ))

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scopes --------------------------------------------------------

    def _visit_scope(self, node: Any) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node)

    # -- det.bare-except -----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "det.bare-except", node,
                "bare 'except:' swallows KeyboardInterrupt and "
                "injected faults — name the exception types",
            )
        self.generic_visit(node)

    # -- exec.raw-kernel (references, not only calls) -------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in RAW_KERNEL_NAMES
            and self.relpath != KERNEL_MODULE
        ):
            self._report(
                "exec.raw-kernel", node,
                f"raw compiled kernel '{node.attr}' referenced "
                f"outside {KERNEL_MODULE} — kernel entry must route "
                "through ExecutionPlan.validate()/the guard",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in RAW_KERNEL_NAMES
            and self.relpath != KERNEL_MODULE
            and self.aliases.get(node.id, "").startswith("scipy")
        ):
            self._report(
                "exec.raw-kernel", node,
                f"raw compiled kernel '{node.id}' imported outside "
                f"{KERNEL_MODULE} — kernel entry must route through "
                "ExecutionPlan.validate()/the guard",
            )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        if dotted is not None:
            self._check_random(node, dotted)
            self._check_clock(node, dotted)
            self._check_pool(node, dotted)
            self._check_asarray(node, dotted)
            self._check_plan_kernel(node, dotted)
        self.generic_visit(node)

    def _has_args(self, node: ast.Call) -> bool:
        return bool(node.args) or bool(node.keywords)

    def _check_random(self, node: ast.Call, dotted: str) -> None:
        if dotted.startswith("numpy.random."):
            tail = dotted.split(".", 2)[2]
            if tail == "Generator":
                return  # explicit bit generator: seeding is its job
            if tail in _SEEDED_RNG_CTORS:
                if not self._has_args(node):
                    self._report(
                        "det.unseeded-rng", node,
                        f"np.random.{tail}() without a seed — library "
                        "code must be reproducible from seeds alone",
                    )
                return
            self._report(
                "det.unseeded-rng", node,
                f"np.random.{tail} uses numpy's hidden global state — "
                "construct a seeded default_rng(seed) instead",
            )
            return
        if dotted == "random" or dotted.startswith("random."):
            tail = dotted.split(".", 1)[1] if "." in dotted else ""
            if tail == "SystemRandom":
                return  # explicitly non-deterministic by contract
            if tail == "Random" and self._has_args(node):
                return
            self._report(
                "det.unseeded-rng", node,
                f"stdlib random.{tail or 'random'} is unseeded global "
                "state — use a seeded np.random.default_rng(seed)",
            )

    def _check_clock(self, node: ast.Call, dotted: str) -> None:
        if dotted not in CLOCK_CALLS:
            return
        if self.relpath.startswith(TIMING_MODULE_PREFIXES):
            return
        if any(name in KERNEL_BODIES for name in self.scope):
            self._report(
                "det.kernel-clock", node,
                f"{dotted}() inside kernel body "
                f"'{self.scope[-1]}' — timing belongs to callers, "
                "kernels stay pure",
            )

    def _check_pool(self, node: ast.Call, dotted: str) -> None:
        if dotted not in POOL_CALLS:
            return
        helper_path, helper_fn = SHARED_POOL_HELPER
        if self.relpath == helper_path and helper_fn in self.scope:
            return
        self._report(
            "det.adhoc-pool", node,
            f"{dotted.rsplit('.', 1)[-1]} created outside the shared "
            f"pool helper {helper_path}::{helper_fn} — ad-hoc pools "
            "accumulate threads and break the one-pool invariant",
        )

    def _check_asarray(self, node: ast.Call, dotted: str) -> None:
        if not self.in_exec:
            return
        if dotted not in ("numpy.asarray", "numpy.ascontiguousarray"):
            return
        if len(node.args) >= 2:
            return  # dtype passed positionally
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        self._report(
            "exec.implicit-dtype", node,
            f"{dotted.rsplit('.', 1)[-1]} without an explicit dtype "
            "on an exec hot path — a silent upcast changes layout "
            "and bandwidth",
        )

    def _check_plan_kernel(self, node: ast.Call, dotted: str) -> None:
        if self.relpath != PLAN_MODULE:
            return
        if dotted not in PLAN_KERNEL_CALLS:
            return
        self._report(
            "exec.plan-kernel", node,
            f"kernel math '{dotted}' in the plan module — plan.py is "
            "model + dispatch only; kernels belong to a backend in "
            "repro/exec/backends/",
        )


def lint_source(source: str, relpath: str) -> List[LintFinding]:
    """Run the per-file lints over one module's source text."""
    tree = ast.parse(source, filename=relpath)
    linter = _FileLinter(relpath, source.splitlines())
    linter.visit(tree)
    return linter.findings


# ---------------------------------------------------------------------
# project-level pass: api.unused-public
# ---------------------------------------------------------------------

def _module_experimental(tree: ast.Module) -> Set[str]:
    """Names sanctioned by a module-level ``__experimental__`` list."""
    names: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "__experimental__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and (
                        isinstance(element.value, str)
                    ):
                        names.add(element.value)
    return names


def _public_defs(tree: ast.Module) -> List[Tuple[str, int]]:
    """Top-level public, undecorated defs of a module: (name, line).

    Decorated defs are exempt — decorators like ``@register`` consume
    the name at import time, so reference counting cannot see the use.
    """
    defs: List[Tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name.startswith("_") or node.decorator_list:
                continue
            defs.append((node.name, node.lineno))
    return defs


class _UsageCollector(ast.NodeVisitor):
    """Every identifier a module *reads* (names, attributes, imports)."""

    def __init__(self) -> None:
        self.used: Set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.used.add(node.attr)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.used.add(alias.name)
        self.generic_visit(node)


def _check_unused_public(
    modules: Dict[str, ast.Module],
    sources: Dict[str, Sequence[str]],
) -> List[LintFinding]:
    """Flag public defs no library module references.

    A symbol counts as used when its name is read in its own module
    (helpers composed internally) or in any *other* non-``__init__``
    module of the scanned set.  ``__init__.py`` re-exports do not
    count — a name that only appears on an export list is exactly the
    dead-API drift this lint exists to catch.
    """
    usage_by_file: Dict[str, Set[str]] = {}
    for relpath, tree in modules.items():
        collector = _UsageCollector()
        collector.visit(tree)
        usage_by_file[relpath] = collector.used

    findings: List[LintFinding] = []
    for relpath, tree in modules.items():
        if os.path.basename(relpath) == "__init__.py":
            continue
        experimental = _module_experimental(tree)
        for name, line in _public_defs(tree):
            if name in experimental:
                continue
            used = name in usage_by_file.get(relpath, set())
            if not used:
                for other, used_names in usage_by_file.items():
                    if other == relpath:
                        continue
                    if os.path.basename(other) == "__init__.py":
                        continue
                    if name in used_names:
                        used = True
                        break
            if used:
                continue
            lines = sources.get(relpath, ())
            if 1 <= line <= len(lines) and (
                "lint: allow(api.unused-public)" in lines[line - 1]
                or "lint: allow(all)" in lines[line - 1]
            ):
                continue
            findings.append(LintFinding(
                lint_id="api.unused-public",
                path=relpath,
                line=line,
                symbol=name,
                message=(
                    f"public '{name}' is referenced by no library "
                    "module — wire it in, mark it __experimental__, "
                    "or drop it"
                ),
            ))
    return findings


# ---------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------

def _relpath_for(path: str, root: str) -> str:
    rel = os.path.relpath(path, os.path.dirname(root))
    return rel.replace(os.sep, "/")


def lint_paths(paths: Sequence[str], root: str) -> List[LintFinding]:
    """Lint a set of files as one project.

    ``root`` is the package directory (e.g. ``.../src/repro``);
    relative paths in findings are anchored at its parent, so they
    read ``repro/exec/plan.py`` regardless of the checkout location.
    Files that fail to parse produce a synthetic finding instead of
    crashing the pass.
    """
    modules: Dict[str, ast.Module] = {}
    sources: Dict[str, Sequence[str]] = {}
    findings: List[LintFinding] = []
    for path in sorted(paths):
        relpath = _relpath_for(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            findings.append(LintFinding(
                lint_id="det.bare-except",
                path=relpath,
                line=int(exc.lineno or 0),
                symbol="<module>",
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        modules[relpath] = tree
        sources[relpath] = text.splitlines()
        findings.extend(lint_source(text, relpath))
    findings.extend(_check_unused_public(modules, sources))
    findings.sort(key=lambda f: (f.path, f.line, f.lint_id))
    return findings


def package_root() -> str:
    """The installed ``repro`` package directory (lint target)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def self_lint(root: Optional[str] = None) -> List[LintFinding]:
    """Lint the ``repro`` library source itself."""
    root = root or package_root()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    return lint_paths(paths, root)


# ---------------------------------------------------------------------
# baseline burndown
# ---------------------------------------------------------------------

def baseline_path() -> str:
    """Location of the checked-in self-lint baseline."""
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "self_baseline.json",
    )


def load_baseline(path: Optional[str] = None) -> Dict[str, int]:
    """Baseline finding keys -> sanctioned instance counts."""
    path = path or baseline_path()
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        str(key): int(count)
        for key, count in payload.get("findings", {}).items()
    }


def write_baseline(findings: Iterable[LintFinding],
                   path: Optional[str] = None) -> str:
    """Persist the given findings as the new baseline."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    payload = {
        "comment": (
            "Sanctioned pre-existing self-lint findings; burn these "
            "down, never add to them.  Regenerate with "
            "'python -m repro analyze --self --write-baseline'."
        ),
        "findings": dict(sorted(counts.items())),
    }
    path = path or baseline_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def diff_baseline(
    findings: Sequence[LintFinding],
    baseline: Dict[str, int],
) -> Tuple[List[LintFinding], List[str]]:
    """Split findings into (new vs baseline, burned-down keys).

    Counts matter: a second instance of a baselined finding is new.
    Returns the new findings and the baseline keys whose sanctioned
    instances are no longer present (candidates for removal).
    """
    remaining = dict(baseline)
    new: List[LintFinding] = []
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
        else:
            new.append(finding)
    fixed = [key for key, count in remaining.items() if count > 0]
    return new, sorted(fixed)
