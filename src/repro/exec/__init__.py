"""Compiled SpMV execution plans (software step ⑥ fast path).

The format's reference execution (:meth:`repro.core.format.SpasmMatrix`
``.spmv``) re-expands the stream into per-slot coordinates on every
call.  This package compiles a matrix-specific :class:`ExecutionPlan`
*once* — coordinates expanded, padding slots dropped, the stream sorted
by output row, segment boundaries precomputed — so every subsequent
SpMV is a pure gather + ``np.add.reduceat`` segment reduction, and a
multi-RHS SpMM reuses the same plan with one gather per vector block.

Plans are content-keyed (:func:`stream_digest`), cached lazily on the
matrix, optionally persisted through the pipeline's artifact cache, and
executable on a thread pool in deterministic row-block shards
(``plan.spmv(x, jobs=N)`` is bitwise identical for every ``N``).
"""

from repro.exec.plan import (
    ExecutionPlan,
    PLAN_STAGE,
    plan_checksum,
    set_shard_fault_hook,
    stream_digest,
)

__all__ = [
    "ExecutionPlan",
    "PLAN_STAGE",
    "plan_checksum",
    "set_shard_fault_hook",
    "stream_digest",
]
