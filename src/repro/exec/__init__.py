"""Compiled SpMV execution plans (software step ⑥ fast path).

The format's reference execution (:meth:`repro.core.format.SpasmMatrix`
``.spmv``) re-expands the stream into per-slot coordinates on every
call.  This package compiles a matrix-specific :class:`ExecutionPlan`
*once* — coordinates taken straight from the encoder on the fused path
(or re-expanded), padding slots dropped, the stream sorted by output
row, segment boundaries precomputed, arrays stored in the narrowest
dtype that fits — so every subsequent SpMV is a pure gather + a
sequential segment reduction, and a multi-RHS SpMM or ``spmv_batch``
reuses the same plan with one gather per vector block.

Kernels live behind the pluggable backend registry
(:mod:`repro.exec.backends`): ``gather`` is the always-available
portable reference, ``csr`` promotes scipy's compiled compact-layout
fast path, ``numba`` JITs the reduction when numba is installed — all
bitwise identical on the float64 layouts they claim, negotiated per
plan by :func:`resolve_backend` or pinned with ``backend="name"`` on
every entry point.

Plans are content-keyed (:func:`stream_digest`), cached lazily on the
matrix, optionally persisted through the pipeline's artifact cache, and
executable on a thread pool in deterministic row-block shards
(``plan.spmv(x, jobs=N)`` is bitwise identical for every ``N``).
"""

from repro.exec.backends import (
    BackendCapabilities,
    BackendCapabilityError,
    BackendUnavailable,
    ExecutionBackend,
    available_backends,
    csr_kernels_available,
    get_backend,
    numba_available,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.exec.plan import (
    ExecutionPlan,
    PLAN_STAGE,
    digest_async,
    dispatch_overhead_s,
    index_dtype_for,
    plan_checksum,
    set_shard_fault_hook,
    stream_digest,
)

__all__ = [
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendUnavailable",
    "ExecutionBackend",
    "ExecutionPlan",
    "PLAN_STAGE",
    "available_backends",
    "csr_kernels_available",
    "digest_async",
    "dispatch_overhead_s",
    "get_backend",
    "index_dtype_for",
    "numba_available",
    "plan_checksum",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "set_shard_fault_hook",
    "stream_digest",
    "unregister_backend",
]
