"""Compiled SpMV execution plans (software step ⑥ fast path).

The format's reference execution (:meth:`repro.core.format.SpasmMatrix`
``.spmv``) re-expands the stream into per-slot coordinates on every
call.  This package compiles a matrix-specific :class:`ExecutionPlan`
*once* — coordinates taken straight from the encoder on the fused path
(or re-expanded), padding slots dropped, the stream sorted by output
row, segment boundaries precomputed, arrays stored in the narrowest
dtype that fits — so every subsequent SpMV is a pure gather + a
sequential segment reduction (scipy's compiled CSR kernel for compact
int32/float64 plans, ``np.bincount`` otherwise; bitwise-identical
either way), and a multi-RHS SpMM or ``spmv_batch`` reuses the same
plan with one gather per vector block.

Plans are content-keyed (:func:`stream_digest`), cached lazily on the
matrix, optionally persisted through the pipeline's artifact cache, and
executable on a thread pool in deterministic row-block shards
(``plan.spmv(x, jobs=N)`` is bitwise identical for every ``N``).
"""

from repro.exec.plan import (
    ExecutionPlan,
    PLAN_STAGE,
    csr_kernels_available,
    digest_async,
    index_dtype_for,
    plan_checksum,
    set_shard_fault_hook,
    stream_digest,
)

__all__ = [
    "ExecutionPlan",
    "PLAN_STAGE",
    "csr_kernels_available",
    "digest_async",
    "index_dtype_for",
    "plan_checksum",
    "set_shard_fault_hook",
    "stream_digest",
]
