"""Optional numba JIT of the gather + segment-reduce loop.

numba is **not** in the base environment: the backend registers
unconditionally (so ``python -m repro backends`` can name the missing
dependency) but reports itself unavailable when the import fails, and
capability negotiation simply skips it — CI stays green without it,
and the optional-deps CI leg installs numba and runs the parity suite.

The jitted kernels accumulate each output-row segment left-to-right
(``acc = 0.0; acc += x[cols[i]] * vals[i]``) — exactly the order of
the gather reference's ``np.bincount`` reduction and of scipy's CSR
matvec — so float64 results are bitwise identical to both.  A float32
value upcasts to float64 at each multiply, again matching the numpy
semantics, so the backend claims the full dtype envelope.

Compilation is lazy (first :meth:`prepare` in a process) and typed
per layout; ``nogil=True`` lets sharded dispatch genuinely
parallelize.
"""

from __future__ import annotations

import types
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exec.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
)

_numba: Any = None
try:  # pragma: no cover - numba absent in the base environment
    import numba as _numba_module

    _numba = _numba_module
except ImportError:  # pragma: no cover - the expected default
    pass

#: Lazily jitted (spmv, spmm) kernel pair; compiled once per process.
_KERNELS: Optional[Tuple[Any, Any]] = None


def numba_available() -> bool:
    """Whether the JIT backend can compile and dispatch at all."""
    return _numba is not None


def _compiled_kernels() -> Tuple[Any, Any]:
    """Define and jit the segment-reduce kernels (once per process)."""
    global _KERNELS
    if _KERNELS is None:
        njit = _numba.njit

        @njit(nogil=True)
        def spmv_kernel(cols, vals, seg_starts, seg_rows, n_slots,
                        x, out, lo, hi):  # pragma: no cover - jitted
            n_segments = seg_rows.shape[0]
            for s in range(lo, hi):
                start = seg_starts[s]
                end = n_slots
                if s + 1 < n_segments:
                    end = seg_starts[s + 1]
                acc = 0.0
                for i in range(start, end):
                    acc += x[cols[i]] * vals[i]
                out[seg_rows[s]] = acc

        @njit(nogil=True)
        def spmm_kernel(cols, vals, seg_starts, seg_rows, n_slots,
                        xb, out, j0, lo, hi):  # pragma: no cover
            n_segments = seg_rows.shape[0]
            nb = xb.shape[1]
            for s in range(lo, hi):
                start = seg_starts[s]
                end = n_slots
                if s + 1 < n_segments:
                    end = seg_starts[s + 1]
                row = seg_rows[s]
                for j in range(nb):
                    acc = 0.0
                    for i in range(start, end):
                        acc += xb[cols[i], j] * vals[i]
                    out[row, j0 + j] = acc

        _KERNELS = (spmv_kernel, spmm_kernel)
    return _KERNELS


class NumbaBackend(ExecutionBackend):
    """JIT-compiled sequential segment reduction (optional)."""

    name = "numba"
    priority = 20

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            index_dtypes=("int32", "int64"),
            value_dtypes=("float32", "float64"),
        )

    def requires(self) -> Optional[str]:
        if numba_available():
            return None
        return "numba (pip install numba)"

    def prepare(self, plan: Any) -> Any:
        """Bind the jitted kernels to the plan's arrays.

        The state aliases the plan arrays directly (no copies), plus
        the compiled kernel pair — so the first prepare in a process
        pays the JIT compile, and byte-level fault flips into the
        bound arrays reach the kernels exactly as they reach the plan.
        """
        spmv_kernel, spmm_kernel = _compiled_kernels()
        return types.SimpleNamespace(
            cols=plan.cols,
            vals=plan.vals,
            seg_starts=plan.seg_starts,
            seg_rows=plan.seg_rows,
            n_slots=int(plan.vals.size),
            spmv_kernel=spmv_kernel,
            spmm_kernel=spmm_kernel,
        )

    def spmv(self, plan: Any, state: Any, x: np.ndarray,
             out: np.ndarray, lo: int, hi: int) -> None:
        state.spmv_kernel(
            state.cols, state.vals, state.seg_starts, state.seg_rows,
            state.n_slots, x, out, lo, hi,
        )

    def spmm(self, plan: Any, state: Any, xb: np.ndarray,
             out: np.ndarray, j0: int, j1: int, lo: int,
             hi: int) -> None:
        state.spmm_kernel(
            state.cols, state.vals, state.seg_starts, state.seg_rows,
            state.n_slots, xb, out, j0, lo, hi,
        )

    def prepared_arrays(self, state: Any) -> Dict[str, np.ndarray]:
        return {
            "cols": state.cols,
            "vals": state.vals,
            "seg_starts": state.seg_starts,
            "seg_rows": state.seg_rows,
        }
