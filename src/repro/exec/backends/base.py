"""The kernel-backend protocol of the execution layer.

An :class:`ExecutionBackend` owns the *math* of plan dispatch — the
gather/segment-reduce kernels — while
:class:`~repro.exec.plan.ExecutionPlan` keeps the data model, digests,
checksums, caching and shard orchestration.  The split mirrors the
driver lifecycle a device-resident plan needs (AlphaSparse-style
per-matrix kernels, Serpens-style buffer alloc/copy/execute): the plan
is the portable artifact, a backend is one way to execute it.

A backend declares what it can run (:meth:`capabilities`), derives an
opaque per-plan scratch state once (:meth:`prepare` — the software
analogue of a device upload), and exposes three shard-scoped entry
points (:meth:`spmv`, :meth:`spmm`, :meth:`spmv_batch`).  The plan's
dispatch wrappers own everything backend-independent: input
validation, shard grids, the thread pool and the fault hook — so every
backend inherits sharding, fault injection and the guard for free.

The non-negotiable contract (see ``docs/EXEC.md``): every backend
claiming float64 must reduce each output-row segment with sequential
left-to-right accumulation, so its results are **bitwise identical**
to the ``gather`` reference backend.  The cross-backend parity suite
and the benchmark gate enforce this for every registered backend.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: The operations a backend may claim, protocol order.
BACKEND_OPS = ("spmv", "spmm", "spmv_batch")


class BackendUnavailable(RuntimeError):
    """A backend was requested whose dependency is not importable."""


class BackendCapabilityError(ValueError):
    """A plan layout was dispatched to a backend that excludes it."""


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can execute, as declared dtype/op sets.

    ``index_dtypes``/``value_dtypes`` name the plan layouts the
    backend's kernels consume natively *with bitwise-exact float64
    semantics*; ``ops`` the entry points it implements.  Capability
    negotiation (:func:`~repro.exec.backends.registry.resolve_backend`)
    and the ``backend`` proof obligation of :mod:`repro.analyze` both
    read this declaration — a kernel must never be reached by a layout
    outside it.
    """

    index_dtypes: Tuple[str, ...]
    value_dtypes: Tuple[str, ...]
    ops: Tuple[str, ...] = BACKEND_OPS

    def supports_layout(self, index_dtype: Any,
                        value_dtype: Any) -> bool:
        """Whether a (cols, vals) dtype pair is inside the declaration."""
        return (
            np.dtype(index_dtype).name in self.index_dtypes
            and np.dtype(value_dtype).name in self.value_dtypes
        )

    def supports(self, plan: Any, op: str = "spmv") -> bool:
        """Whether a plan's stored layout and the op are both claimed."""
        return op in self.ops and self.supports_layout(
            plan.cols.dtype, plan.vals.dtype
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the ``backends --json`` CLI payload)."""
        return {
            "index_dtypes": list(self.index_dtypes),
            "value_dtypes": list(self.value_dtypes),
            "ops": list(self.ops),
        }


def segment_counts(plan: Any) -> np.ndarray:
    """Slot count of each segment (shared backend-prepare helper)."""
    return np.diff(np.append(plan.seg_starts, plan.vals.size))


def shard_slot_range(plan: Any, lo: int, hi: int) -> Tuple[int, int]:
    """The half-open slot range backing segments ``[lo, hi)``."""
    s0 = int(plan.seg_starts[lo])
    s1 = (
        int(plan.seg_starts[hi])
        if hi < plan.seg_rows.size
        else int(plan.vals.size)
    )
    return s0, s1


def shard_row_range(plan: Any, lo: int, hi: int) -> Tuple[int, int]:
    """The half-open output-row range of segments ``[lo, hi)``."""
    return int(plan.seg_rows[lo]), int(plan.seg_rows[hi - 1]) + 1


class ExecutionBackend(abc.ABC):
    """One way to execute a compiled plan (the kernel protocol).

    Subclasses set :attr:`name` (the registry key) and
    :attr:`priority` (negotiation rank: the highest-priority available
    backend whose :meth:`capabilities` cover a plan wins ``auto``
    resolution), and implement the kernel entry points.  All three
    entry points are *shard-scoped*: they reduce segments ``[lo, hi)``
    of the plan into the caller-owned output buffer, and the plan's
    dispatch layer guarantees ``lo < hi``, disjoint row ranges across
    concurrent shards, and a zero-initialized output.
    """

    #: Registry key and the name events/traces/CLI output use.
    name: str = ""
    #: Negotiation rank; higher wins when capabilities tie.
    priority: int = 0

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """The dtype/op envelope this backend's kernels claim."""

    def requires(self) -> Optional[str]:
        """Human description of a missing dependency, or ``None``.

        ``None`` means the backend is importable and dispatchable right
        now; a string names what to install (shown by
        ``python -m repro backends``).
        """
        return None

    def is_available(self) -> bool:
        """Whether the backend can be dispatched in this process."""
        return self.requires() is None

    def supports(self, plan: Any, op: str = "spmv") -> bool:
        """Whether this backend can execute ``op`` on ``plan``."""
        return self.capabilities().supports(plan, op)

    @abc.abstractmethod
    def prepare(self, plan: Any) -> Any:
        """Derive the backend's per-plan scratch state (device upload).

        Called once per (plan, backend) pair — the plan memoizes the
        returned state — so kernels never pay per-call derivation.
        The state is opaque to the plan; :meth:`prepared_arrays`
        exposes its array surface to the fault injector.
        """

    @abc.abstractmethod
    def spmv(self, plan: Any, state: Any, x: np.ndarray,
             out: np.ndarray, lo: int, hi: int) -> None:
        """Reduce segments ``[lo, hi)`` of ``y = A @ x`` into ``out``."""

    @abc.abstractmethod
    def spmm(self, plan: Any, state: Any, xb: np.ndarray,
             out: np.ndarray, j0: int, j1: int, lo: int,
             hi: int) -> None:
        """Reduce one vector block ``xb`` (columns ``[j0, j1)`` of X)
        for segments ``[lo, hi)`` into ``out[:, j0:j1]``."""

    def spmv_batch(self, plan: Any, state: Any, xb: np.ndarray,
                   out: np.ndarray, j0: int, j1: int, lo: int,
                   hi: int) -> None:
        """Batched-query kernel; defaults to the SpMM reduction.

        The plan coalesces a query batch into blocked SpMM (one
        transpose on either side), so a backend only overrides this
        when it has a genuinely different batched kernel.
        """
        self.spmm(plan, state, xb, out, j0, j1, lo, hi)

    def prepared_arrays(self, state: Any) -> Dict[str, np.ndarray]:
        """The prepared state's array surface, for fault injection.

        Every array a kernel reads at dispatch time must be reachable
        here so byte-level fault campaigns can flip backend scratch
        (not just the checksummed plan arrays).
        """
        return {}

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"priority={self.priority} available={self.is_available()}>"
        )
