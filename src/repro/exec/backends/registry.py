"""Backend registration and capability negotiation.

The registry is process-global and populated at import time with the
three shipped backends — ``gather`` (the always-available bitwise
reference), ``csr`` (scipy's compiled compact-layout fast path) and
``numba`` (the optional JIT; registered even when numba is missing so
the CLI can name the dependency, but never resolved while
unavailable).

:func:`resolve_backend` is the one dispatch policy: an explicit name
must be registered, available and capable (errors name what failed);
``None``/``"auto"`` picks the highest-priority available backend whose
:meth:`~repro.exec.backends.base.ExecutionBackend.capabilities` cover
the plan's stored layout and the requested op — which reproduces the
historical inline policy exactly (compact int32/float64 plans take the
CSR kernels, everything else the portable gather engine).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.exec.backends.base import (
    BackendCapabilityError,
    BackendUnavailable,
    ExecutionBackend,
)
from repro.exec.backends.csr import CsrBackend
from repro.exec.backends.gather import GatherBackend
from repro.exec.backends.numba_jit import NumbaBackend

__experimental__ = ["unregister_backend"]

#: Name the negotiation modes answer to (``backend=None`` == "auto").
AUTO = "auto"

_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend,
                     replace: bool = False) -> ExecutionBackend:
    """Add a backend to the process-global registry.

    Registration is by :attr:`~ExecutionBackend.name`; re-registering
    a taken name raises unless ``replace=True`` (the escape hatch for
    tests and external engines shadowing a shipped backend).
    """
    name = backend.name
    if not name or name == AUTO:
        raise ValueError(f"invalid backend name {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} already registered "
            "(pass replace=True to shadow it)"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (test/extension cleanup)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> ExecutionBackend:
    """Look up one backend by name; ``KeyError`` lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown execution backend {name!r}; registered: {known}"
        ) from None


def registered_backends() -> List[ExecutionBackend]:
    """Every registered backend, negotiation order (priority desc)."""
    return sorted(
        _REGISTRY.values(), key=lambda b: (-b.priority, b.name)
    )


def available_backends() -> List[ExecutionBackend]:
    """The registered backends dispatchable in this process."""
    return [b for b in registered_backends() if b.is_available()]


def resolve_backend(
    backend: Union[None, str, ExecutionBackend] = None,
    plan: Optional[Any] = None,
    op: str = "spmv",
) -> ExecutionBackend:
    """Pick the backend one dispatch will run on.

    ``backend`` may be ``None``/``"auto"`` (negotiate), a registered
    name (strict: :class:`KeyError` when unknown,
    :class:`~repro.exec.backends.base.BackendUnavailable` when its
    dependency is missing,
    :class:`~repro.exec.backends.base.BackendCapabilityError` when the
    plan's layout or ``op`` is outside its declared capabilities), or
    an :class:`~repro.exec.backends.base.ExecutionBackend` instance
    (passed through under the same availability/capability checks —
    how an already-resolved engine threads through nested dispatch).
    """
    if backend is None or backend == AUTO:
        for candidate in registered_backends():
            if not candidate.is_available():
                continue
            if plan is not None and not candidate.supports(plan, op):
                continue
            return candidate
        raise BackendCapabilityError(
            f"no registered backend supports op {op!r} on this plan "
            f"layout (registered: "
            f"{', '.join(b.name for b in registered_backends())})"
        )
    engine = (backend if isinstance(backend, ExecutionBackend)
              else get_backend(backend))
    if not engine.is_available():
        raise BackendUnavailable(
            f"backend {engine.name!r} is not available: requires "
            f"{engine.requires()}"
        )
    if plan is not None and not engine.supports(plan, op):
        caps = engine.capabilities()
        raise BackendCapabilityError(
            f"backend {engine.name!r} cannot execute {op} on a "
            f"{plan.cols.dtype.name}/{plan.vals.dtype.name} plan "
            f"(capabilities: index {'/'.join(caps.index_dtypes)}, "
            f"values {'/'.join(caps.value_dtypes)}, "
            f"ops {'/'.join(caps.ops)})"
        )
    return engine


register_backend(GatherBackend())
register_backend(CsrBackend())
register_backend(NumbaBackend())
