"""Pluggable kernel backends for compiled execution plans.

See :mod:`repro.exec.backends.base` for the protocol,
:mod:`repro.exec.backends.registry` for registration and capability
negotiation, and ``docs/EXEC.md`` for the architecture (including how
to add a backend).
"""

from repro.exec.backends.base import (
    BACKEND_OPS,
    BackendCapabilities,
    BackendCapabilityError,
    BackendUnavailable,
    ExecutionBackend,
)
from repro.exec.backends.csr import (
    CsrBackend,
    csr_kernels_available,
)
from repro.exec.backends.gather import GatherBackend
from repro.exec.backends.numba_jit import NumbaBackend, numba_available
from repro.exec.backends.registry import (
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)

__all__ = [
    "BACKEND_OPS",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendUnavailable",
    "CsrBackend",
    "ExecutionBackend",
    "GatherBackend",
    "NumbaBackend",
    "available_backends",
    "csr_kernels_available",
    "get_backend",
    "numba_available",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "unregister_backend",
]
