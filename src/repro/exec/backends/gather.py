"""The portable gather + segment-reduce reference backend.

Pure numpy, always available, and the **bitwise reference** every
other float64 backend is gated against: ``np.take`` the operands,
multiply in place, and reduce each output-row segment with one
``np.bincount(seg, weights)`` — a sequential left-to-right
accumulation, exactly the order of ``spmv_naive`` and of scipy's CSR
matvec (pairwise schemes like ``np.add.reduceat`` are excluded for
this reason).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

import numpy as np

from repro.exec.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    segment_counts,
    shard_row_range,
    shard_slot_range,
)


@dataclasses.dataclass(frozen=True)
class GatherState:
    """Per-plan scratch of the gather kernels.

    ``rows`` is the per-slot output row and ``cols`` the gather
    indices, both widened to ``intp`` (what ``np.take`` and fancy
    indexing want); for an int64 plan on a 64-bit host the widening
    aliases the plan arrays copy-free.
    """

    rows: np.ndarray
    cols: np.ndarray


def slot_rows(plan: Any) -> np.ndarray:
    """Per-slot output row, widened to intp for the numpy kernels."""
    return np.repeat(
        plan.seg_rows.astype(np.intp, copy=False),
        segment_counts(plan),
    )


def plan_diagonal(plan: Any) -> np.ndarray:
    """The matrix diagonal of a plan (Jacobi preconditioning).

    Lives with the gather kernels because it is one masked
    ``np.bincount`` over the slot stream — the plan module itself
    holds no kernel invocations.
    """
    n = min(plan.shape)
    rows = slot_rows(plan)
    on_diag = rows == plan.cols
    return np.bincount(
        rows[on_diag],
        weights=plan.vals[on_diag],
        minlength=n,
    )[:n]


class GatherBackend(ExecutionBackend):
    """The portable take/multiply/bincount engine (reference)."""

    name = "gather"
    priority = 10

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            index_dtypes=("int32", "int64"),
            value_dtypes=("float32", "float64"),
        )

    def prepare(self, plan: Any) -> GatherState:
        return GatherState(
            rows=slot_rows(plan),
            cols=plan.cols.astype(np.intp, copy=False),
        )

    def spmv(self, plan: Any, state: GatherState, x: np.ndarray,
             out: np.ndarray, lo: int, hi: int) -> None:
        r0, r1 = shard_row_range(plan, lo, hi)
        s0, s1 = shard_slot_range(plan, lo, hi)
        gathered = np.take(x, state.cols[s0:s1])
        gathered *= plan.vals[s0:s1]
        seg = state.rows[s0:s1]
        if r0:
            seg = seg - r0
        out[r0:r1] = np.bincount(
            seg, weights=gathered, minlength=r1 - r0
        )

    def spmm(self, plan: Any, state: GatherState, xb: np.ndarray,
             out: np.ndarray, j0: int, j1: int, lo: int,
             hi: int) -> None:
        nb = j1 - j0
        r0, r1 = shard_row_range(plan, lo, hi)
        s0, s1 = shard_slot_range(plan, lo, hi)
        gathered = xb[state.cols[s0:s1]]
        gathered *= plan.vals[s0:s1, None]
        seg = state.rows[s0:s1]
        if r0:
            seg = seg - r0
        block = np.empty((r1 - r0, nb), dtype=np.float64)
        for j in range(nb):
            block[:, j] = np.bincount(
                seg, weights=gathered[:, j], minlength=r1 - r0
            )
        out[r0:r1, j0:j1] = block

    def prepared_arrays(self,
                        state: GatherState) -> Dict[str, np.ndarray]:
        return {"rows": state.rows, "cols": state.cols}
