"""The scipy compact-layout fast path, as a first-class backend.

scipy's compiled CSR kernels accumulate rows sequentially — the same
order as ``np.bincount`` — and consume int32 index arrays natively,
which is exactly the compact plan layout.  This module is the **only**
place allowed to touch ``scipy.sparse._sparsetools`` (machine-enforced
by the ``exec.raw-kernel`` self-lint): everything else reaches the
kernels through the backend protocol, behind ``validate()``/the guard.

The capability envelope is deliberately narrow: ``csr_matvec``
requires ``x`` and the value array to share a dtype, so a float32
value plan (float64 ``x``) can never match the gather reference
bitwise through it — the backend claims int32/float64 only, and
capability negotiation routes every other layout elsewhere.

The module also hosts :func:`counting_sort_rows`, the build-time
``coo_tocsr`` counting sort the plan builder prefers over the portable
stable argsort (same plan bit for bit, one O(slots + rows) C pass).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exec.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    segment_counts,
    shard_row_range,
)

#: scipy's compiled CSR kernels, or ``None`` when scipy is absent.
#: Optional by design: every dispatch and build path falls back to the
#: portable gather backend / stable argsort.
_csr_kernels: Any = None
try:  # pragma: no cover - exercised implicitly by every kernel test
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    if hasattr(_scipy_sparsetools, "csr_matvec") and hasattr(
        _scipy_sparsetools, "csr_matvecs"
    ):
        _csr_kernels = _scipy_sparsetools
except ImportError:  # pragma: no cover - scipy is optional
    pass


def csr_kernels_available() -> bool:
    """Whether the compiled CSR fast path can be dispatched at all."""
    return _csr_kernels is not None


def counting_sort_rows(
    shape: Tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    index_dt: np.dtype,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Stable row sort of a slot stream via ``coo_tocsr``; None if
    ineligible.

    One O(n_slots + nrows) C pass that emits the permuted cols/vals
    (vals as float64) and the segment pointers directly — it walks the
    input in order, so ties keep stream order exactly like
    ``np.argsort(kind="stable")`` and the resulting plan is bitwise
    identical to the portable path (asserted by the kernel-parity
    tests).  Returns ``(cols, vals_f64, seg_starts, seg_rows)``.

    Ineligible — returning ``None`` so the caller takes the portable
    argsort — when scipy is absent, the stream is empty, the shape is
    pathologically tall for the dense O(nrows) row pointer, or any row
    is out of range: ``coo_tocsr`` scatters through the row pointer
    UNCHECKED, and a corrupted stream being recompiled (as the fault
    campaign does) must reach ``validate()``, not write out of bounds.
    """
    n_slots = int(rows.size)
    if (
        _csr_kernels is None
        or not hasattr(_csr_kernels, "coo_tocsr")
        or n_slots == 0
        or shape[0] > 8 * n_slots + 1024
    ):
        return None
    # Two sequential reductions: negligible next to the sort.
    rmin = int(rows.min())
    rmax = int(rows.max())
    if rmin < 0 or rmax >= shape[0]:
        return None
    src_rows = np.ascontiguousarray(rows, dtype=index_dt)
    src_cols = np.ascontiguousarray(cols, dtype=index_dt)
    src_vals = np.ascontiguousarray(vals, dtype=np.float64)
    # coo_tocsr fully initializes the row pointer (SciPy's own tocsr
    # passes np.empty here too).
    indptr = np.empty(shape[0] + 1, dtype=index_dt)
    out_cols = np.empty(n_slots, dtype=index_dt)
    sorted_vals = np.empty(n_slots, dtype=np.float64)
    _csr_kernels.coo_tocsr(
        shape[0], shape[1], n_slots,
        src_rows, src_cols, src_vals,
        indptr, out_cols, sorted_vals,
    )
    nz_rows = np.flatnonzero(indptr[1:] != indptr[:-1])
    seg_rows = np.ascontiguousarray(nz_rows, dtype=index_dt)
    seg_starts = np.ascontiguousarray(indptr[nz_rows], dtype=index_dt)
    return out_cols, sorted_vals, seg_starts, seg_rows


class CsrBackend(ExecutionBackend):
    """scipy's compiled CSR matvec/matvecs over the compact layout."""

    name = "csr"
    priority = 30

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            index_dtypes=("int32",),
            value_dtypes=("float64",),
        )

    def requires(self) -> Optional[str]:
        if csr_kernels_available():
            return None
        return "scipy (sparse C kernels)"

    def prepare(self, plan: Any) -> np.ndarray:
        """Densify the segment pointers into a CSR row pointer."""
        indptr = np.zeros(plan.shape[0] + 1, dtype=np.int32)
        indptr[plan.seg_rows.astype(np.intp) + 1] = (
            segment_counts(plan).astype(np.int32)
        )
        np.cumsum(indptr, out=indptr)
        return indptr

    def spmv(self, plan: Any, state: np.ndarray, x: np.ndarray,
             out: np.ndarray, lo: int, hi: int) -> None:
        r0, r1 = shard_row_range(plan, lo, hi)
        # The compiled kernel consumes the int32 arrays in place and
        # accumulates each row sequentially — the exact order of the
        # portable gather kernel.
        _csr_kernels.csr_matvec(
            r1 - r0, plan.shape[1], state[r0:], plan.cols,
            plan.vals, x, out[r0:r1],
        )

    def spmm(self, plan: Any, state: np.ndarray, xb: np.ndarray,
             out: np.ndarray, j0: int, j1: int, lo: int,
             hi: int) -> None:
        nb = j1 - j0
        r0, r1 = shard_row_range(plan, lo, hi)
        block = np.zeros((r1 - r0, nb), dtype=np.float64)
        _csr_kernels.csr_matvecs(
            r1 - r0, plan.shape[1], nb, state[r0:], plan.cols,
            plan.vals, xb.reshape(-1), block.reshape(-1),
        )
        out[r0:r1, j0:j1] = block

    def prepared_arrays(self,
                        state: np.ndarray) -> Dict[str, np.ndarray]:
        return {"indptr": state}
