"""Matrix-specific compiled execution plans for SPASM SpMV/SpMM.

An :class:`ExecutionPlan` is the software analogue of AlphaSparse's
matrix-specific kernel artifact: everything about executing ``y = A @ x``
that depends only on the *matrix* is computed once at build time, so the
per-call work is the minimum the memory system allows.

Build time (once per matrix)
    * expand every stored slot to ``(row, col, value)`` coordinates —
      or, on the fused path, take the coordinates straight from the
      encoder's intermediates (:func:`repro.core.format.encode_spasm`
      with ``build_plan=True``) without re-expanding the stream,
    * drop padding slots (``value == 0`` contributes nothing),
    * stable-sort the stream by output row,
    * record the segment boundary of each non-empty output row,
    * store the arrays in the narrowest layout that can address them
      (int32 indices whenever shape and slot count fit; float64 values
      unless ``precision="float32"`` is requested explicitly).

Call time (every SpMV)
    * resolve a kernel backend (:mod:`repro.exec.backends`):
      ``backend=None`` negotiates the highest-priority registered
      backend whose declared capabilities cover the plan's layout —
      compact int32/float64 plans take scipy's compiled CSR kernels
      (``csr``), everything else the portable take/bincount engine
      (``gather``), with the optional ``numba`` JIT in between when
      installed,
    * dispatch each shard through that backend's segment-reduce
      kernel.  Every backend accumulates each output-row segment
      *sequentially* left-to-right, so every engine/dtype combination
      (and the ``spmv_naive`` oracle) produces bitwise-identical
      float64 output.

This module holds **no kernel math at all** (machine-enforced by the
``exec.plan-kernel`` self-lint): only the plan data model — digests,
checksums, caching, validation — and the backend-independent dispatch
layer (shard grids, the shared pool, the fault hook).

Sharding splits the *segments* (output rows) into contiguous blocks of
roughly equal slot count; shards write disjoint rows, and each segment
is reduced by the same sequential sum regardless of the shard grid, so
``spmv(x, jobs=N)`` is bitwise identical for every ``N``.  With
``jobs=None`` a slots-per-worker heuristic decides whether threads can
pay for themselves at all (they rarely can below several million slots
— the kernels are GIL-bound).  See ``docs/EXEC.md`` for the full
layout and semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
import types
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exec.backends.base import ExecutionBackend
from repro.exec.backends.csr import counting_sort_rows
from repro.exec.backends.registry import resolve_backend

#: Stage name used for persisted plan artifacts (``plan-<key>.npz``
#: entries in a :class:`repro.pipeline.cache.ArtifactCache`).
PLAN_STAGE = "plan"

#: A shard below this many slots is not worth a thread dispatch; small
#: plans collapse to the serial path no matter what ``jobs`` says.
MIN_SHARD_SLOTS = 16384

#: Slots per worker the ``jobs=None`` auto heuristic demands before it
#: engages threads at all.  The gather/reduce kernels hold the GIL for
#: most of their runtime, so a second thread only pays for itself on
#: very large plans; below the threshold auto mode stays serial (forced
#: ``jobs=N`` still shards, for tests and fault campaigns).
AUTO_SHARD_SLOTS = 4 << 20

#: Upper bound on ``slots x vectors`` elements materialized by one SpMM
#: gather block (8M float64 elements = 64 MiB scratch).
SPMM_BLOCK_ELEMS = 1 << 23

#: How many times larger than one measured pool dispatch a shard's
#: estimated kernel time must be before the auto heuristic adds a
#: worker.  BENCH_exec.json shows a mis-sized shard grid losing 3.7x
#: to the serial path; the margin keeps the dispatch tax a rounding
#: error when threads do engage.
SHARD_OVERHEAD_MARGIN = 8.0

#: Rough serial kernel throughput (seconds per slot) used to estimate
#: a shard's kernel time against the dispatch overhead.  Calibrated
#: from the csr backend in BENCH_exec.json (~0.07 ms / 45k slots); it
#: only needs to be right to an order of magnitude — the margin above
#: absorbs the rest.
EST_SECONDS_PER_SLOT = 2e-9

#: Index dtypes a plan may store (narrow whenever it fits).
_INDEX_DTYPES = (np.dtype(np.int32), np.dtype(np.int64))

#: Value dtypes a plan may store (float32 only behind explicit opt-in).
_VALUE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_INT32_MAX = int(np.iinfo(np.int32).max)

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()

#: Measured round-trip of one no-op pool dispatch (seconds); ``None``
#: until first measured.  Tests may overwrite it to pin the auto-shard
#: clamp's input.
_DISPATCH_OVERHEAD: Optional[float] = None

#: Fault-injection hook consulted at the start of every shard dispatch
#: (``hook(lo, hi)``); ``None`` on the clean path.  Installed by
#: :func:`repro.resilience.faults.worker_fault` to kill/stall/delay
#: shard workers deterministically — a single global read per shard,
#: free when unset.
_SHARD_HOOK: Optional[Callable[[int, int], None]] = None


def set_shard_fault_hook(
    hook: Optional[Callable[[int, int], None]],
) -> Optional[Callable[[int, int], None]]:
    """Install (or clear) the shard fault hook; returns the previous."""
    global _SHARD_HOOK
    previous = _SHARD_HOOK
    _SHARD_HOOK = hook
    return previous


def index_dtype_for(shape: Tuple[int, int], n_slots: int) -> np.dtype:
    """The narrowest supported index dtype able to address a plan.

    int32 covers shape extents *and* the slot count (``seg_starts``
    holds offsets up to ``n_slots``); anything larger falls back to
    int64.
    """
    hi = max(int(shape[0]), int(shape[1]), int(n_slots))
    return np.dtype(np.int32 if hi <= _INT32_MAX else np.int64)


def plan_checksum(cols: np.ndarray, vals: np.ndarray,
                  seg_starts: np.ndarray, seg_rows: np.ndarray,
                  shape: Tuple[int, int]) -> str:
    """SHA-256 over a plan's executable arrays *and their dtypes*.

    Computed once at build time and carried on the plan; re-computing
    it (:meth:`ExecutionPlan.validate`) catches any post-build
    corruption of the gather indices, values or segment pointers.  The
    dtype tags make an int32 plan and an int64 plan of the same stream
    distinct artifacts — a cache load can never silently up- or
    down-cast without tripping validation.
    """
    h = hashlib.sha256()
    h.update(
        repr(
            (
                (int(shape[0]), int(shape[1])),
                (cols.dtype.str, vals.dtype.str,
                 seg_starts.dtype.str, seg_rows.dtype.str),
            )
        ).encode()
    )
    for arr in (cols, vals, seg_starts, seg_rows):
        # Hash through the buffer protocol — same bytes as tobytes()
        # for a C-contiguous array, without materializing a copy.  The
        # checksum must hash each array in its own dtype.
        h.update(np.ascontiguousarray(arr).data)  # lint: allow(exec.implicit-dtype)
    return h.hexdigest()


def _join_shards(futures: Sequence["Future[None]"]) -> None:
    """Collect shard futures, containing worker failures.

    On the first worker exception (or a ``KeyboardInterrupt`` landing
    mid-wait) every not-yet-started shard is cancelled and every
    running one is drained, so no orphaned shard keeps writing into the
    output buffer after the call unwinds; the original exception is
    then re-raised unchanged.
    """
    try:
        for future in futures:
            future.result()
    except BaseException:
        for future in futures:
            future.cancel()
        for future in futures:
            if not future.cancelled():
                try:
                    future.result()
                except BaseException:
                    pass  # secondary failures: the first one wins
        raise


def _pool() -> ThreadPoolExecutor:
    """The single shared executor for shards and background hashing.

    One pool for the whole process — created lazily, reused across
    every call and every plan, bounded by the core count — so repeated
    sharded calls never accumulate threads.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=max(4, min(32, os.cpu_count() or 1)),
                thread_name_prefix="spasm-exec",
            )
        return _POOL


def dispatch_overhead_s(refresh: bool = False) -> float:
    """Measured cost of one shard dispatch on the shared pool.

    Times a handful of no-op submit/result round-trips and keeps the
    median — a per-process constant the auto-shard heuristic uses to
    clamp its worker count (a shard whose kernel time cannot dominate
    this figure is not worth a thread).  Measured lazily once; pass
    ``refresh=True`` to re-measure.
    """
    global _DISPATCH_OVERHEAD
    if _DISPATCH_OVERHEAD is None or refresh:
        pool = _pool()
        samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            pool.submit(_noop_dispatch).result()
            samples.append(time.perf_counter() - t0)
        _DISPATCH_OVERHEAD = float(sorted(samples)[len(samples) // 2])
    return _DISPATCH_OVERHEAD


def _noop_dispatch() -> None:
    """The empty task :func:`dispatch_overhead_s` times."""
    return None


def stream_digest(spasm: Any) -> str:
    """Content digest of an encoded stream (plan cache key).

    Covers everything the plan depends on: logical shape, pattern size,
    tile size, the portfolio's template masks, the tile directory and
    the full position/value payload.  Two matrices with equal digests
    build identical plans; mutating any stored array re-keys the plan.
    """
    h = hashlib.sha256()
    h.update(
        repr(
            (
                tuple(spasm.shape),
                int(spasm.k),
                int(spasm.tile_size),
                tuple(int(m) for m in spasm.portfolio.masks),
            )
        ).encode()
    )
    for arr in (
        spasm.tile_rows,
        spasm.tile_cols,
        spasm.tile_ptr,
        spasm.words,
        spasm.values,
    ):
        # Buffer-protocol hashing: identical digest to tobytes(),
        # minus a full copy of the payload per array; dtype-preserving
        # by design (the digest covers the stored layout).
        h.update(np.ascontiguousarray(arr).data)  # lint: allow(exec.implicit-dtype)
    return h.hexdigest()


def _stream_snapshot(spasm: Any) -> Any:
    """Copy exactly what :func:`stream_digest` hashes, nothing else.

    The copies pin the stream's *build-time* content: the digest of a
    deferred/concurrent hash must describe the stream the plan was
    built from, not whatever the live arrays hold when the hash
    finally runs — otherwise an in-place mutation after a fused encode
    could re-key the stale plan to the mutated stream and lazy-plan
    adoption would serve wrong results.  A sequential memcpy of the
    payload is several times cheaper than the hash itself.
    """
    return types.SimpleNamespace(
        shape=tuple(spasm.shape),
        k=int(spasm.k),
        tile_size=int(spasm.tile_size),
        portfolio=types.SimpleNamespace(
            masks=tuple(int(m) for m in spasm.portfolio.masks)
        ),
        tile_rows=np.array(spasm.tile_rows),
        tile_cols=np.array(spasm.tile_cols),
        tile_ptr=np.array(spasm.tile_ptr),
        words=np.array(spasm.words),
        values=np.array(spasm.values),
    )


class _DeferredDigest:
    """A digest that computes on first ``result()`` call.

    The single-core stand-in for a pool future: submitting the hash
    eagerly on one CPU just steals cycles from the build it is supposed
    to overlap with, so the hash waits until someone actually needs the
    identity (the :attr:`ExecutionPlan.digest` property memoizes the
    resolution, so it runs at most once per plan).
    """

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: Any) -> None:
        self._snapshot = snapshot

    def result(self) -> str:
        return stream_digest(self._snapshot)


def digest_async(spasm: Any) -> Any:
    """Take :func:`stream_digest` off the build's critical path.

    The hash runs over a build-time snapshot of the stream
    (:func:`_stream_snapshot`), so the plan's identity is immune to
    later in-place mutation of the live arrays no matter when the hash
    lands.  With more than one core it is submitted to the shared pool
    — ``hashlib`` releases the GIL while hashing large buffers, so it
    genuinely overlaps plan construction.  On a single core it is
    deferred instead (:class:`_DeferredDigest`): concurrency would
    only interleave with the build, so the hash runs lazily at the
    first digest access.  Either way the returned handle answers
    ``result()`` and is accepted anywhere a digest string is
    (``ExecutionPlan.from_slots``).
    """
    snapshot = _stream_snapshot(spasm)
    if (os.cpu_count() or 1) > 1:
        return _pool().submit(stream_digest, snapshot)
    return _DeferredDigest(snapshot)


def _plan_cache_key(digest: str, index: Optional[str],
                    precision: Optional[str]) -> str:
    """Artifact key for one (stream, layout) combination.

    The default layout (auto-narrowed indices, float64 values) keeps
    the bare digest key; explicit layout overrides hash the layout into
    the key so differently-typed plans of one stream coexist in the
    cache instead of thrashing a single entry.
    """
    if index is None and precision is None:
        return digest[:40]
    tag = hashlib.sha256(f"{digest}|{index}|{precision}".encode())
    return tag.hexdigest()[:40]


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """A compiled gather/segment-reduce schedule for one matrix.

    Attributes
    ----------
    shape:
        Logical matrix shape ``(nrows, ncols)``.
    cols:
        Column index of every non-padding slot, stream order stably
        sorted by output row (the gather indices into ``x``); int32
        whenever the matrix and slot count fit, else int64.
    vals:
        Matching slot values (float64, or float32 behind the explicit
        ``precision=`` opt-in).
    seg_starts:
        Offset into ``cols``/``vals`` where each output-row segment
        begins (``n_segments`` entries, strictly increasing); same
        dtype as ``cols``.
    seg_rows:
        Output row of each segment (strictly increasing, all within
        the matrix — padding never carries values past the edge); same
        dtype as ``cols``.
    digest:
        :func:`stream_digest` of the source stream; the cache key and
        the invalidation token of lazily cached plans.  The fused
        builder hands the field a pending ``Future`` so hashing never
        sits on the build's critical path — the :attr:`digest`
        property resolves (and memoizes) it on first access, which is
        always before the value is needed: cache stores, verify rules
        and lazy-plan adoption all go through the property, while
        ``spmv`` itself never touches it.
    source_nnz:
        Non-zero count of the source matrix (throughput accounting).
    checksum:
        :func:`plan_checksum` of the executable arrays at build time;
        :meth:`validate` recomputes and compares it to detect any
        later corruption before the arrays are dispatched.
    build_ms:
        Wall-clock milliseconds the build took (fused or compiled);
        informational only — excluded from equality and the checksum.
    """

    shape: Tuple[int, int]
    cols: np.ndarray
    vals: np.ndarray
    seg_starts: np.ndarray
    seg_rows: np.ndarray
    _digest: Union[str, "Future[str]"] = dataclasses.field(repr=False)
    source_nnz: int
    checksum: str = ""
    build_ms: float = dataclasses.field(default=0.0, compare=False)
    #: Lazily derived kernel state (per-slot rows, widened gather
    #: indices, the CSR indptr).  Never persisted, never checksummed,
    #: rebuilt from the four executable arrays on first use.
    _scratch: Dict[str, Any] = dataclasses.field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    @property
    def digest(self) -> str:
        """The stream digest, resolving a deferred hash on first use.

        The fused builder leaves the digest computing on the shared
        pool instead of blocking the build on it; whoever needs the
        identity first (cache store, verify, lazy-plan adoption) pays
        the residual wait here, after which the resolved string is
        memoized in place.
        """
        value = self._digest
        if not isinstance(value, str):
            value = value.result()
            object.__setattr__(self, "_digest", value)
        return value

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, spasm: Any, cache: Any = None,
              digest: Optional[str] = None,
              index: Optional[str] = None,
              precision: Optional[str] = None) -> "ExecutionPlan":
        """Compile a plan for a :class:`~repro.core.format.SpasmMatrix`.

        ``cache`` is an optional
        :class:`~repro.pipeline.cache.ArtifactCache`: the built plan is
        persisted as a ``plan-<key>.npz`` artifact keyed on the stream
        digest (and the layout, when overridden), and a later build of
        an identical stream — in this or any other process — is served
        from disk.  ``index``/``precision`` force a specific array
        layout (``"int32"``/``"int64"``, ``"float32"``/``"float64"``);
        by default indices auto-narrow and values stay float64.
        """
        if digest is None:
            digest = stream_digest(spasm)
        key = _plan_cache_key(digest, index, precision)
        if cache is not None:
            cached = cls._from_cache(spasm, cache, digest, key=key,
                                     index=index, precision=precision)
            if cached is not None:
                return cached
        # The compile re-reads the stored arrays after the digest did.
        # A concurrent in-place mutation landing between the two reads
        # (a fault striking a live serving stream) would label a
        # corrupted plan with the pristine digest — defeating every
        # digest-based integrity check downstream and, worse,
        # persisting the poisoned plan under the pristine cache key.
        # Re-digest after the compile consumed the arrays and rebuild
        # until the stream was stable across the whole build window.
        for _ in range(4):
            plan = cls._compile(spasm, digest, index=index,
                                precision=precision)
            confirmed = stream_digest(spasm)
            if confirmed == digest:
                break
            digest = confirmed
            key = _plan_cache_key(digest, index, precision)
        else:
            raise RuntimeError(
                "encoded stream kept mutating while the plan was "
                "being compiled; refusing to label the result"
            )
        if cache is not None:
            plan._to_cache(cache, key=key)
        return plan

    @classmethod
    def from_slots(cls, shape: Tuple[int, int], rows: np.ndarray,
                   cols: np.ndarray, vals: np.ndarray,
                   digest: Union[str, "Future[str]"], source_nnz: int,
                   index: Optional[str] = None,
                   precision: Optional[str] = None,
                   started: Optional[float] = None,
                   compacted: bool = False) -> "ExecutionPlan":
        """Finalize a plan from flat per-slot coordinates.

        ``rows``/``cols``/``vals`` are equal-length arrays in stream
        order with padding slots still present (``vals == 0``); this is
        the shared tail of both builders — :meth:`_compile` feeds it
        the re-expanded stream, the fused encode path feeds it the
        encoder's own intermediates.  ``digest`` may be a ``Future``
        (left pending — the :attr:`digest` property resolves it on
        first access, so hashing never blocks the build) and
        ``started`` back-dates :attr:`build_ms` to include the
        caller's coordinate work.  ``compacted=True`` promises the
        caller already dropped every padding slot (``vals`` holds no
        zeros, in stream order) and skips the keep scan; the result is
        bitwise identical either way because the keep mask uses the
        same ``!= 0`` criterion and preserves stream order.
        """
        t0 = time.perf_counter() if started is None else started
        shape = (int(shape[0]), int(shape[1]))
        # Index dtype selection happens below via index_dtype_for;
        # forcing one here would copy compact int32 encoder output.
        rows = np.asarray(rows).reshape(-1)  # lint: allow(exec.implicit-dtype)
        cols = np.asarray(cols).reshape(-1)  # lint: allow(exec.implicit-dtype)
        vals = np.asarray(vals, dtype=np.float64).reshape(-1)
        if compacted:
            kept_rows, kept_cols, kept_vals = rows, cols, vals
        else:
            keep = np.flatnonzero(vals != 0.0)
            kept_rows = rows[keep]
            kept_cols = cols[keep]
            kept_vals = vals[keep]
        n_slots = int(kept_rows.size)

        index_dt = (np.dtype(index) if index is not None
                    else index_dtype_for(shape, n_slots))
        if index_dt not in _INDEX_DTYPES:
            raise ValueError(f"unsupported index dtype {index_dt}")
        if index_dt == np.dtype(np.int32) and max(
            shape[0], shape[1], n_slots
        ) > _INT32_MAX:
            raise ValueError(
                f"int32 indices cannot address a "
                f"{shape[0]}x{shape[1]} plan with {n_slots} slots"
            )
        value_dt = (np.dtype(precision) if precision is not None
                    else np.dtype(np.float64))
        if value_dt not in _VALUE_DTYPES:
            raise ValueError(f"unsupported value dtype {value_dt}")

        # The row sort is a stable counting sort when SciPy is around:
        # ``coo_tocsr`` (:func:`repro.exec.backends.csr
        # .counting_sort_rows`) is one O(n_slots + nrows) C pass that
        # emits the permuted cols/vals and the segment pointers
        # directly — it walks the input in order, so ties keep stream
        # order exactly like ``np.argsort(kind="stable")`` and the
        # resulting plan is bitwise identical to the portable path
        # below (asserted by the kernel-parity tests).  The helper
        # declines (returns None) when ineligible — scipy absent,
        # pathologically tall shapes, or out-of-range rows (a
        # corrupted stream being recompiled must reach validate(),
        # not scatter out of bounds) — and the stable argsort runs.
        counted = (
            counting_sort_rows(shape, kept_rows, kept_cols,
                               kept_vals, index_dt)
            if n_slots > 0 else None
        )
        if n_slots == 0:
            out_cols = np.zeros(0, dtype=index_dt)
            out_vals = np.zeros(0, dtype=value_dt)
            seg_starts = np.zeros(0, dtype=index_dt)
            seg_rows = np.zeros(0, dtype=index_dt)
        elif counted is not None:
            out_cols, sorted_vals, seg_starts, seg_rows = counted
            out_vals = np.ascontiguousarray(sorted_vals,
                                            dtype=value_dt)
        else:
            order = np.argsort(kept_rows, kind="stable")
            srows = kept_rows[order]
            out_cols = np.ascontiguousarray(kept_cols[order],
                                            dtype=index_dt)
            out_vals = np.ascontiguousarray(kept_vals[order],
                                            dtype=value_dt)
            bounds = np.flatnonzero(srows[1:] != srows[:-1]) + 1
            starts64 = np.concatenate(
                (np.zeros(1, dtype=np.int64), bounds)
            )
            seg_rows = np.ascontiguousarray(srows[starts64],
                                            dtype=index_dt)
            seg_starts = np.ascontiguousarray(starts64, dtype=index_dt)
        checksum = plan_checksum(out_cols, out_vals, seg_starts,
                                 seg_rows, shape)
        return cls(
            shape=shape,
            cols=out_cols,
            vals=out_vals,
            seg_starts=seg_starts,
            seg_rows=seg_rows,
            _digest=digest,
            source_nnz=int(source_nnz),
            checksum=checksum,
            build_ms=(time.perf_counter() - t0) * 1e3,
        )

    @classmethod
    def _compile(cls, spasm: Any, digest: str,
                 index: Optional[str] = None,
                 precision: Optional[str] = None) -> "ExecutionPlan":
        """The standalone build: re-expand the stream, then finalize."""
        started = time.perf_counter()
        rows, cols, vals = spasm._expand()
        return cls.from_slots(
            spasm.shape, rows, cols, vals,
            digest=digest,
            source_nnz=int(spasm.source_nnz),
            index=index,
            precision=precision,
            started=started,
        )

    @classmethod
    def _from_cache(cls, spasm: Any, cache: Any, digest: str,
                    key: Optional[str] = None,
                    index: Optional[str] = None,
                    precision: Optional[str] = None,
                    ) -> Optional["ExecutionPlan"]:
        """Load a persisted plan; ``None`` on miss or a stale entry.

        Arrays are adopted **as stored** — no dtype conversion on the
        hit path, so an int32/float32 plan round-trips bit-for-bit and
        copy-free.  A stale or internally inconsistent entry (the byte
        payload is intact — :class:`~repro.pipeline.cache.ArtifactCache`
        already checksums that — but its content no longer matches this
        stream, its own recorded plan checksum, or the layout this
        build would produce) is quarantined before the miss is
        reported, so it is never consulted again.
        """
        if key is None:
            key = _plan_cache_key(digest, index, precision)
        entry = cache.load(PLAN_STAGE, key)
        if entry is None:
            return None
        reason = None
        plan = None
        try:
            cols = entry.arrays["cols"]
            vals = entry.arrays["vals"]
            seg_starts = entry.arrays["seg_starts"]
            seg_rows = entry.arrays["seg_rows"]
            meta_digest = str(entry.meta["digest"])
            shape = (int(entry.meta["nrows"]), int(entry.meta["ncols"]))
            source_nnz = int(entry.meta["source_nnz"])
            checksum = str(entry.meta.get("plan_checksum", ""))
        except (KeyError, TypeError, ValueError) as exc:
            reason = f"malformed plan entry: {exc}"
        else:
            expected_index = (np.dtype(index) if index is not None
                              else index_dtype_for(shape, cols.size))
            expected_value = (np.dtype(precision)
                              if precision is not None
                              else np.dtype(np.float64))
            if meta_digest != digest:
                reason = "stale plan entry: stream digest mismatch"
            elif cols.dtype != expected_index or (
                vals.dtype != expected_value
            ):
                reason = (
                    f"plan entry layout mismatch: stored "
                    f"{cols.dtype.name}/{vals.dtype.name}, build wants "
                    f"{expected_index.name}/{expected_value.name}"
                )
            else:
                plan = cls(
                    shape=shape,
                    cols=cols,
                    vals=vals,
                    seg_starts=seg_starts,
                    seg_rows=seg_rows,
                    _digest=digest,
                    source_nnz=source_nnz,
                    checksum=checksum,
                )
                problems = plan.validate()
                if shape != (int(spasm.shape[0]),
                             int(spasm.shape[1])):
                    problems.append("shape mismatch vs stream")
                if problems:
                    reason = "; ".join(problems)
                    plan = None
        if plan is None and hasattr(cache, "quarantine"):
            cache.quarantine(PLAN_STAGE, key,
                             reason=reason or "invalid plan entry")
        return plan

    def _to_cache(self, cache: Any, key: Optional[str] = None) -> None:
        """Persist this plan as a content-addressed artifact."""
        cache.store(
            PLAN_STAGE,
            self.digest[:40] if key is None else key,
            {
                "cols": self.cols,
                "vals": self.vals,
                "seg_starts": self.seg_starts,
                "seg_rows": self.seg_rows,
            },
            {
                "digest": self.digest,
                "nrows": self.shape[0],
                "ncols": self.shape[1],
                "source_nnz": self.source_nnz,
                "plan_checksum": self.checksum,
            },
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Non-padding slots the plan streams per SpMV."""
        return int(self.vals.size)

    @property
    def n_segments(self) -> int:
        """Non-empty output rows (segment count)."""
        return int(self.seg_rows.size)

    @property
    def nbytes(self) -> int:
        """Resident size of the plan arrays."""
        return int(
            self.cols.nbytes
            + self.vals.nbytes
            + self.seg_starts.nbytes
            + self.seg_rows.nbytes
        )

    def release_scratch(self) -> None:
        """Drop prepared backend scratch and runtime pins.

        The serving layer's plan registry calls this when it evicts a
        plan under memory pressure: backend ``prepare`` state (dense
        row pointers, widened index copies) can rival the plan arrays
        themselves, and a plan about to go cold must not keep it
        resident.  The next dispatch transparently re-prepares.
        """
        self._scratch.clear()

    def describe(self) -> str:
        """One-line summary for traces and CLI output."""
        return (
            f"plan[{self.shape[0]}x{self.shape[1]}]: "
            f"{self.n_slots} slots over {self.n_segments} row segments, "
            f"{self.cols.dtype.name}/{self.vals.dtype.name} layout, "
            f"{self.nbytes / 1e6:.1f} MB"
        )

    def validate(self) -> List[str]:
        """Integrity check of the executable arrays; problems found.

        Verifies the structural invariants every kernel dispatch relies
        on (shape agreement, a supported and self-consistent dtype
        layout, strictly increasing segment pointers and rows, in-range
        gather indices, finite values) and then recomputes
        :func:`plan_checksum` against the build-time :attr:`checksum`.
        An empty list means the plan is safe to dispatch; any entry
        names the violated invariant.  Used by the resilience guard
        before execution and surfaced as ``plan.*`` diagnostics by
        :func:`repro.verify.verify_plan`.
        """
        problems: List[str] = []
        if self.cols.dtype not in _INDEX_DTYPES:
            problems.append(
                f"unsupported index dtype {self.cols.dtype.name}"
            )
        elif (
            self.seg_starts.dtype != self.cols.dtype
            or self.seg_rows.dtype != self.cols.dtype
        ):
            problems.append(
                f"mixed index dtypes: cols={self.cols.dtype.name}, "
                f"seg_starts={self.seg_starts.dtype.name}, "
                f"seg_rows={self.seg_rows.dtype.name}"
            )
        elif self.cols.dtype == np.dtype(np.int32) and max(
            self.shape[0], self.shape[1], self.n_slots
        ) > _INT32_MAX:
            problems.append(
                "int32 index layout cannot address this plan"
            )
        if self.vals.dtype not in _VALUE_DTYPES:
            problems.append(
                f"unsupported value dtype {self.vals.dtype.name}"
            )
        if self.cols.ndim != 1 or self.cols.shape != self.vals.shape:
            problems.append(
                f"cols/vals shape mismatch: {self.cols.shape} vs "
                f"{self.vals.shape}"
            )
        if self.seg_starts.shape != self.seg_rows.shape:
            problems.append(
                f"seg_starts/seg_rows shape mismatch: "
                f"{self.seg_starts.shape} vs {self.seg_rows.shape}"
            )
        if not problems and self.n_segments:
            seg_starts = self.seg_starts
            seg_rows = self.seg_rows
            if int(seg_starts[0]) != 0:
                problems.append(
                    f"first segment starts at {int(seg_starts[0])}, "
                    "expected 0"
                )
            if np.any(np.diff(seg_starts) <= 0):
                problems.append(
                    "segment pointers not strictly increasing"
                )
            if int(seg_starts[-1]) >= max(self.n_slots, 1):
                problems.append(
                    f"last segment starts at {int(seg_starts[-1])}, "
                    f"past the {self.n_slots}-slot stream"
                )
            if np.any(np.diff(seg_rows) <= 0):
                problems.append("segment rows not strictly increasing")
            if seg_rows.size and (
                int(seg_rows[0]) < 0
                or int(seg_rows[-1]) >= self.shape[0]
            ):
                problems.append(
                    f"segment rows outside [0, {self.shape[0]})"
                )
        if not problems and self.n_segments == 0 and self.n_slots:
            problems.append(
                f"{self.n_slots} slots but no segments to reduce them"
            )
        if not problems and self.n_slots:
            if int(self.cols.min()) < 0 or (
                int(self.cols.max()) >= self.shape[1]
            ):
                problems.append(
                    f"gather indices outside [0, {self.shape[1]})"
                )
            if not np.all(np.isfinite(self.vals)):
                problems.append("non-finite plan values")
        if not problems and self.checksum:
            recomputed = plan_checksum(
                self.cols, self.vals, self.seg_starts, self.seg_rows,
                self.shape,
            )
            if recomputed != self.checksum:
                problems.append(
                    "plan checksum mismatch (arrays corrupted after "
                    "build)"
                )
        return problems

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (for Jacobi-style preconditioning)."""
        from repro.exec.backends.gather import plan_diagonal

        return plan_diagonal(self)

    # ------------------------------------------------------------------
    # backend state (lazy, never persisted)
    # ------------------------------------------------------------------

    def _backend_state(self, engine: ExecutionBackend) -> Any:
        """The engine's prepared scratch for this plan, memoized.

        One :meth:`~repro.exec.backends.base.ExecutionBackend.prepare`
        per (plan, backend) pair — the software analogue of a device
        upload — cached in the plan's non-persisted scratch dict, so
        repeated dispatch through the same backend pays nothing.
        """
        key = f"backend::{engine.name}"
        state = self._scratch.get(key)
        if state is None:
            state = engine.prepare(self)
            self._scratch[key] = state
        return state

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def _auto_jobs(self) -> int:
        """Worker count the slots-per-worker heuristic picks.

        A persisted :class:`~repro.tune.TunedConfig` override
        (:meth:`override_auto_jobs`) wins outright; otherwise the
        static slots-per-worker threshold proposes a count which is
        then clamped by the *measured* per-dispatch overhead — a shard
        only earns a thread when its estimated kernel time dominates
        one pool round-trip by :data:`SHARD_OVERHEAD_MARGIN`.
        """
        tuned = self._scratch.get("tuned_jobs")
        if tuned is not None:
            return max(1, min(int(tuned), os.cpu_count() or 1))
        jobs = self.n_slots // AUTO_SHARD_SLOTS
        if jobs < 2:
            return 1
        jobs = min(jobs, os.cpu_count() or 1)
        overhead = dispatch_overhead_s()
        while jobs > 1:
            shard_s = (self.n_slots / jobs) * EST_SECONDS_PER_SLOT
            if shard_s >= SHARD_OVERHEAD_MARGIN * overhead:
                break
            jobs -= 1
        return jobs

    def override_auto_jobs(self, jobs: Optional[int]) -> None:
        """Pin the ``jobs=None`` auto heuristic to a tuned worker count.

        Installed when a persisted :class:`~repro.tune.TunedConfig` is
        applied to this plan's matrix: the measured-best shard count
        overrides the static slots-per-worker threshold for every
        subsequent auto-mode dispatch.  ``None`` clears the override.
        Explicit ``jobs=N`` arguments still win (tests and fault
        campaigns force shard grids), and every count remains bitwise
        identical.  Stored in the non-persisted scratch dict, so cached
        plan artifacts never bake in a machine-specific count.
        """
        if jobs is None:
            self._scratch.pop("tuned_jobs", None)
            return
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._scratch["tuned_jobs"] = int(jobs)

    def shard_bounds(self, jobs: int) -> List[Tuple[int, int]]:
        """Contiguous segment ranges of roughly equal slot count.

        The grid is a pure function of the plan and ``jobs``; tiny
        plans collapse to one shard so thread dispatch never costs more
        than it saves.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if (
            jobs == 1
            or self.n_segments < 2
            or self.n_slots < 2 * MIN_SHARD_SLOTS
        ):
            return [(0, self.n_segments)]
        targets = (
            self.n_slots * np.arange(1, jobs, dtype=np.float64) / jobs
        )
        cuts = np.searchsorted(self.seg_starts, targets)
        bounds = np.unique(
            np.concatenate(([0], cuts, [self.n_segments]))
        )
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             backend: Union[None, str, ExecutionBackend] = None,
             ) -> np.ndarray:
        """Execute ``y = A @ x + y`` through the compiled plan.

        ``jobs=None`` lets the slots-per-worker heuristic decide
        (serial below ~8M slots); ``jobs=N`` forces N row-block shards
        on the shared thread pool.  ``backend`` names the kernel engine
        (``None``/``"auto"`` negotiates the best capable one).  Every
        choice is bitwise identical: shards write disjoint rows and
        every float64-claiming backend accumulates each segment
        left-to-right in the same order.
        """
        engine = resolve_backend(backend, plan=self, op="spmv")
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {self.shape}"
            )
        out = np.zeros(self.shape[0], dtype=np.float64)
        state = self._backend_state(engine)
        jobs_eff = self._auto_jobs() if jobs is None else int(jobs)
        shards = self.shard_bounds(jobs_eff)
        if len(shards) == 1:
            self._run_shard(engine, state, out, x, 0,
                            self.n_segments)
        else:
            pool = _pool()
            _join_shards([
                pool.submit(
                    self._run_shard, engine, state, out, x, lo, hi
                )
                for lo, hi in shards
            ])
        if y is not None:
            y = np.asarray(y, dtype=np.float64)
            if y.shape != out.shape:
                raise ValueError(
                    f"y of shape {y.shape} incompatible with {self.shape}"
                )
            out += y
        return out

    def _run_shard(self, engine: ExecutionBackend, state: Any,
                   out: np.ndarray, x: np.ndarray, lo: int,
                   hi: int) -> None:
        """Dispatch segments ``[lo, hi)`` to the engine's spmv kernel.

        The backend-independent shard envelope: the fault hook fires
        for every backend, empty shards return before any kernel runs,
        and the engine sees only ``lo < hi``.
        """
        hook = _SHARD_HOOK
        if hook is not None:
            hook(lo, hi)
        if lo >= hi:
            return
        engine.spmv(self, state, x, out, lo, hi)

    def spmm(self, x_block: np.ndarray,
             y_block: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             block_size: Optional[int] = None,
             backend: Union[None, str, ExecutionBackend] = None,
             ) -> np.ndarray:
        """Execute ``Y = A @ X + Y`` reusing the plan across vectors.

        Vectors are processed in blocks (bounding scratch memory at
        roughly ``SPMM_BLOCK_ELEMS`` float64 elements); within each
        block the segment reduction is sharded exactly like
        :meth:`spmv`, and every column accumulates in the same order as
        a standalone :meth:`spmv` of that vector, so the result is
        independent of ``jobs`` and bitwise column-equal to the
        unbatched engine.
        """
        engine = resolve_backend(backend, plan=self, op="spmm")
        x_block = np.ascontiguousarray(x_block, dtype=np.float64)
        if x_block.ndim != 2 or x_block.shape[0] != self.shape[1]:
            raise ValueError(
                f"X of shape {x_block.shape} incompatible with "
                f"{self.shape}"
            )
        out = self._blocked_dispatch(
            engine, engine.spmm, x_block, jobs, block_size
        )
        if y_block is not None:
            y_block = np.asarray(y_block, dtype=np.float64)
            if y_block.shape != out.shape:
                raise ValueError(
                    f"Y of shape {y_block.shape} incompatible with "
                    f"{out.shape}"
                )
            out += y_block
        return out

    def _blocked_dispatch(self, engine: ExecutionBackend,
                          kernel: Any, x_block: np.ndarray,
                          jobs: Optional[int],
                          block_size: Optional[int]) -> np.ndarray:
        """Shared block/shard driver for the multi-vector entry points.

        Slices the ``(ncols, n_vectors)`` input into contiguous vector
        blocks, shards each block on the segment grid, and routes every
        (block, shard) pair through ``kernel`` — the resolved engine's
        bound ``spmm`` or ``spmv_batch`` method — via the
        :meth:`_reduce_block` envelope (fault hook, empty-shard skip).
        """
        n_vectors = x_block.shape[1]
        out = np.zeros((self.shape[0], n_vectors), dtype=np.float64)
        state = self._backend_state(engine)
        if block_size is None:
            block_size = max(
                1, SPMM_BLOCK_ELEMS // max(self.n_slots, 1)
            )
        block_size = max(1, min(int(block_size), max(n_vectors, 1)))
        jobs_eff = self._auto_jobs() if jobs is None else int(jobs)
        shards = self.shard_bounds(jobs_eff)
        for j0 in range(0, n_vectors, block_size):
            j1 = min(j0 + block_size, n_vectors)
            # Contiguity only: x_block's dtype was pinned at entry.
            xb = np.ascontiguousarray(x_block[:, j0:j1])  # lint: allow(exec.implicit-dtype)
            if len(shards) == 1:
                self._reduce_block(kernel, state, out, xb, j0, j1,
                                   0, self.n_segments)
            else:
                pool = _pool()
                _join_shards([
                    pool.submit(
                        self._reduce_block, kernel, state, out, xb,
                        j0, j1, lo, hi
                    )
                    for lo, hi in shards
                ])
        return out

    def _reduce_block(self, kernel: Any, state: Any, out: np.ndarray,
                      xb: np.ndarray, j0: int, j1: int, lo: int,
                      hi: int) -> None:
        """Dispatch one (vector block, shard) pair to ``kernel``.

        ``xb`` is the contiguous ``(ncols, j1 - j0)`` slice of the
        input block.  Same backend-independent envelope as
        :meth:`_run_shard`: fault hook first, empty shards never reach
        a kernel.
        """
        hook = _SHARD_HOOK
        if hook is not None:
            hook(lo, hi)
        if lo >= hi:
            return
        kernel(self, state, xb, out, j0, j1, lo, hi)

    def spmv_batch(self, xs: np.ndarray,
                   jobs: Optional[int] = None,
                   block_size: Optional[int] = None,
                   backend: Union[None, str, ExecutionBackend] = None,
                   ) -> np.ndarray:
        """Batched SpMV: ``(n_queries, ncols)`` → ``(n_queries, nrows)``.

        Coalesces the queries into the blocked multi-vector kernel so
        the plan arrays are streamed once per vector block instead of
        once per query; row ``i`` of the result is bitwise identical to
        ``spmv(xs[i])``.  Backends may override
        :meth:`~repro.exec.backends.base.ExecutionBackend.spmv_batch`
        with a batch-specialized kernel (the default delegates to their
        ``spmm``).
        """
        engine = resolve_backend(backend, plan=self, op="spmv_batch")
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2 or xs.shape[1] != self.shape[1]:
            raise ValueError(
                f"query batch of shape {xs.shape} incompatible with "
                f"{self.shape}"
            )
        if xs.shape[0] == 0:
            return np.zeros((0, self.shape[0]), dtype=np.float64)
        # Contiguity only on both transposes: the dispatch pins the
        # value dtype itself and yt already carries the output dtype.
        yt = self._blocked_dispatch(
            engine, engine.spmv_batch,
            np.ascontiguousarray(xs.T),  # lint: allow(exec.implicit-dtype)
            jobs, block_size,
        )
        return np.ascontiguousarray(yt.T)  # lint: allow(exec.implicit-dtype)
