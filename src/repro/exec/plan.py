"""Matrix-specific compiled execution plans for SPASM SpMV/SpMM.

An :class:`ExecutionPlan` is the software analogue of AlphaSparse's
matrix-specific kernel artifact: everything about executing ``y = A @ x``
that depends only on the *matrix* is computed once at build time, so the
per-call work is the minimum the memory system allows.

Build time (once per matrix)
    * expand every stored slot to ``(row, col, value)`` coordinates,
    * drop padding slots (``value == 0`` contributes nothing),
    * stable-sort the stream by output row,
    * record the segment boundary of each non-empty output row.

Call time (every SpMV)
    * gather ``vals * x[cols]`` (one sequential read of the plan, one
      indexed read of ``x``),
    * ``np.add.reduceat`` over the precomputed segment boundaries,
    * scatter the per-row sums into ``y`` (each row written exactly
      once — no atomic/unbuffered accumulation anywhere).

Sharding splits the *segments* (output rows) into contiguous blocks of
roughly equal slot count; shards write disjoint rows, and each segment
is reduced by the same ``reduceat`` call sequence regardless of the
shard grid, so ``spmv(x, jobs=N)`` is bitwise identical for every
``N``.  See ``docs/EXEC.md`` for the full layout and semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Stage name used for persisted plan artifacts (``plan-<key>.npz``
#: entries in a :class:`repro.pipeline.cache.ArtifactCache`).
PLAN_STAGE = "plan"

#: A shard below this many slots is not worth a thread dispatch; small
#: plans collapse to the serial path no matter what ``jobs`` says.
MIN_SHARD_SLOTS = 16384

#: Upper bound on ``slots x vectors`` elements materialized by one SpMM
#: gather block (8M float64 elements = 64 MiB scratch).
SPMM_BLOCK_ELEMS = 1 << 23

_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOL_LOCK = threading.Lock()

#: Fault-injection hook consulted at the start of every shard dispatch
#: (``hook(lo, hi)``); ``None`` on the clean path.  Installed by
#: :func:`repro.resilience.faults.worker_fault` to kill/stall/delay
#: shard workers deterministically — a single global read per shard,
#: free when unset.
_SHARD_HOOK: Optional[Callable[[int, int], None]] = None


def set_shard_fault_hook(
    hook: Optional[Callable[[int, int], None]],
) -> Optional[Callable[[int, int], None]]:
    """Install (or clear) the shard fault hook; returns the previous."""
    global _SHARD_HOOK
    previous = _SHARD_HOOK
    _SHARD_HOOK = hook
    return previous


def plan_checksum(cols: np.ndarray, vals: np.ndarray,
                  seg_starts: np.ndarray, seg_rows: np.ndarray,
                  shape: Tuple[int, int]) -> str:
    """SHA-256 over a plan's executable arrays.

    Computed once at build time and carried on the plan; re-computing
    it (:meth:`ExecutionPlan.validate`) catches any post-build
    corruption of the gather indices, values or segment pointers.
    """
    h = hashlib.sha256()
    h.update(repr((int(shape[0]), int(shape[1]))).encode())
    for arr in (cols, vals, seg_starts, seg_rows):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _join_shards(futures: Sequence["Future[None]"]) -> None:
    """Collect shard futures, containing worker failures.

    On the first worker exception (or a ``KeyboardInterrupt`` landing
    mid-wait) every not-yet-started shard is cancelled and every
    running one is drained, so no orphaned shard keeps writing into the
    output buffer after the call unwinds; the original exception is
    then re-raised unchanged.
    """
    try:
        for future in futures:
            future.result()
    except BaseException:
        for future in futures:
            future.cancel()
        for future in futures:
            if not future.cancelled():
                try:
                    future.result()
                except BaseException:
                    pass  # secondary failures: the first one wins
        raise


def _pool(workers: int) -> ThreadPoolExecutor:
    """A shared thread pool per worker count (created once, reused)."""
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"spasm-exec-{workers}",
            )
            _POOLS[workers] = pool
        return pool


def stream_digest(spasm: Any) -> str:
    """Content digest of an encoded stream (plan cache key).

    Covers everything the plan depends on: logical shape, pattern size,
    tile size, the portfolio's template masks, the tile directory and
    the full position/value payload.  Two matrices with equal digests
    build identical plans; mutating any stored array re-keys the plan.
    """
    h = hashlib.sha256()
    h.update(
        repr(
            (
                tuple(spasm.shape),
                int(spasm.k),
                int(spasm.tile_size),
                tuple(int(m) for m in spasm.portfolio.masks),
            )
        ).encode()
    )
    for arr in (
        spasm.tile_rows,
        spasm.tile_cols,
        spasm.tile_ptr,
        spasm.words,
        spasm.values,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """A compiled gather/segment-reduce schedule for one matrix.

    Attributes
    ----------
    shape:
        Logical matrix shape ``(nrows, ncols)``.
    cols:
        Column index of every non-padding slot, stream order stably
        sorted by output row (the gather indices into ``x``).
    vals:
        Matching slot values (the gather multiplicands).
    seg_starts:
        Offset into ``cols``/``vals`` where each output-row segment
        begins (``n_segments`` entries, strictly increasing).
    seg_rows:
        Output row of each segment (strictly increasing, all within
        the matrix — padding never carries values past the edge).
    digest:
        :func:`stream_digest` of the source stream; the cache key and
        the invalidation token of lazily cached plans.
    source_nnz:
        Non-zero count of the source matrix (throughput accounting).
    checksum:
        :func:`plan_checksum` of the executable arrays at build time;
        :meth:`validate` recomputes and compares it to detect any
        later corruption before the arrays are dispatched.
    """

    shape: Tuple[int, int]
    cols: np.ndarray
    vals: np.ndarray
    seg_starts: np.ndarray
    seg_rows: np.ndarray
    digest: str
    source_nnz: int
    checksum: str = ""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, spasm: Any, cache: Any = None,
              digest: Optional[str] = None) -> "ExecutionPlan":
        """Compile a plan for a :class:`~repro.core.format.SpasmMatrix`.

        ``cache`` is an optional
        :class:`~repro.pipeline.cache.ArtifactCache`: the built plan is
        persisted as a ``plan-<key>.npz`` artifact keyed on the stream
        digest, and a later build of an identical stream — in this or
        any other process — is served from disk.
        """
        if digest is None:
            digest = stream_digest(spasm)
        if cache is not None:
            cached = cls._from_cache(spasm, cache, digest)
            if cached is not None:
                return cached
        plan = cls._compile(spasm, digest)
        if cache is not None:
            plan._to_cache(cache)
        return plan

    @classmethod
    def _compile(cls, spasm: Any, digest: str) -> "ExecutionPlan":
        """The actual build: expand, drop padding, sort, segment."""
        rows, cols, vals = spasm._expand()
        keep = vals != 0.0
        rows = rows[keep]
        cols = cols[keep]
        vals = vals[keep]
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        seg_rows, seg_starts = np.unique(rows, return_index=True)
        shape = (int(spasm.shape[0]), int(spasm.shape[1]))
        cols = np.ascontiguousarray(cols[order], dtype=np.int64)
        vals = np.ascontiguousarray(vals[order], dtype=np.float64)
        seg_starts = seg_starts.astype(np.int64)
        seg_rows = seg_rows.astype(np.int64)
        return cls(
            shape=shape,
            cols=cols,
            vals=vals,
            seg_starts=seg_starts,
            seg_rows=seg_rows,
            digest=digest,
            source_nnz=int(spasm.source_nnz),
            checksum=plan_checksum(cols, vals, seg_starts, seg_rows,
                                   shape),
        )

    @classmethod
    def _from_cache(cls, spasm: Any, cache: Any,
                    digest: str) -> Optional["ExecutionPlan"]:
        """Load a persisted plan; ``None`` on miss or a stale entry.

        A stale or internally inconsistent entry (the byte payload is
        intact — :class:`~repro.pipeline.cache.ArtifactCache` already
        checksums that — but its content no longer matches this stream
        or its own recorded plan checksum) is quarantined before the
        miss is reported, so it is never consulted again.
        """
        entry = cache.load(PLAN_STAGE, digest[:40])
        if entry is None:
            return None
        reason = None
        plan = None
        try:
            cols = entry.arrays["cols"].astype(np.int64)
            vals = entry.arrays["vals"].astype(np.float64)
            seg_starts = entry.arrays["seg_starts"].astype(np.int64)
            seg_rows = entry.arrays["seg_rows"].astype(np.int64)
            meta_digest = str(entry.meta["digest"])
            shape = (int(entry.meta["nrows"]), int(entry.meta["ncols"]))
            source_nnz = int(entry.meta["source_nnz"])
            checksum = str(entry.meta.get("plan_checksum", ""))
        except (KeyError, TypeError, ValueError) as exc:
            reason = f"malformed plan entry: {exc}"
        else:
            if meta_digest != digest:
                reason = "stale plan entry: stream digest mismatch"
            else:
                plan = cls(
                    shape=shape,
                    cols=cols,
                    vals=vals,
                    seg_starts=seg_starts,
                    seg_rows=seg_rows,
                    digest=digest,
                    source_nnz=source_nnz,
                    checksum=checksum,
                )
                problems = plan.validate()
                if shape != (int(spasm.shape[0]),
                             int(spasm.shape[1])):
                    problems.append("shape mismatch vs stream")
                if problems:
                    reason = "; ".join(problems)
                    plan = None
        if plan is None and hasattr(cache, "quarantine"):
            cache.quarantine(PLAN_STAGE, digest[:40],
                             reason=reason or "invalid plan entry")
        return plan

    def _to_cache(self, cache: Any) -> None:
        """Persist this plan as a content-addressed artifact."""
        cache.store(
            PLAN_STAGE,
            self.digest[:40],
            {
                "cols": self.cols,
                "vals": self.vals,
                "seg_starts": self.seg_starts,
                "seg_rows": self.seg_rows,
            },
            {
                "digest": self.digest,
                "nrows": self.shape[0],
                "ncols": self.shape[1],
                "source_nnz": self.source_nnz,
                "plan_checksum": self.checksum,
            },
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Non-padding slots the plan streams per SpMV."""
        return int(self.vals.size)

    @property
    def n_segments(self) -> int:
        """Non-empty output rows (segment count)."""
        return int(self.seg_rows.size)

    @property
    def nbytes(self) -> int:
        """Resident size of the plan arrays."""
        return int(
            self.cols.nbytes
            + self.vals.nbytes
            + self.seg_starts.nbytes
            + self.seg_rows.nbytes
        )

    def describe(self) -> str:
        """One-line summary for traces and CLI output."""
        return (
            f"plan[{self.shape[0]}x{self.shape[1]}]: "
            f"{self.n_slots} slots over {self.n_segments} row segments, "
            f"{self.nbytes / 1e6:.1f} MB"
        )

    def validate(self) -> List[str]:
        """Integrity check of the executable arrays; problems found.

        Verifies the structural invariants every kernel dispatch relies
        on (shape agreement, strictly increasing segment pointers and
        rows, in-range gather indices, finite values) and then recomputes
        :func:`plan_checksum` against the build-time :attr:`checksum`.
        An empty list means the plan is safe to dispatch; any entry
        names the violated invariant.  Used by the resilience guard
        before execution and surfaced as ``plan.*`` diagnostics by
        :func:`repro.verify.verify_plan`.
        """
        problems: List[str] = []
        if self.cols.ndim != 1 or self.cols.shape != self.vals.shape:
            problems.append(
                f"cols/vals shape mismatch: {self.cols.shape} vs "
                f"{self.vals.shape}"
            )
        if self.seg_starts.shape != self.seg_rows.shape:
            problems.append(
                f"seg_starts/seg_rows shape mismatch: "
                f"{self.seg_starts.shape} vs {self.seg_rows.shape}"
            )
        if not problems and self.n_segments:
            seg_starts = self.seg_starts
            seg_rows = self.seg_rows
            if int(seg_starts[0]) != 0:
                problems.append(
                    f"first segment starts at {int(seg_starts[0])}, "
                    "expected 0"
                )
            if np.any(np.diff(seg_starts) <= 0):
                problems.append(
                    "segment pointers not strictly increasing"
                )
            if int(seg_starts[-1]) >= max(self.n_slots, 1):
                problems.append(
                    f"last segment starts at {int(seg_starts[-1])}, "
                    f"past the {self.n_slots}-slot stream"
                )
            if np.any(np.diff(seg_rows) <= 0):
                problems.append("segment rows not strictly increasing")
            if seg_rows.size and (
                int(seg_rows[0]) < 0
                or int(seg_rows[-1]) >= self.shape[0]
            ):
                problems.append(
                    f"segment rows outside [0, {self.shape[0]})"
                )
        if not problems and self.n_segments == 0 and self.n_slots:
            problems.append(
                f"{self.n_slots} slots but no segments to reduce them"
            )
        if not problems and self.n_slots:
            if int(self.cols.min()) < 0 or (
                int(self.cols.max()) >= self.shape[1]
            ):
                problems.append(
                    f"gather indices outside [0, {self.shape[1]})"
                )
            if not np.all(np.isfinite(self.vals)):
                problems.append("non-finite plan values")
        if not problems and self.checksum:
            recomputed = plan_checksum(
                self.cols, self.vals, self.seg_starts, self.seg_rows,
                self.shape,
            )
            if recomputed != self.checksum:
                problems.append(
                    "plan checksum mismatch (arrays corrupted after "
                    "build)"
                )
        return problems

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (for Jacobi-style preconditioning)."""
        n = min(self.shape)
        rows = np.repeat(self.seg_rows, self._seg_counts())
        on_diag = rows == self.cols
        return np.bincount(
            rows[on_diag],
            weights=self.vals[on_diag],
            minlength=n,
        )[:n]

    def _seg_counts(self) -> np.ndarray:
        """Slot count of each segment."""
        return np.diff(np.append(self.seg_starts, self.n_slots))

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def shard_bounds(self, jobs: int) -> List[Tuple[int, int]]:
        """Contiguous segment ranges of roughly equal slot count.

        The grid is a pure function of the plan and ``jobs``; tiny
        plans collapse to one shard so thread dispatch never costs more
        than it saves.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if (
            jobs == 1
            or self.n_segments < 2
            or self.n_slots < 2 * MIN_SHARD_SLOTS
        ):
            return [(0, self.n_segments)]
        targets = (
            self.n_slots * np.arange(1, jobs, dtype=np.float64) / jobs
        )
        cuts = np.searchsorted(self.seg_starts, targets)
        bounds = np.unique(
            np.concatenate(([0], cuts, [self.n_segments]))
        )
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None,
             jobs: int = 1) -> np.ndarray:
        """Execute ``y = A @ x + y`` through the compiled plan.

        ``jobs > 1`` runs the row-block shards on a shared thread pool;
        the result is bitwise identical to ``jobs=1`` (shards write
        disjoint rows and every segment reduces through the exact same
        ``reduceat`` sequence).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {self.shape}"
            )
        out = np.zeros(self.shape[0], dtype=np.float64)
        shards = self.shard_bounds(jobs)
        if len(shards) == 1:
            self._run_shard(out, x, 0, self.n_segments)
        else:
            _join_shards([
                _pool(len(shards)).submit(self._run_shard, out, x, lo, hi)
                for lo, hi in shards
            ])
        if y is not None:
            y = np.asarray(y, dtype=np.float64)
            if y.shape != out.shape:
                raise ValueError(
                    f"y of shape {y.shape} incompatible with {self.shape}"
                )
            out += y
        return out

    def _run_shard(self, out: np.ndarray, x: np.ndarray, lo: int,
                   hi: int) -> None:
        """Gather + segment-reduce segments ``[lo, hi)`` into ``out``."""
        hook = _SHARD_HOOK
        if hook is not None:
            hook(lo, hi)
        if lo >= hi:
            return
        s0 = int(self.seg_starts[lo])
        s1 = (
            int(self.seg_starts[hi])
            if hi < self.n_segments
            else self.n_slots
        )
        gathered = np.take(x, self.cols[s0:s1])
        gathered *= self.vals[s0:s1]
        out[self.seg_rows[lo:hi]] = np.add.reduceat(
            gathered, self.seg_starts[lo:hi] - s0
        )

    def spmm(self, x_block: np.ndarray,
             y_block: Optional[np.ndarray] = None, jobs: int = 1,
             block_size: Optional[int] = None) -> np.ndarray:
        """Execute ``Y = A @ X + Y`` reusing the plan across vectors.

        Vectors are processed in blocks (one gather per block bounds
        the scratch memory at roughly ``SPMM_BLOCK_ELEMS`` float64
        elements); within each block the segment reduction is sharded
        exactly like :meth:`spmv`, so the result is independent of
        ``jobs``.
        """
        x_block = np.asarray(x_block, dtype=np.float64)
        if x_block.ndim != 2 or x_block.shape[0] != self.shape[1]:
            raise ValueError(
                f"X of shape {x_block.shape} incompatible with "
                f"{self.shape}"
            )
        n_vectors = x_block.shape[1]
        out = np.zeros((self.shape[0], n_vectors), dtype=np.float64)
        if block_size is None:
            block_size = max(
                1, SPMM_BLOCK_ELEMS // max(self.n_slots, 1)
            )
        block_size = max(1, min(int(block_size), max(n_vectors, 1)))
        shards = self.shard_bounds(jobs)
        for j0 in range(0, n_vectors, block_size):
            j1 = min(j0 + block_size, n_vectors)
            # One gather per vector block: the A-stream amortization.
            gathered = x_block[self.cols, j0:j1]
            gathered *= self.vals[:, None]
            if len(shards) == 1:
                self._reduce_block(out, gathered, j0, j1, 0,
                                   self.n_segments)
            else:
                _join_shards([
                    _pool(len(shards)).submit(
                        self._reduce_block, out, gathered, j0, j1, lo, hi
                    )
                    for lo, hi in shards
                ])
        if y_block is not None:
            y_block = np.asarray(y_block, dtype=np.float64)
            if y_block.shape != out.shape:
                raise ValueError(
                    f"Y of shape {y_block.shape} incompatible with "
                    f"{(self.shape[0], n_vectors)}"
                )
            out += y_block
        return out

    def _reduce_block(self, out: np.ndarray, gathered: np.ndarray,
                      j0: int, j1: int, lo: int, hi: int) -> None:
        """Segment-reduce one gathered vector block for shard [lo, hi)."""
        hook = _SHARD_HOOK
        if hook is not None:
            hook(lo, hi)
        if lo >= hi:
            return
        s0 = int(self.seg_starts[lo])
        s1 = (
            int(self.seg_starts[hi])
            if hi < self.n_segments
            else self.n_slots
        )
        out[self.seg_rows[lo:hi], j0:j1] = np.add.reduceat(
            gathered[s0:s1], self.seg_starts[lo:hi] - s0, axis=0
        )
