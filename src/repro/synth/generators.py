"""Structured sparse matrix generators.

Each generator targets one of the *local pattern* families the paper
identifies (row-wise, column-wise, diagonal, anti-diagonal, block, DBB)
or one of the *global compositions* of Table II (block diagonal, banded,
staircase, imbalanced dense rows, scale-free graphs).  All generators are
deterministic given their ``seed`` and return deduplicated
:class:`~repro.matrix.coo.COOMatrix` instances.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.coo import COOMatrix


def _values(rng, count: int) -> np.ndarray:
    """Non-zero values: uniform in [0.5, 1.5] so nothing cancels."""
    return rng.uniform(0.5, 1.5, size=count)


def _coo(rows, cols, rng, shape) -> COOMatrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    return COOMatrix(rows, cols, _values(rng, rows.size), shape)


def block_diagonal(n_blocks: int, block_size: int, fill: float = 1.0,
                   seed: int = 0) -> COOMatrix:
    """Dense (or DBB) blocks along the diagonal.

    ``fill == 1`` reproduces raefsky3's signature: a single fully dense
    4x4 local pattern accounting for 100% of the occurrences.  ``fill``
    below 1 produces density-bound blocks (DBB).
    """
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    rows, cols = [], []
    offs = np.arange(block_size)
    rr = np.repeat(offs, block_size)
    cc = np.tile(offs, block_size)
    for b in range(n_blocks):
        if fill >= 1.0:
            keep = np.ones(rr.size, dtype=bool)
        else:
            keep = rng.random(rr.size) < fill
            if not keep.any():
                keep[rng.integers(rr.size)] = True
        rows.append(b * block_size + rr[keep])
        cols.append(b * block_size + cc[keep])
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def banded(n: int, bandwidth: int, fill: float = 0.6,
           seed: int = 0) -> COOMatrix:
    """Band matrix: entries within ``bandwidth`` of the diagonal.

    Models the af_shell / ML_Laplace family of structural FEM matrices.
    """
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows, cols = [], []
    ridx = np.arange(n)
    for off in offsets:
        c = ridx + off
        valid = (c >= 0) & (c < n)
        keep = valid & (rng.random(n) < fill)
        rows.append(ridx[keep])
        cols.append(c[keep])
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def diagonal_stripes(n: int, offsets, fill: float = 1.0,
                     seed: int = 0) -> COOMatrix:
    """A few full (off-)diagonals — the tmt_sym / t2em electromagnetics
    shape whose local patterns are dominated by diagonal vectors."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    ridx = np.arange(n)
    for off in offsets:
        c = ridx + int(off)
        valid = (c >= 0) & (c < n)
        keep = valid & (rng.random(n) < fill)
        rows.append(ridx[keep])
        cols.append(c[keep])
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def anti_diagonal_stripes(n: int, offsets, fill: float = 1.0,
                          seed: int = 0) -> COOMatrix:
    """Anti-diagonal stripes (cells with ``row + col`` constant) — the
    c-73 shape whose 4x4 local patterns are anti-diagonal vectors."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    ridx = np.arange(n)
    for off in offsets:
        c = (n - 1 + int(off)) - ridx
        valid = (c >= 0) & (c < n)
        keep = valid & (rng.random(n) < fill)
        rows.append(ridx[keep])
        cols.append(c[keep])
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def fem_mesh(n_nodes: int, dof: int = 4, neighbors: int = 6,
             block_fill: float = 0.9, seed: int = 0) -> COOMatrix:
    """FEM-style matrix: a random near-diagonal node graph expanded into
    ``dof x dof`` blocks.

    This is the CFD family (ex11, rim, cfd2, Goodwin_054, 3dtube):
    block-sparse matrices whose local patterns mix blocks, rows and
    columns, with a banded global composition.  Each coupling block is a
    *structured* variant — fully dense with probability ``block_fill``,
    otherwise one of {first column, first row, block diagonal} — which
    reproduces the concentrated local-pattern histograms of real FEM
    matrices (a handful of block/vector patterns dominating).
    """
    rng = np.random.default_rng(seed)
    # Node adjacency: each node connects to itself and ~neighbors nearby
    # nodes (1-D mesh locality with jitter, giving a banded composition).
    src = np.repeat(np.arange(n_nodes), neighbors)
    jitter = rng.integers(-3 * neighbors, 3 * neighbors + 1, src.size)
    dst = np.clip(src + jitter, 0, n_nodes - 1)
    src = np.concatenate([src, np.arange(n_nodes)])
    dst = np.concatenate([dst, np.arange(n_nodes)])
    pairs = np.unique(src * n_nodes + dst)
    bsrc = pairs // n_nodes
    bdst = pairs % n_nodes
    nblocks = pairs.size

    offs = np.arange(dof)
    # Cell templates of the four block variants, as (dof*dof) bool rows.
    full = np.ones((dof, dof), dtype=bool)
    first_col = np.zeros((dof, dof), dtype=bool)
    first_col[:, 0] = True
    first_row = np.zeros((dof, dof), dtype=bool)
    first_row[0, :] = True
    diag = np.eye(dof, dtype=bool)
    variants = np.stack(
        [full.ravel(), first_col.ravel(), first_row.ravel(), diag.ravel()]
    )

    # Diagonal blocks are always fully dense (the mass/stiffness block);
    # couplings draw a structured variant.
    choice = np.where(
        bsrc == bdst,
        0,
        np.where(
            rng.random(nblocks) < block_fill,
            0,
            rng.integers(1, 4, nblocks),
        ),
    )
    cell_keep = variants[choice]  # (nblocks, dof*dof)

    rr = np.repeat(offs, dof)
    cc = np.tile(offs, dof)
    rows = (bsrc[:, None] * dof + rr[None, :])[cell_keep]
    cols = (bdst[:, None] * dof + cc[None, :])[cell_keep]
    n = n_nodes * dof
    return _coo(rows, cols, rng, (n, n))


def mycielskian_graph(order: int, seed: int = 0) -> COOMatrix:
    """Adjacency matrix of the Mycielskian graph M_order.

    The paper's mycielskian14 workload is the genuine SuiteSparse matrix
    of M14; the construction is exact and cheap, so we build the real
    graph at a reduced order (M_k has ``3 * 2**(k-2) - 1`` vertices and
    roughly 3.4x the edges of M_{k-1}).
    """
    if order < 2:
        raise ValueError("Mycielskian order must be >= 2")
    # M2 = K2.
    edges = {(0, 1)}
    n = 2
    for __ in range(order - 2):
        # Mycielskian step: vertices 0..n-1 (u), n..2n-1 (v copies), 2n (w).
        new_edges = set(edges)
        for (a, b) in edges:
            new_edges.add((a, n + b))
            new_edges.add((b, n + a))
        w = 2 * n
        for i in range(n):
            new_edges.add((n + i, w))
        edges = new_edges
        n = 2 * n + 1
    e = np.array(sorted(edges), dtype=np.int64)
    rows = np.concatenate([e[:, 0], e[:, 1]])
    cols = np.concatenate([e[:, 1], e[:, 0]])
    rng = np.random.default_rng(seed)
    return _coo(rows, cols, rng, (n, n))


def power_law_graph(n: int, avg_degree: int = 8, exponent: float = 2.1,
                    seed: int = 0) -> COOMatrix:
    """Scale-free graph adjacency (preferential-attachment flavour)."""
    rng = np.random.default_rng(seed)
    # Degree-proportional endpoint sampling via a Zipf-like weight.
    weights = 1.0 / np.power(np.arange(1, n + 1), exponent - 1.0)
    weights /= weights.sum()
    m = n * avg_degree // 2
    src = rng.choice(n, size=m, p=weights)
    dst = rng.choice(n, size=m, p=weights)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    return _coo(rows, cols, rng, (n, n))


def rmat_graph(scale: int, avg_degree: int = 8,
               probabilities=(0.57, 0.19, 0.19, 0.05),
               seed: int = 0) -> COOMatrix:
    """R-MAT recursive-matrix graph (Chakrabarti et al., 2004).

    The standard scale-free graph generator of the Graph500 benchmark:
    ``2**scale`` vertices, edges placed by recursively descending into
    the adjacency quadrants with the given probabilities.  Produces the
    skewed, community-structured adjacency matrices typical of graph
    analytics SpMV workloads.
    """
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("quadrant probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * avg_degree // 2
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        go_down = (r >= a + b)  # quadrants c or d
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        half = 1 << (scale - 1 - level)
        rows += go_down * half
        cols += go_right * half
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    return _coo(all_rows, all_cols, rng, (n, n))


def random_uniform(n: int, density: float, seed: int = 0,
                   ncols: int = None) -> COOMatrix:
    """Uniformly scattered non-zeros (the pattern-less worst case)."""
    rng = np.random.default_rng(seed)
    ncols = n if ncols is None else ncols
    m = int(round(n * ncols * density))
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, ncols, m)
    return _coo(rows, cols, rng, (n, ncols))


def row_segments(n: int, segments_per_row_block: int = 2,
                 segment_len: int = 8, seed: int = 0) -> COOMatrix:
    """Horizontal runs of consecutive non-zeros.

    Yields row-wise (RW) dominated local patterns — the x104 signature
    (48.7% full-row pattern).
    """
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for r in range(n):
        starts = rng.integers(
            0, max(n - segment_len, 1), segments_per_row_block
        )
        for s in starts:
            rows.append(np.full(segment_len, r, dtype=np.int64))
            cols.append(np.arange(s, s + segment_len, dtype=np.int64))
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def staircase(n_steps: int, step_rows: int, step_cols: int,
              coupling_cols: int = 4, fill: float = 0.8,
              seed: int = 0) -> COOMatrix:
    """Staircase/block-angular structure of multistage stochastic LPs
    (the stormG2_1000 shape): diagonal stages plus coupling columns."""
    rng = np.random.default_rng(seed)
    nrows = n_steps * step_rows
    ncols = n_steps * step_cols + coupling_cols
    rows, cols = [], []
    for s in range(n_steps):
        r0, c0 = s * step_rows, s * step_cols
        rr = np.repeat(np.arange(step_rows), step_cols)
        cc = np.tile(np.arange(step_cols), step_rows)
        keep = rng.random(rr.size) < fill
        rows.append(r0 + rr[keep])
        cols.append(c0 + cc[keep])
        # Coupling columns at the far right of every stage.
        link_r = np.repeat(np.arange(step_rows), coupling_cols)
        link_c = np.tile(np.arange(coupling_cols), step_rows)
        keep = rng.random(link_r.size) < fill * 0.5
        rows.append(r0 + link_r[keep])
        cols.append(n_steps * step_cols + link_c[keep])
    return _coo(
        np.concatenate(rows), np.concatenate(cols), rng, (nrows, ncols)
    )


def dense_rows(n: int, n_dense: int, row_fill: float = 0.8,
               seed: int = 0) -> COOMatrix:
    """A few nearly dense rows at the bottom of an otherwise empty
    matrix — the classic source of workload imbalance (mip1)."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for i in range(n_dense):
        r = n - 1 - i
        keep = rng.random(n) < row_fill
        rows.append(np.full(int(keep.sum()), r, dtype=np.int64))
        cols.append(np.nonzero(keep)[0])
    return _coo(np.concatenate(rows), np.concatenate(cols), rng, (n, n))


def overlay(*matrices: COOMatrix) -> COOMatrix:
    """Union of several generators over a common bounding shape.

    Entries colliding at the same coordinate are summed (COO dedup).
    """
    if not matrices:
        raise ValueError("overlay needs at least one matrix")
    nrows = max(m.shape[0] for m in matrices)
    ncols = max(m.shape[1] for m in matrices)
    rows = np.concatenate([m.rows for m in matrices])
    cols = np.concatenate([m.cols for m in matrices])
    vals = np.concatenate([m.vals for m in matrices])
    return COOMatrix(rows, cols, vals, (nrows, ncols))
