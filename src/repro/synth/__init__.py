"""Synthetic workload substrate.

The paper benchmarks 20 SuiteSparse matrices (Table II).  Those files are
not available offline, so this package generates synthetic stand-ins that
reproduce each matrix's published *density*, *local pattern mix* and
*global composition* — the three statistics every SPASM result actually
depends on — at a configurable scale.
"""

from repro.synth.generators import (
    block_diagonal,
    banded,
    diagonal_stripes,
    anti_diagonal_stripes,
    fem_mesh,
    mycielskian_graph,
    power_law_graph,
    rmat_graph,
    random_uniform,
    row_segments,
    staircase,
    dense_rows,
    overlay,
)
from repro.synth.workloads import (
    WorkloadSpec,
    WORKLOAD_SUITE,
    workload_names,
    load_workload,
    load_suite,
)

__all__ = [
    "block_diagonal",
    "banded",
    "diagonal_stripes",
    "anti_diagonal_stripes",
    "fem_mesh",
    "mycielskian_graph",
    "power_law_graph",
    "rmat_graph",
    "random_uniform",
    "row_segments",
    "staircase",
    "dense_rows",
    "overlay",
    "WorkloadSpec",
    "WORKLOAD_SUITE",
    "workload_names",
    "load_workload",
    "load_suite",
]
