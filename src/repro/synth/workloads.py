"""The Table II workload suite, rebuilt synthetically.

Each entry mirrors one of the paper's 20 SuiteSparse matrices: same
application domain, same dominant local pattern families, same global
composition shape, at a reduced default scale so the pure-Python pipeline
stays fast (the ``scale`` knob grows any instance back toward paper
size).  Absolute nnz therefore differs from Table II; the published nnz
and density are retained in each spec for reference and reporting.
"""

from __future__ import annotations

import dataclasses

from repro.matrix.coo import COOMatrix
from repro.synth import generators as g


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One Table II workload.

    Attributes
    ----------
    name:
        SuiteSparse matrix name the entry stands in for.
    domain:
        Application domain reported in Table II.
    paper_nnz, paper_density:
        The published statistics of the original matrix.
    pattern_kind:
        Dominant local pattern family of the synthetic stand-in.
    builder:
        ``(scale, seed) -> COOMatrix`` constructor.
    """

    name: str
    domain: str
    paper_nnz: float
    paper_density: float
    pattern_kind: str
    builder: object

    def build(self, scale: float = 1.0, seed: int = None) -> COOMatrix:
        """Construct the synthetic matrix."""
        if seed is None:
            seed = _seed_of(self.name)
        return self.builder(scale, seed)


def _seed_of(name: str) -> int:
    """Deterministic per-name seed (stable across sessions)."""
    return sum(ord(ch) * (i + 1) for i, ch in enumerate(name)) % 100003


def _s(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a leading dimension."""
    return max(int(round(base * scale)), minimum)


def _mycielskian14(scale, seed):
    order = 11 if scale <= 1.0 else min(11 + int(scale).bit_length(), 13)
    return g.mycielskian_graph(order, seed)


def _ex11(scale, seed):
    # dof=5 blocks straddle the 4x4 grid, spreading a few block variants
    # over a moderate set of local patterns (paper: top-1 = 14.1%).
    return g.fem_mesh(_s(1000, scale), dof=5, neighbors=8,
                      block_fill=0.55, seed=seed)


def _raefsky3(scale, seed):
    return g.fem_mesh(_s(250, scale), dof=8, neighbors=4,
                      block_fill=1.0, seed=seed)


def _mip1(scale, seed):
    n = _s(6000, scale)
    return g.overlay(
        g.block_diagonal(n // 4, 4, fill=0.9, seed=seed),
        g.dense_rows(n, 8, row_fill=0.8, seed=seed + 1),
        g.random_uniform(n, 2e-4, seed=seed + 2),
    )


def _rim(scale, seed):
    return g.fem_mesh(_s(2200, scale), dof=2, neighbors=14,
                      block_fill=0.65, seed=seed)


def _3dtube(scale, seed):
    return g.fem_mesh(_s(1400, scale), dof=3, neighbors=12,
                      block_fill=0.85, seed=seed)


def _bbmat(scale, seed):
    n = _s(5000, scale)
    return g.overlay(
        g.banded(n, 2, fill=0.85, seed=seed),
        g.block_diagonal(n // 4, 4, fill=0.8, seed=seed + 1),
    )


def _chebyshev4(scale, seed):
    n = _s(4000, scale)
    return g.overlay(
        g.banded(n, 3, fill=0.8, seed=seed),
        g.dense_rows(n, 6, row_fill=0.9, seed=seed + 1),
    )


def _goodwin(scale, seed):
    return g.fem_mesh(_s(1800, scale), dof=3, neighbors=9,
                      block_fill=0.6, seed=seed)


def _x104(scale, seed):
    return g.row_segments(_s(3000, scale), segments_per_row_block=2,
                          segment_len=8, seed=seed)


def _cfd2(scale, seed):
    return g.fem_mesh(_s(1100, scale), dof=6, neighbors=7,
                      block_fill=0.5, seed=seed)


def _ml_laplace(scale, seed):
    return g.banded(_s(8000, scale), 6, fill=0.8, seed=seed)


def _af_0_k101(scale, seed):
    n = _s(7000, scale)
    return g.overlay(
        g.banded(n, 5, fill=0.7, seed=seed),
        g.block_diagonal(n // 4, 4, fill=0.6, seed=seed + 1),
    )


def _pflow_742(scale, seed):
    return g.banded(_s(9000, scale), 4, fill=0.45, seed=seed)


def _c73(scale, seed):
    n = _s(10000, scale)
    # Isolated stripes keep the local patterns anti-diagonal vectors (the
    # paper calls c-73 anti-diagonal dominated); adjacent offsets would
    # merge into a thick band of block patterns instead.
    return g.overlay(
        g.anti_diagonal_stripes(
            n, (0, 37, -53, 101, -147), fill=0.85, seed=seed
        ),
        g.random_uniform(n, 5e-5, seed=seed + 1),
    )


def _af_shell10(scale, seed):
    return g.banded(_s(9000, scale), 5, fill=0.75, seed=seed)


def _tmt_sym(scale, seed):
    n = _s(10000, scale)
    return g.diagonal_stripes(n, (-115, -1, 0, 1, 115), fill=0.9, seed=seed)


def _tmt_unsym(scale, seed):
    n = _s(10000, scale)
    return g.diagonal_stripes(n, (-2, -1, 0, 117, 118), fill=0.9, seed=seed)


def _t2em(scale, seed):
    n = _s(11000, scale)
    return g.diagonal_stripes(n, (-110, -1, 0, 1), fill=0.95, seed=seed)


def _stormg2(scale, seed):
    return g.staircase(_s(400, scale), step_rows=12, step_cols=10,
                       coupling_cols=6, fill=0.85, seed=seed)


#: The 20-matrix suite in Table II order (descending paper density).
WORKLOAD_SUITE = (
    WorkloadSpec("mycielskian14", "graph problem", 3.70e6, 2.45e-2,
                 "scale-free graph", _mycielskian14),
    WorkloadSpec("ex11", "CFD", 1.10e6, 3.97e-3, "FEM dof blocks", _ex11),
    WorkloadSpec("raefsky3", "CFD", 1.49e6, 3.31e-3,
                 "dense blocks (single pattern)", _raefsky3),
    WorkloadSpec("mip1", "optimization problem", 1.04e7, 2.35e-3,
                 "blocks + dense rows (imbalanced)", _mip1),
    WorkloadSpec("rim", "CFD", 1.01e6, 1.99e-3, "FEM dof blocks", _rim),
    WorkloadSpec("3dtube", "CFD", 3.24e6, 1.58e-3, "FEM dof blocks",
                 _3dtube),
    WorkloadSpec("bbmat", "CFD", 1.77e6, 1.18e-3, "band + blocks",
                 _bbmat),
    WorkloadSpec("Chebyshev4", "structural problem", 5.38e6, 1.16e-3,
                 "band + dense rows", _chebyshev4),
    WorkloadSpec("Goodwin_054", "CFD", 1.03e6, 9.75e-4, "FEM dof blocks",
                 _goodwin),
    WorkloadSpec("x104", "structural problem", 1.02e7, 8.66e-4,
                 "row segments (RW dominated)", _x104),
    WorkloadSpec("cfd2", "CFD", 3.09e6, 2.03e-4, "FEM dof blocks", _cfd2),
    WorkloadSpec("ML_Laplace", "structural problem", 2.77e7, 1.95e-4,
                 "band", _ml_laplace),
    WorkloadSpec("af_0_k101", "structural problem", 1.76e7, 6.92e-5,
                 "band + blocks", _af_0_k101),
    WorkloadSpec("PFlow_742", "2D/3D problem", 3.71e7, 6.73e-5,
                 "sparse band", _pflow_742),
    WorkloadSpec("c-73", "optimization problem", 1.28e6, 4.46e-5,
                 "anti-diagonal stripes", _c73),
    WorkloadSpec("af_shell10", "structural problem", 5.27e7, 2.32e-5,
                 "band", _af_shell10),
    WorkloadSpec("tmt_sym", "electromagnetics problem", 5.08e6, 9.62e-6,
                 "diagonal stripes", _tmt_sym),
    WorkloadSpec("tmt_unsym", "electromagnetics problem", 4.58e6, 5.44e-6,
                 "diagonal stripes", _tmt_unsym),
    WorkloadSpec("t2em", "electromagnetics problem", 4.59e6, 5.40e-6,
                 "diagonal stripes", _t2em),
    WorkloadSpec("stormG2_1000", "optimization problem", 3.46e6, 4.76e-6,
                 "staircase LP", _stormg2),
)

_BY_NAME = {spec.name: spec for spec in WORKLOAD_SUITE}


def workload_names() -> list:
    """Names of the 20 suite matrices in Table II order."""
    return [spec.name for spec in WORKLOAD_SUITE]


def load_workload(name: str, scale: float = 1.0,
                  seed: int = None) -> COOMatrix:
    """Build one suite matrix by name."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    return spec.build(scale, seed)


def load_suite(scale: float = 1.0, names=None):
    """Yield ``(spec, matrix)`` for the requested workloads."""
    specs = WORKLOAD_SUITE if names is None else [
        _BY_NAME[name] for name in names
    ]
    for spec in specs:
        yield spec, spec.build(scale)
