"""Greedy dynamic portfolio construction (extension).

The paper notes that choosing the optimal 16 templates out of the 1820
possible fixed-length patterns is NP-hard (Section V-C) and therefore
selects among ten hand-crafted candidate portfolios (Table V).  This
module implements the natural next step: build a *custom* portfolio per
matrix with a greedy marginal-gain heuristic over the full template
universe.

Because all templates have fixed length ``k``, the padding of a pattern
``p`` under portfolio ``S`` is ``k * u_S(p) - |p|`` with ``u_S(p)`` the
minimum number of templates covering ``p``.  Greedy needs to see
*partial* progress, so rounds are scored with the relaxed cost

    u_S(p) = min over T subset of S of  |T| + |p \\ union(T)|

(each still-uncovered cell will eventually need one template of its
own).  The recurrence ``u'(p) = min(u(p), 1 + u(p & ~t))`` maintains
this relaxation *exactly* over the whole 2^(k*k) pattern domain — one
vectorized gather per pick — and a second gather scores every pool
candidate per round.  The final portfolio is patched to full grid
coverage and re-costed with the exact :class:`DecompositionTable`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.bitmask import DEFAULT_K, full_mask, popcount_array
from repro.core.decompose import cached_table
from repro.core.patterns import PatternHistogram
from repro.core.templates import (
    MAX_TEMPLATES,
    Portfolio,
    Template,
    row_templates,
    template_universe,
)


@dataclasses.dataclass(frozen=True)
class GreedyBuildResult:
    """Outcome of a greedy portfolio build.

    Attributes
    ----------
    portfolio:
        The constructed :class:`Portfolio`.
    total_padding:
        Frequency-weighted padding of the scored histogram under the
        final portfolio.
    gains:
        Padding reduction achieved by each greedy round, in pick order.
    """

    portfolio: Portfolio
    total_padding: int
    gains: tuple


class GreedyPortfolioBuilder:
    """Builds a matrix-specific portfolio from the template universe.

    Parameters
    ----------
    k:
        Local pattern size.
    n_templates:
        Portfolio size budget (the 4-bit t_idx allows at most 16).
    pool:
        Candidate template masks; defaults to the full fixed-length
        universe (1820 masks for k=4).
    """

    def __init__(self, k: int = DEFAULT_K, n_templates: int = MAX_TEMPLATES,
                 pool=None):
        if not 1 <= n_templates <= MAX_TEMPLATES:
            raise ValueError(
                f"n_templates must be in [1, {MAX_TEMPLATES}], "
                f"got {n_templates}"
            )
        self.k = k
        self.n_templates = n_templates
        if pool is None:
            pool = list(template_universe(k))
        self.pool = np.array(sorted(set(int(m) for m in pool)),
                             dtype=np.int64)
        if self.pool.size == 0:
            raise ValueError("empty candidate pool")

    def build(self, histogram: PatternHistogram,
              name: str = "dynamic-greedy") -> GreedyBuildResult:
        """Greedily pick templates maximizing padding reduction.

        The build always returns a *complete* portfolio (its union
        covers the grid): after the gain-driven rounds, any uncovered
        cells are patched with row templates so that arbitrary future
        inputs remain decomposable.
        """
        if histogram.k != self.k:
            raise ValueError(
                f"histogram has k={histogram.k}, builder expects {self.k}"
            )
        k = self.k
        patterns = histogram.patterns.astype(np.int64)
        freqs = histogram.frequencies.astype(np.int64)

        selected = []
        gains = []
        # Relaxed cost over the whole pattern domain, starting from the
        # no-templates bound: every cell costs one template.
        domain = np.arange(1 << (k * k), dtype=np.int64)
        u = popcount_array(domain).astype(np.int64)
        # Pattern-minus-candidate masks, shared across rounds:
        # masked[i, j] = patterns[i] & ~pool[j].
        masked = patterns[:, None] & ~self.pool[None, :]
        available = np.ones(self.pool.size, dtype=bool)

        for __ in range(self.n_templates):
            current = u[patterns]
            with_t = 1 + u[masked]  # (n_patterns, n_pool)
            improved = np.minimum(current[:, None], with_t)
            gain = ((current[:, None] - improved) * freqs[:, None]).sum(
                axis=0
            )
            gain[~available] = -1
            best = int(gain.argmax())
            if gain[best] <= 0:
                break
            available[best] = False
            t = int(self.pool[best])
            selected.append(t)
            gains.append(int(gain[best]) * k)  # padding units
            u = np.minimum(u, 1 + u[domain & ~t])

        selected = self._patch_coverage(selected)
        templates = tuple(
            Template(mask, f"G{i}", "CUSTOM")
            for i, mask in enumerate(selected)
        )
        portfolio = Portfolio(
            templates, k=k, name=name,
            description="greedy build from the template universe",
        )
        total = cached_table(portfolio).total_padding(histogram)
        return GreedyBuildResult(
            portfolio=portfolio,
            total_padding=total,
            gains=tuple(gains),
        )

    def _patch_coverage(self, selected) -> list:
        """Ensure the selection covers the whole grid.

        Uncovered cells are patched with row templates (dropping the
        least recently picked greedy templates if the budget is full).
        """
        grid = full_mask(self.k)
        union = 0
        for mask in selected:
            union |= mask
        if union == grid and selected:
            return selected
        patches = [
            t.mask
            for t in row_templates(self.k)
            if t.mask & ~union
        ]
        room = self.n_templates - len(selected)
        if len(patches) > room:
            selected = selected[: self.n_templates - len(patches)]
        return selected + patches


def select_portfolio_dynamic(histogram: PatternHistogram,
                             candidates=None,
                             builder: GreedyPortfolioBuilder = None
                             ) -> Portfolio:
    """Best of Algorithm 3's candidate selection and the greedy build.

    The greedy heuristic occasionally loses to a hand-crafted Table V
    portfolio (it commits template by template); taking the minimum of
    both paths guarantees the dynamic choice is never worse than any
    fixed candidate while still exploiting custom templates when they
    help.
    """
    from repro.core.selection import select_portfolio

    selection = select_portfolio(histogram, candidates=candidates)
    candidate_padding = selection.table.total_padding(histogram)
    if builder is None:
        builder = GreedyPortfolioBuilder(k=histogram.k)
    greedy = builder.build(histogram)
    if greedy.total_padding < candidate_padding:
        return greedy.portfolio
    return selection.portfolio


def greedy_storage_bytes(histogram: PatternHistogram,
                         result: GreedyBuildResult,
                         value_bytes: int = 4) -> int:
    """SPASM storage cost implied by a greedy-built portfolio."""
    nnz = int((popcount_array(histogram.patterns)
               * histogram.frequencies).sum())
    slots = nnz + result.total_padding
    groups = slots // histogram.k
    return groups * (histogram.k + 1) * value_bytes
