"""The SPASM sparse data format (paper Section III).

A matrix is encoded at two levels:

* **global**: the COO list of non-empty ``tile_size x tile_size`` tiles
  (``tileRowIdx`` / ``tileColIdx``), streamed row-major so that an entire
  tile row completes — and its partial sums flush — before the next row
  starts;
* **local**: within each tile, every non-empty k-by-k submatrix is
  decomposed into template groups.  Each group carries ``k`` values (zero
  padded) plus one 32-bit position word (see :mod:`repro.core.encoding`),
  i.e. ``(pattern_size + 1) * 4`` bytes per group under the paper's
  32-bit accounting.

Overlap rule: when two templates of a decomposition cover the same
pattern cell, the value is carried by the *first* template (t_idx order)
and the later slots are zero padding, so decoding never double counts.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.bitmask import DEFAULT_K
from repro.core.decompose import DecompositionTable, cached_table
from repro.core.encoding import (
    pack_position_array,
    unpack_position_array,
)
from repro.core.patterns import submatrix_masks
from repro.core.templates import Portfolio
from repro.core.tiling import GlobalComposition, validate_tile_size
from repro.matrix.coo import COOMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.plan import ExecutionPlan


class FormatError(ValueError):
    """Raised by :meth:`SpasmMatrix.validate` on a broken encoding.

    Aggregates *every* violation the static verifier found; the
    individual :class:`~repro.verify.diagnostics.Diagnostic` records
    are available on :attr:`diagnostics`.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


@dataclasses.dataclass(frozen=True)
class SpasmTile:
    """View of one encoded tile.

    Attributes
    ----------
    tile_row, tile_col:
        Tile coordinates (``tileRowIdx`` / ``tileColIdx``).
    words:
        ``uint32`` position words of the tile's groups, in stream order.
    values:
        ``(n_groups, k)`` value payload, zero padded.
    """

    tile_row: int
    tile_col: int
    words: np.ndarray
    values: np.ndarray

    @property
    def n_groups(self) -> int:
        """Number of template groups in the tile."""
        return int(self.words.size)


@dataclasses.dataclass
class SpasmMatrix:
    """A matrix encoded in the SPASM data format.

    Attributes
    ----------
    shape:
        Logical matrix shape.
    k:
        Local pattern size (values per template group).
    tile_size:
        Tile edge length in matrix elements.
    portfolio:
        The template portfolio the encoding used (t_idx order).
    tile_rows, tile_cols:
        Non-empty tile coordinates in stream order.
    tile_ptr:
        ``n_tiles + 1`` offsets into ``words``/``values`` per tile.
    words:
        All position words, concatenated in stream order.
    values:
        ``(n_groups, k)`` value payload, zero padded.
    source_nnz:
        Non-zero count of the source matrix (for padding accounting).
    """

    shape: tuple
    k: int
    tile_size: int
    portfolio: Portfolio
    tile_rows: np.ndarray
    tile_cols: np.ndarray
    tile_ptr: np.ndarray
    words: np.ndarray
    values: np.ndarray
    source_nnz: int

    @property
    def n_tiles(self) -> int:
        """Number of non-empty tiles."""
        return int(self.tile_rows.size)

    @property
    def n_groups(self) -> int:
        """Total number of template groups."""
        return int(self.words.size)

    @property
    def stored_values(self) -> int:
        """Stored value slots, padding included."""
        return self.n_groups * self.k

    @property
    def padding(self) -> int:
        """Total zero paddings introduced by the encoding."""
        return self.stored_values - self.source_nnz

    @property
    def padding_rate(self) -> float:
        """Fraction of stored value slots that are padding."""
        if self.stored_values == 0:
            return 0.0
        return self.padding / self.stored_values

    def storage_bytes(self, value_bytes: int = 4,
                      include_global: bool = False) -> int:
        """Paper accounting: ``(k + 1) * 4`` bytes per group.

        ``include_global`` adds the first-level tile COO (two 32-bit
        indices per non-empty tile), which the paper's comparison ignores
        as negligible.
        """
        local = self.n_groups * (self.k + 1) * value_bytes
        if include_global:
            local += self.n_tiles * 2 * 4
        return local

    def bytes_per_nnz(self) -> float:
        """Average storage cost per source non-zero (Section V-B metric)."""
        if self.source_nnz == 0:
            return 0.0
        return self.storage_bytes() / self.source_nnz

    def validate(self, source: Optional[COOMatrix] = None) -> list:
        """Check the structural invariants of the encoding.

        Delegates to the static verifier (:mod:`repro.verify`), which
        checks array shapes, tile directory monotonicity, index bounds
        against the tile size, CE/RE flag consistency with the tile
        boundaries, overlap/decomposition canonicality and the padding
        arithmetic.  Raises :class:`FormatError` aggregating *every*
        error-severity violation (not just the first) — the integrity
        check to run after deserializing an encoding from untrusted
        storage.  Passing the ``source`` matrix additionally proves
        decode equivalence (``fmt.roundtrip``).

        Returns the full diagnostic list (warnings included) when no
        errors were found.
        """
        from repro.verify.runner import verify_spasm

        report = verify_spasm(self, source=source, with_opcodes=False)
        report.raise_if_errors(FormatError)
        return report.diagnostics

    def tiles(self):
        """Iterate :class:`SpasmTile` views in stream order."""
        for i in range(self.n_tiles):
            lo, hi = self.tile_ptr[i], self.tile_ptr[i + 1]
            yield SpasmTile(
                tile_row=int(self.tile_rows[i]),
                tile_col=int(self.tile_cols[i]),
                words=self.words[lo:hi],
                values=self.values[lo:hi],
            )

    def groups_per_tile(self) -> np.ndarray:
        """Template group count per tile (stream order)."""
        return np.diff(self.tile_ptr)

    def global_composition(self) -> GlobalComposition:
        """The tile-level view of this encoding.

        Vectorized: the per-tile non-zero counts are one
        ``np.add.reduceat`` over the tile directory instead of a Python
        loop over :meth:`tiles` (this runs inside every
        ``perf_breakdown`` call path).
        """
        if self.n_tiles:
            nnz = np.add.reduceat(
                np.count_nonzero(self.values, axis=1),
                self.tile_ptr[:-1],
            ).astype(np.int64)
        else:
            nnz = np.zeros(0, dtype=np.int64)
        return GlobalComposition(
            shape=self.shape,
            k=self.k,
            tile_size=self.tile_size,
            tile_rows=self.tile_rows.copy(),
            tile_cols=self.tile_cols.copy(),
            groups_per_tile=self.groups_per_tile().astype(np.int64),
            nnz_per_tile=nnz,
        )

    def _expand(self) -> tuple:
        """Expand every stored slot to (row, col, value) coordinates."""
        fields = unpack_position_array(self.words)
        tile_of_group = np.repeat(
            np.arange(self.n_tiles), self.groups_per_tile()
        )
        row_base = (
            self.tile_rows[tile_of_group] * self.tile_size
            + fields["r_idx"] * self.k
        )
        col_base = (
            self.tile_cols[tile_of_group] * self.tile_size
            + fields["c_idx"] * self.k
        )
        cell_r, cell_c = _template_cell_arrays(self.portfolio, self.k)
        t_idx = fields["t_idx"]
        rows = row_base[:, None] + cell_r[t_idx]
        cols = col_base[:, None] + cell_c[t_idx]
        return rows.ravel(), cols.ravel(), self.values.ravel()

    def to_coo(self) -> COOMatrix:
        """Decode back to COO (padding slots drop out as zeros)."""
        rows, cols, vals = self._expand()
        keep = vals != 0.0
        return COOMatrix(rows[keep], cols[keep], vals[keep], self.shape)

    def stream_digest(self) -> str:
        """Content digest of the encoded stream (plan cache key)."""
        from repro.exec.plan import stream_digest

        return stream_digest(self)

    def plan(self, cache=None) -> "ExecutionPlan":
        """The compiled :class:`~repro.exec.plan.ExecutionPlan`.

        Built lazily and cached on the matrix, keyed on the stream
        content (:meth:`stream_digest`): mutating any stored array
        invalidates the cached plan on the next call.  Passing an
        :class:`~repro.pipeline.cache.ArtifactCache` additionally
        persists the plan on disk, so rebuilding an identical stream —
        in this or any other process — is a load, not a compile.

        Revalidation digests the whole stream, so hot loops should call
        ``plan()`` once and hold the result (the solvers' operator
        wrapper and the sharded executor already do).
        """
        from repro.exec.plan import ExecutionPlan, stream_digest

        digest = stream_digest(self)
        cached = self.__dict__.get("_plan")
        if cached is not None and cached.digest == digest:
            return cached
        built = ExecutionPlan.build(self, cache=cache, digest=digest)
        self._plan = built
        return built

    def apply_tuned(self, config, cache=None):
        """Pin execution to a persisted tuning record.

        ``config`` is a :class:`~repro.tune.TunedConfig` (typically
        from :func:`repro.tune.tune_matrix` or
        :func:`repro.tune.load_tuned`).  Builds the plan in the tuned
        array layout (persisted through ``cache`` when given),
        installs a :class:`~repro.tune.TunedExecutor` — backend
        resolved, scratch prepared, shard grid frozen once — and makes
        :meth:`spmv`/:meth:`spmm`/:meth:`spmv_batch` route through it
        whenever the caller leaves ``jobs``/``backend`` unspecified
        (explicit arguments still win).  Returns the executor.
        ``apply_tuned(None)`` clears the pin.
        """
        if config is None:
            self.__dict__.pop("_tuned", None)
            return None
        from repro.exec.plan import ExecutionPlan
        from repro.tune.executor import TunedExecutor

        if config.precision == "float64" and (
                self.plan(cache).cols.dtype.name == config.index):
            plan = self.plan(cache)
        else:
            plan = ExecutionPlan.build(
                self, cache=cache, index=config.index,
                precision=config.precision,
            )
        executor = TunedExecutor(plan, config)
        self._tuned = executor
        return executor

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             backend: Optional[str] = None) -> np.ndarray:
        """Execution of the format: ``y = A @ x + y``.

        Delegates to the lazily cached :meth:`plan` — a gather plus a
        sorted segment reduction; repeated calls on the same matrix
        never re-expand the stream.  ``jobs=None`` lets the plan's
        slots-per-worker heuristic choose; ``backend`` names the kernel
        engine (``None`` negotiates); any combination is bitwise
        identical.  After :meth:`apply_tuned`, unspecified knobs route
        through the pinned executor instead (still bitwise identical).
        The un-compiled reference path survives as :meth:`spmv_naive`;
        the hardware functional simulator in :mod:`repro.hw` must
        agree with both (padding slots multiply by zero and vanish).
        """
        tuned = self.__dict__.get("_tuned")
        if tuned is not None and jobs is None and backend is None:
            return tuned.spmv(x, y=y)
        return self.plan().spmv(x, y=y, jobs=jobs, backend=backend)

    def spmm(self, x_block: np.ndarray,
             y_block: Optional[np.ndarray] = None,
             jobs: Optional[int] = None,
             backend: Optional[str] = None,
             ) -> np.ndarray:
        """Multi-vector execution ``Y = A @ X + Y`` via the plan.

        The sparse stream is gathered once per vector block — the
        A-stream amortization that
        :func:`repro.hw.perf_model.perf_breakdown_spmm` models.  The
        un-compiled reference survives as :meth:`spmm_naive`.
        """
        tuned = self.__dict__.get("_tuned")
        if tuned is not None and jobs is None and backend is None:
            return tuned.spmm(x_block, y_block=y_block)
        return self.plan().spmm(
            x_block, y_block=y_block, jobs=jobs, backend=backend
        )

    def spmv_batch(self, xs: np.ndarray,
                   jobs: Optional[int] = None,
                   backend: Optional[str] = None) -> np.ndarray:
        """Batched SpMV over query rows via the plan's SpMM kernel.

        ``xs`` is ``(n_queries, ncols)``; row ``i`` of the result is
        bitwise identical to ``spmv(xs[i])``.
        """
        tuned = self.__dict__.get("_tuned")
        if tuned is not None and jobs is None and backend is None:
            return tuned.spmv_batch(xs)
        return self.plan().spmv_batch(xs, jobs=jobs, backend=backend)

    def spmv_naive(self, x: np.ndarray,
                   y: Optional[np.ndarray] = None) -> np.ndarray:
        """Reference execution re-expanding the stream on every call.

        Kept as the plan's correctness oracle and the benchmark
        baseline: expand to per-slot coordinates, then scatter-add with
        ``np.add.at``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"x of shape {x.shape} incompatible with {self.shape}"
            )
        if y is None:
            y = np.zeros(self.shape[0], dtype=np.float64)
        else:
            y = np.array(y, dtype=np.float64)
        # Template cells may fall past the matrix edge (they only ever
        # carry zero padding there); compute on tile-aligned buffers and
        # crop, exactly as the hardware's edge tiles do.
        rows, cols, vals = self._expand()
        n_tile_rows = -(-self.shape[0] // self.tile_size)
        n_tile_cols = -(-self.shape[1] // self.tile_size)
        x_pad = np.zeros(n_tile_cols * self.tile_size, dtype=np.float64)
        x_pad[: x.size] = x
        y_pad = np.zeros(n_tile_rows * self.tile_size, dtype=np.float64)
        y_pad[: y.size] = y
        np.add.at(y_pad, rows, vals * x_pad[cols])
        return y_pad[: y.size]

    def spmm_naive(self, x_block: np.ndarray,
                   y_block: Optional[np.ndarray] = None) -> np.ndarray:
        """Reference multi-vector execution (per-call expansion).

        ``x_block`` is ``(ncols, n_vectors)``.  The sparse matrix is
        streamed once while each template group issues one VALU
        operation per vector; kept as the :meth:`spmm` plan's
        correctness oracle and benchmark baseline.
        """
        x_block = np.asarray(x_block, dtype=np.float64)
        if x_block.ndim != 2 or x_block.shape[0] != self.shape[1]:
            raise ValueError(
                f"X of shape {x_block.shape} incompatible with "
                f"{self.shape}"
            )
        n_vectors = x_block.shape[1]
        if y_block is None:
            y_block = np.zeros(
                (self.shape[0], n_vectors), dtype=np.float64
            )
        else:
            y_block = np.array(y_block, dtype=np.float64)
            if y_block.shape != (self.shape[0], n_vectors):
                raise ValueError(
                    f"Y of shape {y_block.shape} incompatible with "
                    f"{(self.shape[0], n_vectors)}"
                )
        rows, cols, vals = self._expand()
        n_tile_rows = -(-self.shape[0] // self.tile_size)
        n_tile_cols = -(-self.shape[1] // self.tile_size)
        x_pad = np.zeros(
            (n_tile_cols * self.tile_size, n_vectors), dtype=np.float64
        )
        x_pad[: self.shape[1]] = x_block
        y_pad = np.zeros(
            (n_tile_rows * self.tile_size, n_vectors), dtype=np.float64
        )
        y_pad[: self.shape[0]] = y_block
        np.add.at(y_pad, rows, vals[:, None] * x_pad[cols])
        return y_pad[: self.shape[0]]


def _template_cell_arrays(portfolio: Portfolio, k: int) -> tuple:
    """(n_templates, k) arrays of the row/col offset of each lane."""
    n = len(portfolio.masks)
    cell_r = np.zeros((n, k), dtype=np.int64)
    cell_c = np.zeros((n, k), dtype=np.int64)
    for t_idx, mask in enumerate(portfolio.masks):
        lane = 0
        for bit in range(k * k):
            if mask >> bit & 1:
                cell_r[t_idx, lane] = bit // k
                cell_c[t_idx, lane] = bit % k
                lane += 1
    return cell_r, cell_c


def encode_spasm(coo: COOMatrix, portfolio: Portfolio, tile_size: int,
                 table: Optional[DecompositionTable] = None,
                 masks: Optional[np.ndarray] = None,
                 sub_keys: Optional[np.ndarray] = None,
                 build_plan: bool = False,
                 plan_precision: Optional[str] = None) -> SpasmMatrix:
    """Encode a COO matrix into the SPASM data format (steps ③ + ④).

    Parameters
    ----------
    coo:
        Source matrix (deduplicated COO).
    portfolio:
        Template portfolio; t_idx order is the tuple order.
    tile_size:
        Tile edge length in elements (multiple of ``portfolio.k``).
    table:
        Optional pre-built :class:`DecompositionTable` for the portfolio
        (served from the process-wide :func:`repro.core.decompose.cached_table`
        when omitted).
    masks, sub_keys:
        Optional precomputed :func:`repro.core.patterns.submatrix_masks`
        output for ``coo`` (row-major keys).  The pipeline's analysis
        stage computes these once and threads them through, sparing the
        encoder the per-submatrix occupancy reduction; they must belong
        to the same matrix and pattern size or a ``ValueError`` is
        raised.
    build_plan:
        Fuse plan construction into the encode: the execution plan's
        gather/segment arrays are finalized straight from the encoder's
        intermediates — the stream is never re-expanded — and attached
        to the returned matrix, so the first ``spmv``/``plan()`` call
        is free.  The fused plan is bitwise identical to what
        :meth:`SpasmMatrix.plan` would compile later.
    plan_precision:
        Value dtype of the fused plan (``"float32"`` opt-in; float64
        default).  Only meaningful with ``build_plan=True``.
    """
    k = portfolio.k
    tile_size = validate_tile_size(tile_size, k)
    if table is None:
        table = cached_table(portfolio)
    spt = tile_size // k
    nsubcols = -(-max(coo.shape[1], 1) // k)
    n_tile_cols = -(-max(coo.shape[1], 1) // tile_size)

    if coo.nnz == 0:
        spasm = SpasmMatrix(
            shape=coo.shape,
            k=k,
            tile_size=tile_size,
            portfolio=portfolio,
            tile_rows=np.zeros(0, dtype=np.int64),
            tile_cols=np.zeros(0, dtype=np.int64),
            tile_ptr=np.zeros(1, dtype=np.int64),
            words=np.zeros(0, dtype=np.uint32),
            values=np.zeros((0, k), dtype=np.float64),
            source_nnz=0,
        )
        if build_plan:
            from repro.exec.plan import ExecutionPlan, stream_digest

            empty = np.zeros(0, dtype=np.int64)
            spasm._plan = ExecutionPlan.from_slots(
                coo.shape, empty, empty, np.zeros(0, dtype=np.float64),
                digest=stream_digest(spasm), source_nnz=0,
                precision=plan_precision,
            )
        return spasm

    # --- submatrix grouping (stream order: tile row-major, then submatrix
    # row-major within the tile) ------------------------------------------
    sub_r = coo.rows // k
    sub_c = coo.cols // k
    bit = (coo.rows % k) * k + (coo.cols % k)
    tile_r = sub_r // spt
    tile_c = sub_c // spt
    r_idx = sub_r % spt
    c_idx = sub_c % spt
    stream_key = (
        ((tile_r * n_tile_cols + tile_c) * spt + r_idx) * spt + c_idx
    )
    order = np.argsort(stream_key, kind="stable")
    keys_sorted = stream_key[order]
    unique_keys, sub_of_entry = np.unique(keys_sorted, return_inverse=True)
    n_sub = unique_keys.size

    # Dense k*k value view of every non-empty submatrix.
    dense_vals = np.zeros((n_sub, k * k), dtype=np.float64)
    dense_vals[sub_of_entry, bit[order]] = coo.vals[order]

    # Submatrix coordinates recovered from the stream key.
    sub_cidx = unique_keys % spt
    rest = unique_keys // spt
    sub_ridx = rest % spt
    rest = rest // spt
    sub_tile_c = rest % n_tile_cols
    sub_tile_r = rest // n_tile_cols

    if masks is not None and sub_keys is not None:
        # Reuse the analysis stage's row-major masks: map each stream
        # submatrix to its row-major key and look the mask up.
        masks = np.asarray(masks, dtype=np.int64)
        sub_keys = np.asarray(sub_keys, dtype=np.int64)
        rm_keys = (
            (sub_tile_r * spt + sub_ridx) * nsubcols
            + (sub_tile_c * spt + sub_cidx)
        )
        idx = np.searchsorted(sub_keys, rm_keys)
        if (
            masks.shape != sub_keys.shape
            or sub_keys.size != n_sub
            or np.any(idx >= sub_keys.size)
            or not np.array_equal(sub_keys[idx], rm_keys)
        ):
            raise ValueError(
                "precomputed masks/sub_keys do not match the matrix "
                "being encoded (wrong matrix or pattern size?)"
            )
        masks = masks[idx]
    else:
        # Occupancy masks per submatrix (reuse the entry ordering).
        bits_sorted = np.int64(1) << bit[order].astype(np.int64)
        __, starts = np.unique(keys_sorted, return_index=True)
        masks = np.bitwise_or.reduceat(bits_sorted, starts).astype(np.int64)

    # --- decomposition (step 3) ------------------------------------------
    subsets = table.subset_array(masks)

    # Expand each submatrix into its template instances.  Precompute the
    # t_idx list and first-cover ownership mask per *distinct* subset.
    unique_subsets = np.unique(subsets)
    tmpl_masks = portfolio.masks
    tid_lists, owned_lists = [], []
    for subset in unique_subsets:
        tids, owned = [], []
        covered = 0
        s = int(subset)
        for t_idx_val in range(len(tmpl_masks)):
            if s >> t_idx_val & 1:
                tids.append(t_idx_val)
                owned.append(tmpl_masks[t_idx_val] & ~covered)
                covered |= tmpl_masks[t_idx_val]
        tid_lists.append(np.array(tids, dtype=np.int64))
        owned_lists.append(np.array(owned, dtype=np.int64))
    tid_counts = np.array([len(t) for t in tid_lists], dtype=np.int64)
    tid_offsets = np.concatenate(([0], np.cumsum(tid_counts)))
    tid_flat = (
        np.concatenate(tid_lists)
        if tid_lists
        else np.zeros(0, dtype=np.int64)
    )
    owned_flat = (
        np.concatenate(owned_lists)
        if owned_lists
        else np.zeros(0, dtype=np.int64)
    )

    loc = np.searchsorted(unique_subsets, subsets)
    counts_per_sub = tid_counts[loc]
    n_groups = int(counts_per_sub.sum())
    group_sub = np.repeat(np.arange(n_sub), counts_per_sub)
    base = np.repeat(tid_offsets[loc], counts_per_sub)
    pos_in_sub = np.arange(n_groups) - np.repeat(
        np.concatenate(([0], np.cumsum(counts_per_sub)))[:-1],
        counts_per_sub,
    )
    flat_idx = base + pos_in_sub
    group_tid = tid_flat[flat_idx]
    group_owned = owned_flat[flat_idx]

    # --- value payload -----------------------------------------------------
    cell_r, cell_c = _template_cell_arrays(portfolio, k)
    # int32: lane ids fit in a byte; the (n_groups, k) gather grid below
    # is the encoder's largest intermediate, so the narrow dtype halves
    # its traffic.
    cell_bit = (cell_r * k + cell_c).astype(np.int32)  # (n_templates, k)
    lane_bits = cell_bit[group_tid]  # (n_groups, k)
    lane_owned = (group_owned[:, None] >> lane_bits & 1).astype(bool)
    values = dense_vals[group_sub[:, None], lane_bits] * lane_owned

    # --- position words ------------------------------------------------------
    group_tile_key = (
        sub_tile_r[group_sub] * n_tile_cols + sub_tile_c[group_sub]
    )
    # Groups are in stream order, so tile boundaries are where the key
    # changes; CE marks the last group of each tile (x-buffer switch) and
    # RE the last group of each tile row (partial-sum flush).
    is_tile_last = np.empty(n_groups, dtype=bool)
    is_tile_last[:-1] = group_tile_key[1:] != group_tile_key[:-1]
    is_tile_last[-1] = True
    group_tile_r = sub_tile_r[group_sub]
    is_row_last = np.empty(n_groups, dtype=bool)
    is_row_last[:-1] = group_tile_r[1:] != group_tile_r[:-1]
    is_row_last[-1] = True

    words = pack_position_array(
        c_idx=sub_cidx[group_sub],
        r_idx=sub_ridx[group_sub],
        ce=is_tile_last,
        re=is_row_last,
        t_idx=group_tid,
    )

    # --- tile directory ------------------------------------------------------
    unique_tiles, tile_starts = np.unique(group_tile_key, return_index=True)
    # group_tile_key is non-decreasing in stream order, so unique (sorted)
    # preserves the stream order of tiles.
    tile_ptr = np.concatenate((tile_starts, [n_groups])).astype(np.int64)

    spasm = SpasmMatrix(
        shape=coo.shape,
        k=k,
        tile_size=tile_size,
        portfolio=portfolio,
        tile_rows=(unique_tiles // n_tile_cols).astype(np.int64),
        tile_cols=(unique_tiles % n_tile_cols).astype(np.int64),
        tile_ptr=tile_ptr,
        words=words,
        values=values.astype(np.float64),
        source_nnz=coo.nnz,
    )

    if build_plan:
        # --- fused plan construction (step ⑥ prep, zero re-expansion) ----
        # The encoder already knows every slot's coordinates: the plan's
        # per-slot row/col are recovered from the submatrix directory and
        # the per-template lane offsets — the exact arithmetic of
        # SpasmMatrix._expand, fed to the same finalize step, so the
        # fused plan is bitwise identical to a later _compile.  Hashing
        # the stream (the plan's cache key) overlaps the coordinate work
        # on the shared pool: hashlib releases the GIL.
        import time as _time

        from repro.exec.plan import (
            ExecutionPlan,
            digest_async,
            index_dtype_for,
        )

        t0 = _time.perf_counter()
        digest = digest_async(spasm)
        # Two fused-only shortcuts, both exactness-preserving:
        #
        # * the padding slots (``vals == 0``) are dropped *before* the
        #   coordinate gathers — roughly half of a typical stream — so
        #   no full (n_groups, k) coordinate grid is ever materialized
        #   (the stream-compile path must expand it to discover the
        #   same mask);
        # * the arithmetic runs at the plan's own index width.  The
        #   narrowing is exact (every coordinate is bounded by the
        #   matrix shape, pre-checked against the padded slot count, an
        #   upper bound on what from_slots keeps), so the plan is
        #   bitwise identical to the int64 stream-compile route:
        #   ``keep`` is ascending, hence the kept slots reach the
        #   stable row sort in stream order either way.
        idx_dt = index_dtype_for(coo.shape, int(values.size))
        vflat = spasm.values.reshape(-1)
        keep = np.flatnonzero(vflat != 0.0)
        # k is 2/4/8 in every portfolio — shift/mask beat div/mod on
        # the megaslot arrays (exact for non-negative operands).
        k_pow2 = k & (k - 1) == 0
        k_shift = k.bit_length() - 1
        group_of = keep >> k_shift if k_pow2 else keep // k
        row_base = (
            sub_tile_r.astype(idx_dt)[group_sub] * spt
            + sub_ridx.astype(idx_dt)[group_sub]
        ) * k
        col_base = (
            sub_tile_c.astype(idx_dt)[group_sub] * spt
            + sub_cidx.astype(idx_dt)[group_sub]
        ) * k
        # ``lane_bits`` (the value-payload gather grid) already holds
        # every slot's in-pattern cell id, so one flat gather plus a
        # divmod recovers the cell offsets — cheaper than re-indexing
        # the template tables per kept slot.
        kept_bits = lane_bits.reshape(-1)[keep].astype(
            idx_dt, copy=False
        )
        if k_pow2:
            cell_r_of = kept_bits >> idx_dt.type(k_shift)
            cell_c_of = kept_bits & idx_dt.type(k - 1)
        else:
            cell_r_of, cell_c_of = np.divmod(
                kept_bits, idx_dt.type(k)
            )
        kept_rows = row_base[group_of] + cell_r_of
        kept_cols = col_base[group_of] + cell_c_of
        spasm._plan = ExecutionPlan.from_slots(
            coo.shape, kept_rows, kept_cols, vflat[keep],
            digest=digest, source_nnz=coo.nnz,
            precision=plan_precision, started=t0, compacted=True,
        )

    return spasm


def groups_per_submatrix(coo: COOMatrix, table: DecompositionTable,
                         k: int = DEFAULT_K,
                         masks: Optional[np.ndarray] = None,
                         sub_keys: Optional[np.ndarray] = None) -> tuple:
    """Template-group count of every non-empty submatrix.

    Returns ``(counts, sub_keys)`` for
    :func:`repro.core.tiling.extract_global_composition`; this is the
    tile-size-independent part of the encoding that Algorithm 4 reuses
    across its tile-size sweep.  Passing the precomputed
    :func:`repro.core.patterns.submatrix_masks` output skips the mask
    recomputation (the pipeline's artifact-reuse path).
    """
    if masks is None or sub_keys is None:
        masks, sub_keys = submatrix_masks(coo, k)
    else:
        masks = np.asarray(masks, dtype=np.int64)
        sub_keys = np.asarray(sub_keys, dtype=np.int64)
    subsets = table.subset_array(masks)
    counts = _subset_sizes(subsets, len(table.masks))
    return counts, sub_keys


def _subset_sizes(subsets: np.ndarray, n_templates: int) -> np.ndarray:
    """Popcount of subset bitmasks (n_templates <= 16)."""
    from repro.core.bitmask import popcount_array

    return popcount_array(np.asarray(subsets, dtype=np.int64))
